#!/usr/bin/env python
"""Regenerate every capture under ``tests/golden/`` in one command.

The golden files pin the CLI's byte-level output (and the verify smoke
envelopes CI feeds to ``repro verify``).  When an intentional output change
lands, run::

    python tools/regen_golden.py            # rewrite tests/golden/
    python tools/regen_golden.py --check    # exit 1 if anything would change

``tests/test_regen_golden.py`` runs the same :func:`regenerate` function and
asserts its output matches the checked-in files, so the script and the
goldens cannot drift apart.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import tempfile
from contextlib import redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:  # runnable straight from a checkout
    sys.path.insert(0, _SRC)

FIG1 = ["--releases", "0,5,6", "--works", "5,2,1"]
EQ = ["--releases", "0,1,2", "--works", "2,2,2"]

#: Plain CLI captures: golden file name -> argv (stdout is the capture).
CLI_CASES: dict[str, list[str]] = {
    "laptop_table.txt": ["laptop", *FIG1, "--energy", "17"],
    "laptop.json": ["laptop", *FIG1, "--energy", "17", "--json"],
    "server.json": ["server", *FIG1, "--makespan", "8", "--json"],
    "frontier.json": ["frontier", *FIG1, "--min-energy", "6", "--max-energy", "21",
                      "--points", "5", "--json"],
    "flow.json": ["flow", *EQ, "--energy", "6", "--json"],
    "flow_table.txt": ["flow", *EQ, "--energy", "6"],
    "multi_makespan.json": ["multi", *EQ, "--energy", "8", "--processors", "2",
                            "--metric", "makespan", "--json"],
    "multi_flow.json": ["multi", *EQ, "--energy", "8", "--processors", "2",
                        "--metric", "flow", "--json"],
    "figures.json": ["figures", "--points", "7", "--json"],
    "compete.json": ["compete", "--alphas", "2", "--sizes", "5", "--seeds", "2",
                     "--families", "deadline,staircase", "--json"],
    "sim.json": ["sim", "--family", "day-night", "--size", "12", "--seed", "0",
                 "--machine", "athlon64", "--json"],
    "sim_table.txt": ["sim", "--family", "heavy-tail", "--size", "8",
                      "--seed", "1", "--machine", "static-sleep"],
    "compete_machines.json": ["compete", "--machines", "pure,athlon64",
                              "--families", "day-night,mmpp", "--sizes", "6",
                              "--seeds", "1", "--algorithms", "oa,avr",
                              "--json"],
}


def _capture(argv: list[str]) -> str:
    from repro.cli import main

    out = io.StringIO()
    with redirect_stdout(out):
        code = main(argv)
    if code != 0:
        raise RuntimeError(f"repro {' '.join(argv)} exited {code}")
    return out.getvalue()


def _batch_results() -> str:
    """The timing-free ``results`` section of a deterministic batch run."""
    from repro.io import save_instances
    from repro.workloads import equal_work_instance

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "batch.json"
        save_instances([equal_work_instance(4, seed=s) for s in range(3)], path)
        payload = json.loads(
            _capture(["batch", "--instances", str(path), "--energy", "6", "--json"])
        )
    return json.dumps(payload["results"], indent=2, sort_keys=True) + "\n"


def _verify_envelopes() -> dict[str, str]:
    """The request/result envelope pair the CI verify smoke step checks."""
    from repro.api import SolveRequest
    from repro.api import solve as api_solve
    from repro.core import CUBE
    from repro.io import request_to_dict, result_to_dict
    from repro.workloads import figure1_instance

    request = SolveRequest(
        instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
    )
    result = api_solve(request)
    result.raise_if_error()
    return {
        "verify_request.json": json.dumps(
            request_to_dict(request), indent=2, sort_keys=True
        ) + "\n",
        "verify_result.json": json.dumps(
            result_to_dict(result), indent=2, sort_keys=True
        ) + "\n",
    }


def _serve_transcript() -> str:
    """The serve-protocol golden: two identical requests, then a bad line.

    Run with ``timing=False`` (the CLI's ``--no-timing``) so the transcript
    is byte-reproducible; the second response must report a cache hit and
    the malformed line a structured error, with the loop surviving all
    three.
    """
    import io as io_module

    from repro.api import SolveRequest
    from repro.cache import ResultCache
    from repro.core import CUBE
    from repro.io import request_to_dict
    from repro.service import serve_stream
    from repro.workloads import figure1_instance

    line = json.dumps(
        request_to_dict(
            SolveRequest(
                instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
            )
        )
    )
    out = io_module.StringIO()
    serve_stream(
        iter([line + "\n", line + "\n", "{not json\n"]),
        out,
        cache=ResultCache(),
        timing=False,
    )
    return out.getvalue()


def _serve_routed_transcript() -> str:
    """The SLA-routing serve golden (``--routing sla --no-timing``).

    Three lines: an accuracy-carrying request under a latency budget far
    tighter than the exact solver's cost model (deterministically routed to
    the certified PTAS variant — the response stamps ``routed_solver``,
    ``epsilon`` and ``certificate``), the same problem with no accuracy knob
    (exact, unrouted), and a malformed line (structured error; the loop
    survives).
    """
    import io as io_module

    from repro.api import SolveRequest
    from repro.cache import ResultCache
    from repro.core import CUBE, Instance
    from repro.io import request_to_dict
    from repro.service import serve_stream

    instance = Instance.from_arrays(
        [0.0] * 10,
        [5.0, 3.0, 2.0, 2.0, 1.0, 4.0, 2.5, 1.5, 3.5, 1.0],
        name="routed-golden",
    )
    routed = json.dumps(
        request_to_dict(
            SolveRequest(
                instance=instance, power=CUBE, solver="multi-makespan-exact",
                budget=80.0, processors=3, accuracy=0.5,
                latency_budget_ms=1.0,
            )
        )
    )
    exact = json.dumps(
        request_to_dict(
            SolveRequest(
                instance=instance, power=CUBE, solver="multi-makespan-exact",
                budget=80.0, processors=3,
            )
        )
    )
    out = io_module.StringIO()
    serve_stream(
        iter([routed + "\n", exact + "\n", "{not json\n"]),
        out,
        cache=ResultCache(),
        timing=False,
        routing="sla",
    )
    return out.getvalue()


def regenerate() -> dict[str, str]:
    """All golden captures: file name -> exact text content."""
    captures = {name: _capture(argv) for name, argv in CLI_CASES.items()}
    captures["batch_results.json"] = _batch_results()
    captures.update(_verify_envelopes())
    captures["serve_transcript.txt"] = _serve_transcript()
    captures["serve_routed_transcript.txt"] = _serve_routed_transcript()
    return captures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the checked-in goldens instead of rewriting them",
    )
    args = parser.parse_args(argv)

    captures = regenerate()
    changed = []
    for name, text in sorted(captures.items()):
        path = GOLDEN_DIR / name
        current = path.read_text(encoding="utf-8") if path.exists() else None
        if current == text:
            print(f"  unchanged  {name}")
            continue
        changed.append(name)
        if args.check:
            print(f"  DIFFERS    {name}")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            print(f"  rewrote    {name}" if current is not None else f"  created    {name}")
    if args.check and changed:
        print(f"{len(changed)} golden file(s) out of date; run tools/regen_golden.py")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Open-loop load generator for the ``repro serve`` TCP tier.

Coordinated-omission-safe by construction: requests fire on a fixed schedule
(``--qps`` arrivals per second, independent of how slowly the server answers)
and every latency is measured from the request's *scheduled* arrival time,
not from when the client finally got around to sending it.  A server that
stalls therefore shows up as long latencies — not as a conveniently quiet
client.

Requests shed by the server (``overloaded`` envelopes) are retried with
exponential backoff and deterministic seeded jitter, starting from the
server's ``retry_after_ms`` hint; the retried request keeps charging latency
against its original scheduled arrival.  Everything is seeded, so a given
``(seed, qps, n)`` run replays the same schedule and the same jitter.

Usable as a CLI (``python tools/loadgen.py --port 7777 --qps 200 -n 500``)
or as a library (:func:`run_loadgen`) — ``benchmarks/bench_serve_qps.py``
drives it in-process against an :class:`repro.service.AsyncServeLoop`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:  # runnable straight from a checkout
    sys.path.insert(0, _SRC)

DEFAULT_MAX_RETRIES = 4
DEFAULT_BACKOFF_CAP_S = 2.0


def _default_request_lines(n: int, distinct: int, seed: int) -> list[str]:
    """``n`` solve-request lines cycling over ``distinct`` tiny instances."""
    from repro.api import SolveRequest
    from repro.core import CUBE
    from repro.io import request_to_dict
    from repro.workloads import poisson_instance

    envelopes = []
    for i in range(max(1, distinct)):
        instance = poisson_instance(6, seed=seed + i, arrival_rate=1.0)
        request = SolveRequest(
            instance=instance, power=CUBE, solver="laptop", budget=20.0
        )
        envelopes.append(request_to_dict(request))
    lines = []
    for i in range(n):
        payload = dict(envelopes[i % len(envelopes)])
        payload["id"] = f"lg-{i}"
        lines.append(json.dumps(payload))
    return lines


async def _binary_exchange(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    payload: str,
    timeout_s: float,
) -> dict[str, Any] | None:
    """Negotiate the binary codec and run one framed request; None on EOF."""
    import struct

    from repro.io import binary_envelope_decode, encode_envelope

    writer.write((json.dumps({"op": "codec", "codec": "binary"}) + "\n").encode("utf-8"))
    await writer.drain()
    ack_raw = await asyncio.wait_for(reader.readline(), timeout_s)
    if not ack_raw:
        return None
    ack = json.loads(ack_raw)
    if not ack.get("accepted"):
        raise RuntimeError(f"server refused binary codec: {ack.get('error')}")
    writer.write(encode_envelope(json.loads(payload), "binary"))
    await writer.drain()
    header = await asyncio.wait_for(reader.readexactly(4), timeout_s)
    (length,) = struct.unpack("<I", header)
    body = await asyncio.wait_for(reader.readexactly(length), timeout_s)
    return binary_envelope_decode(body)


async def _one_request(
    host: str,
    port: int,
    line: str,
    scheduled_at: float,
    deadline_ms: float | None,
    rng: random.Random,
    max_retries: int,
    timeout_s: float,
    codec: str = "json",
) -> dict[str, Any]:
    """Send one request (with shed retries); returns a per-request record."""
    outcome: dict[str, Any] = {"status": "ok", "code": None, "retries": 0}
    payload = line
    if deadline_ms is not None:
        data = json.loads(line)
        data["deadline_ms"] = deadline_ms
        payload = json.dumps(data)

    for attempt in range(max_retries + 1):
        try:
            reader, writer = await asyncio.open_connection(host, port)
            if codec == "binary":
                response = await _binary_exchange(reader, writer, payload, timeout_s)
                writer.close()
                if response is None:
                    outcome.update(status="connection-drop", code="connection-drop")
                    break
                raw = True  # sentinel: a framed response was read
            else:
                writer.write((payload + "\n").encode("utf-8"))
                await writer.drain()
                raw = await asyncio.wait_for(reader.readline(), timeout_s)
                writer.close()
        except (OSError, asyncio.TimeoutError) as exc:
            outcome.update(status="transport-error", code=repr(exc))
            break
        except (RuntimeError, ValueError) as exc:
            outcome.update(status="codec-error", code=repr(exc))
            break
        if not raw:
            outcome.update(status="connection-drop", code="connection-drop")
            break
        if codec != "binary":
            response = json.loads(raw)
        error = (response.get("result") or {}).get("error")
        if error is None:
            outcome.update(status="ok", code=None)
            break
        outcome.update(status="error", code=error.get("code"))
        if error.get("code") != "overloaded" or attempt == max_retries:
            break
        # exponential backoff from the server's hint, with seeded jitter so
        # retried clients do not re-stampede in lockstep
        hint_ms = response.get("serve", {}).get("retry_after_ms") or 50.0
        backoff = min(
            DEFAULT_BACKOFF_CAP_S, (hint_ms / 1e3) * (2.0 ** attempt)
        )
        await asyncio.sleep(backoff * (0.5 + rng.random()))
        outcome["retries"] = attempt + 1

    # coordinated-omission-safe: charged from the *scheduled* arrival
    outcome["latency_ms"] = (time.monotonic() - scheduled_at) * 1e3
    return outcome


async def _run(
    host: str,
    port: int,
    lines: Sequence[str],
    qps: float,
    deadline_ms: float | None,
    seed: int,
    max_retries: int,
    timeout_s: float,
    codec: str = "json",
) -> dict[str, Any]:
    start = time.monotonic()
    tasks = []
    for index, line in enumerate(lines):
        scheduled_at = start + index / qps
        delay = scheduled_at - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        rng = random.Random((seed << 20) ^ index)
        tasks.append(
            asyncio.ensure_future(
                _one_request(
                    host, port, line, scheduled_at, deadline_ms, rng,
                    max_retries, timeout_s, codec,
                )
            )
        )
    records = await asyncio.gather(*tasks)
    elapsed = time.monotonic() - start

    latencies = sorted(r["latency_ms"] for r in records)
    codes: dict[str, int] = {}
    for record in records:
        if record["code"] is not None:
            codes[record["code"]] = codes.get(record["code"], 0) + 1

    def pct(q: float) -> float | None:
        if not latencies:
            return None
        index = min(len(latencies) - 1, max(0, round(q * (len(latencies) - 1))))
        return round(latencies[int(index)], 3)

    return {
        "kind": "loadgen-report",
        "codec": codec,
        "target_qps": qps,
        "requests": len(records),
        "ok": sum(1 for r in records if r["status"] == "ok"),
        "errors": sum(1 for r in records if r["status"] != "ok"),
        "error_codes": codes,
        "retries": sum(r["retries"] for r in records),
        "elapsed_s": round(elapsed, 3),
        "achieved_qps": round(len(records) / elapsed, 3) if elapsed > 0 else None,
        "latency_ms": {
            "p50": pct(0.50),
            "p99": pct(0.99),
            "max": pct(1.0),
            "mean": round(sum(latencies) / len(latencies), 3) if latencies else None,
        },
    }


def run_loadgen(
    host: str,
    port: int,
    n: int = 200,
    qps: float = 100.0,
    deadline_ms: float | None = None,
    seed: int = 0,
    distinct: int = 4,
    max_retries: int = DEFAULT_MAX_RETRIES,
    timeout_s: float = 30.0,
    lines: Sequence[str] | None = None,
    codec: str = "json",
) -> dict[str, Any]:
    """Drive an open-loop run against a serving TCP address; returns the report.

    ``codec="binary"`` negotiates the binary envelope codec on every
    connection before sending the request as a length-prefixed frame.
    """
    if lines is None:
        lines = _default_request_lines(n, distinct, seed)
    return asyncio.run(
        _run(host, port, lines, qps, deadline_ms, seed, max_retries, timeout_s,
             codec)
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("-n", "--requests", type=int, default=200)
    parser.add_argument("--qps", type=float, default=100.0)
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--distinct", type=int, default=4,
                        help="distinct instances to cycle over (cache-hit mix)")
    parser.add_argument("--max-retries", type=int, default=DEFAULT_MAX_RETRIES)
    parser.add_argument("--codec", choices=("json", "binary"), default="json",
                        help="wire codec to negotiate per connection")
    parser.add_argument("--report", metavar="FILE",
                        help="also write the JSON report here")
    args = parser.parse_args(argv)

    report = run_loadgen(
        args.host, args.port, n=args.requests, qps=args.qps,
        deadline_ms=args.deadline_ms, seed=args.seed, distinct=args.distinct,
        max_retries=args.max_retries, codec=args.codec,
    )
    text = json.dumps(report, indent=2)
    print(text)
    if args.report:
        Path(args.report).write_text(text + "\n", encoding="utf-8")
    return 0 if report["ok"] > 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())

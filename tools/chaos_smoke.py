#!/usr/bin/env python
"""CI chaos smoke for the hardened serve loop: faults in, envelopes out.

Two phases against real ``repro serve`` subprocesses:

1. **stdio under a canned fault plan** -- a worker crash, a hung worker (cut
   off by a per-request deadline) and a slow solve are injected
   deterministically via ``--fault-plan``.  Every fault must come back as a
   structured error envelope with its stable code (``internal``,
   ``deadline-exceeded``) while healthy requests keep solving; the process
   must exit 0 with a final stats line.
2. **TCP + SIGTERM drain** -- a TCP server answers a request, then receives
   SIGTERM.  It must drain gracefully: exit code 0, a final stats line on
   stderr, and no traceback.

Run as ``python tools/chaos_smoke.py``; exits non-zero with a diagnostic on
the first violation.  The fault plan is seeded, so every CI run replays the
exact same chaos.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:  # runnable straight from a checkout
    sys.path.insert(0, _SRC)


def _fail(message: str) -> int:
    print(f"chaos smoke FAILED: {message}", file=sys.stderr)
    return 1


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _request_line(request_id: str, seed: int, deadline_ms: float | None = None) -> str:
    from repro.api import SolveRequest
    from repro.core import CUBE
    from repro.io import request_to_dict
    from repro.workloads import poisson_instance

    request = SolveRequest(
        instance=poisson_instance(6, seed=seed, arrival_rate=1.0),
        power=CUBE, solver="laptop", budget=20.0,
    )
    envelope = request_to_dict(request)
    envelope["id"] = request_id
    if deadline_ms is not None:
        envelope["deadline_ms"] = deadline_ms
    return json.dumps(envelope) + "\n"


def _canned_plan_file() -> str:
    """The canned chaos: solve #1 crashes, solve #2 hangs (deadline cuts it)."""
    from repro.faults import WORKER_EXCEPTION, WORKER_HANG, FaultPlan, FaultRule

    plan = FaultPlan(
        rules=(
            FaultRule(site=WORKER_EXCEPTION, indices=frozenset({1}),
                      message="chaos: injected worker crash"),
            FaultRule(site=WORKER_HANG, indices=frozenset({2}), delay=30.0),
        ),
        seed=7,
    )
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".json", prefix="chaos-plan-", delete=False
    )
    json.dump(plan.to_dict(), handle)
    handle.close()
    return handle.name


def _phase_stdio() -> int:
    plan_path = _canned_plan_file()
    lines = [
        _request_line("healthy-0", seed=0),
        _request_line("crash", seed=1),
        _request_line("hung", seed=2, deadline_ms=500.0),
        _request_line("healthy-1", seed=3),
    ]
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--no-timing",
         "--fault-plan", plan_path],
        input="".join(lines), capture_output=True, text=True, timeout=120,
        env=_env(), cwd=REPO_ROOT,
    )
    os.unlink(plan_path)
    if proc.returncode != 0:
        return _fail(
            f"stdio phase exited {proc.returncode}; stderr:\n{proc.stderr}"
        )
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    if len(responses) != 4:
        return _fail(f"expected 4 responses, got {len(responses)}")
    by_id = {r["id"]: r for r in responses}

    def code(request_id: str):
        return (by_id[request_id]["result"].get("error") or {}).get("code")

    if code("healthy-0") is not None or code("healthy-1") is not None:
        return _fail(f"healthy requests failed: {proc.stdout}")
    if code("crash") != "internal":
        return _fail(f"injected crash gave {code('crash')!r}, want 'internal'")
    if "chaos: injected worker crash" not in json.dumps(by_id["crash"]):
        return _fail("crash envelope lost the injected message")
    if code("hung") != "deadline-exceeded":
        return _fail(
            f"hung worker gave {code('hung')!r}, want 'deadline-exceeded'"
        )
    if "serve: 4 request(s)" not in proc.stderr:
        return _fail(f"missing final stats line; stderr:\n{proc.stderr}")
    if "deadline miss" not in proc.stderr:
        return _fail(f"stats line does not count the deadline miss: {proc.stderr}")
    print("chaos smoke phase 1 OK: structured envelopes under injected faults, "
          "clean exit")
    return 0


def _phase_sigterm_drain() -> int:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--tcp", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(), cwd=REPO_ROOT,
    )
    try:
        # the bound address is announced on stderr once listening
        line = proc.stderr.readline()
        if "listening on" not in line:
            proc.kill()
            return _fail(f"no listening line, got {line!r}")
        address = line.rsplit(" ", 1)[-1].strip()
        host, port = address.rsplit(":", 1)

        with socket.create_connection((host, int(port)), timeout=10) as conn:
            conn.sendall(_request_line("drain-0", seed=0).encode("utf-8"))
            blob = b""
            while b"\n" not in blob:
                chunk = conn.recv(65536)
                if not chunk:
                    return _fail("connection closed before a response")
                blob += chunk
        response = json.loads(blob.decode("utf-8").splitlines()[0])
        if response["result"]["status"] != "ok":
            return _fail(f"TCP solve failed: {response}")

        proc.send_signal(signal.SIGTERM)
        try:
            _, stderr_rest = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            return _fail("server did not drain within 30s of SIGTERM")
        if proc.returncode != 0:
            return _fail(
                f"SIGTERM drain exited {proc.returncode}; stderr:\n{stderr_rest}"
            )
        if "serve: 1 request(s)" not in stderr_rest:
            return _fail(f"missing post-drain stats line:\n{stderr_rest}")
        if "Traceback" in stderr_rest:
            return _fail(f"drain printed a traceback:\n{stderr_rest}")
    finally:
        if proc.poll() is None:
            proc.kill()
    print("chaos smoke phase 2 OK: SIGTERM drained cleanly with a stats line")
    return 0


def main() -> int:
    deadline = time.monotonic() + 300
    for phase in (_phase_stdio, _phase_sigterm_drain):
        if time.monotonic() > deadline:
            return _fail("chaos smoke overran its time budget")
        code = phase()
        if code != 0:
            return code
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

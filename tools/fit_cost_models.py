#!/usr/bin/env python
"""Fit the committed per-solver cost models from the bench trajectories.

The SLA router (:meth:`repro.api.SolverRegistry.route`) prices every
candidate solver with a power law ``t_s = exp(log_a) * n**exponent``.  Those
laws are *not* learned at runtime — they are fitted here, offline, from the
``cost_trajectories`` sections of the committed ``benchmarks/results/``
captures (today ``BENCH_routing.json``), and written to
``src/repro/api/cost_models.json`` where the registry loads them.  The
refit workflow is::

    PYTHONPATH=src python benchmarks/bench_routing.py   # re-measure
    python tools/fit_cost_models.py                     # re-fit
    git diff src/repro/api/cost_models.json             # review, commit

Fitting is ordinary least squares in log-log space (``log t = log_a +
exponent * log n``) over the median timings; a solver with a single timing
cell gets the default exponent (1.5) anchored through that point.  Solvers
without trajectories simply keep the registry's built-in prior.

``--check`` recomputes the fit and exits 1 if the committed file is stale
(the same contract as ``tools/regen_golden.py --check``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"
OUTPUT = REPO_ROOT / "src" / "repro" / "api" / "cost_models.json"

#: Exponent used when a solver has only one timing cell (matches the
#: registry's unfitted prior).
DEFAULT_EXPONENT = 1.5


def collect_trajectories(results_dir: Path = RESULTS) -> dict[str, list[tuple[int, float, str]]]:
    """``solver -> [(n_jobs, elapsed_ms, source_file)]`` from every capture."""
    rows: dict[str, list[tuple[int, float, str]]] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        for row in data.get("cost_trajectories") or []:
            try:
                solver = str(row["solver"])
                n = int(row["n_jobs"])
                ms = float(row["elapsed_ms"])
            except (KeyError, TypeError, ValueError):
                continue
            if n < 1 or not math.isfinite(ms) or ms <= 0:
                continue
            rows.setdefault(solver, []).append((n, ms, path.name))
    return rows


def fit_power_law(cells: list[tuple[int, float, str]]) -> dict:
    """Least-squares ``log t = log_a + exponent * log n`` over one solver."""
    source = ",".join(sorted({c[2] for c in cells}))
    xs = [math.log(n) for n, _, _ in cells]
    ys = [math.log(ms / 1e3) for _, ms, _ in cells]  # model is in seconds
    if len(cells) == 1 or max(xs) == min(xs):
        exponent = DEFAULT_EXPONENT
        log_a = ys[0] - exponent * xs[0]
    else:
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        exponent = sxy / sxx
        log_a = mean_y - exponent * mean_x
    return {
        "log_a": round(log_a, 6),
        "exponent": round(exponent, 6),
        "source": source,
        "cells": len(cells),
    }


def fit_all(results_dir: Path = RESULTS) -> dict:
    trajectories = collect_trajectories(results_dir)
    models = {
        solver: fit_power_law(cells)
        for solver, cells in sorted(trajectories.items())
    }
    return {
        "kind": "cost-models",
        "note": "fitted by tools/fit_cost_models.py from benchmarks/results/ "
                "cost_trajectories; t_s = exp(log_a) * n_jobs**exponent",
        "models": models,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the committed cost_models.json is stale instead of "
             "rewriting it",
    )
    args = parser.parse_args(argv)

    payload = fit_all()
    if not payload["models"]:
        print(
            "no cost_trajectories found under benchmarks/results/; run "
            "PYTHONPATH=src python benchmarks/bench_routing.py first",
            file=sys.stderr,
        )
        return 1
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    current = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else None
    if args.check:
        if current != text:
            print(f"{OUTPUT} is stale; run python tools/fit_cost_models.py")
            return 1
        print(f"{OUTPUT} is up to date ({len(payload['models'])} models)")
        return 0
    OUTPUT.write_text(text, encoding="utf-8")
    for solver, model in payload["models"].items():
        t10 = math.exp(model["log_a"]) * 10 ** model["exponent"] * 1e3
        print(
            f"  {solver:25s} t(n) = {math.exp(model['log_a']):.3e} * "
            f"n^{model['exponent']:.3f} s   (t(10) ~ {t10:.3g} ms, "
            f"{model['cells']} cells from {model['source']})"
        )
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

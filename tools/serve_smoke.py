#!/usr/bin/env python
"""CI smoke test for ``repro serve``: the second identical request must hit.

Pipes two identical solve-request envelopes through a real ``repro serve``
subprocess (stdin/stdout transport, default in-memory cache) and asserts:

* exactly one response line per request, both solved OK,
* the first response reports a cache miss, the second a cache hit,
* both carry latency metadata and byte-identical result envelopes.

Run as ``python tools/serve_smoke.py`` (the repo's ``src/`` is put on the
subprocess's PYTHONPATH automatically); exits non-zero with a diagnostic on
any violation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:  # runnable straight from a checkout
    sys.path.insert(0, _SRC)


def _fail(message: str) -> int:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.api import SolveRequest
    from repro.core import CUBE
    from repro.io import request_to_dict
    from repro.workloads import figure1_instance

    line = json.dumps(
        request_to_dict(
            SolveRequest(
                instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
            )
        )
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve"],
        input=(line + "\n") * 2,
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if proc.returncode != 0:
        return _fail(f"serve exited {proc.returncode}: {proc.stderr.strip()}")
    responses = [json.loads(row) for row in proc.stdout.splitlines()]
    if len(responses) != 2:
        return _fail(f"expected 2 response lines, got {len(responses)}")
    for i, response in enumerate(responses):
        if response.get("kind") != "serve-response":
            return _fail(f"response {i} has kind {response.get('kind')!r}")
        if response["result"].get("status") != "ok":
            return _fail(f"response {i} did not solve OK: {response['result']}")
        if "latency_ms" not in response["serve"]:
            return _fail(f"response {i} is missing latency metadata")
    states = [response["serve"]["cache"] for response in responses]
    if states != ["miss", "hit"]:
        return _fail(f"expected cache states ['miss', 'hit'], got {states}")
    if responses[0]["result"] != responses[1]["result"]:
        return _fail("cache hit returned a different result envelope")
    print(
        "serve smoke OK: second identical request was a cache hit "
        f"(latencies {responses[0]['serve']['latency_ms']}ms -> "
        f"{responses[1]['serve']['latency_ms']}ms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI smoke test for ``repro serve``: cache hits and the binary wire codec.

Stage 1 pipes two identical solve-request envelopes through a real ``repro
serve`` subprocess (stdin/stdout transport, default in-memory cache) and
asserts:

* exactly one response line per request, both solved OK,
* the first response reports a cache miss, the second a cache hit,
* both carry latency metadata and byte-identical result envelopes.

Stage 2 starts a second serve subprocess on an ephemeral TCP port, solves
the same request once over JSON, then negotiates the binary envelope codec
on a fresh connection and asserts the framed binary response is a cache hit
carrying the identical result envelope — the full negotiate/encode/decode
path through a real process boundary.

Run as ``python tools/serve_smoke.py`` (the repo's ``src/`` is put on the
subprocess's PYTHONPATH automatically); exits non-zero with a diagnostic on
any violation.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:  # runnable straight from a checkout
    sys.path.insert(0, _SRC)


def _fail(message: str) -> int:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    return 1


def _request_line() -> str:
    from repro.api import SolveRequest
    from repro.core import CUBE
    from repro.io import request_to_dict
    from repro.workloads import figure1_instance

    return json.dumps(
        request_to_dict(
            SolveRequest(
                instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
            )
        )
    )


def _serve_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buf = b""
    while len(buf) < count:
        chunk = sock.recv(count - len(buf))
        if not chunk:
            raise ConnectionResetError("server closed the connection")
        buf += chunk
    return buf


def _recv_line(sock: socket.socket) -> bytes:
    line = b""
    while not line.endswith(b"\n"):
        line += _recv_exact(sock, 1)
    return line


def _binary_smoke(line: str) -> int:
    """Stage 2: negotiate the binary codec against a real TCP serve process."""
    from repro.io import binary_envelope_decode, encode_envelope

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--tcp", "127.0.0.1:0"],
        stdin=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_serve_env(),
    )
    try:
        announce = proc.stderr.readline().decode("utf-8").strip()
        prefix = "serve: listening on "
        if not announce.startswith(prefix):
            return _fail(f"unexpected serve announcement: {announce!r}")
        host, _, port_text = announce[len(prefix):].rpartition(":")
        address = (host, int(port_text))

        # one JSON solve to warm the server's cache
        with socket.create_connection(address, timeout=30) as sock:
            sock.sendall((line + "\n").encode("utf-8"))
            via_json = json.loads(_recv_line(sock))
        if via_json["result"].get("status") != "ok":
            return _fail(f"JSON warm-up did not solve OK: {via_json['result']}")

        # fresh connection: negotiate binary, then one framed request
        with socket.create_connection(address, timeout=30) as sock:
            sock.sendall(
                (json.dumps({"op": "codec", "codec": "binary"}) + "\n").encode("utf-8")
            )
            ack = json.loads(_recv_line(sock))
            if ack.get("accepted") is not True:
                return _fail(f"server refused the binary codec: {ack}")
            sock.sendall(encode_envelope(json.loads(line), "binary"))
            (length,) = struct.unpack("<I", _recv_exact(sock, 4))
            via_binary = binary_envelope_decode(_recv_exact(sock, length))
            # graceful shutdown: drain works over the binary codec too
            sock.sendall(encode_envelope({"op": "drain"}, "binary"))
            (length,) = struct.unpack("<I", _recv_exact(sock, 4))
            _recv_exact(sock, length)
        proc.stdin.close()
        if proc.wait(timeout=60) != 0:
            return _fail(f"serve exited {proc.returncode} after drain")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)

    if via_binary["result"].get("status") != "ok":
        return _fail(f"binary request did not solve OK: {via_binary['result']}")
    if via_binary["serve"]["cache"] != "hit":
        return _fail(
            f"binary request should hit the JSON-warmed cache, "
            f"got {via_binary['serve']['cache']!r}"
        )
    if via_binary["result"] != via_json["result"]:
        return _fail("binary and JSON codecs returned different result envelopes")
    print(
        "serve smoke OK: binary codec negotiated over TCP, framed response "
        "hit the JSON-warmed cache with an identical envelope"
    )
    return 0


def main() -> int:
    line = _request_line()
    env = _serve_env()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve"],
        input=(line + "\n") * 2,
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if proc.returncode != 0:
        return _fail(f"serve exited {proc.returncode}: {proc.stderr.strip()}")
    responses = [json.loads(row) for row in proc.stdout.splitlines()]
    if len(responses) != 2:
        return _fail(f"expected 2 response lines, got {len(responses)}")
    for i, response in enumerate(responses):
        if response.get("kind") != "serve-response":
            return _fail(f"response {i} has kind {response.get('kind')!r}")
        if response["result"].get("status") != "ok":
            return _fail(f"response {i} did not solve OK: {response['result']}")
        if "latency_ms" not in response["serve"]:
            return _fail(f"response {i} is missing latency metadata")
    states = [response["serve"]["cache"] for response in responses]
    if states != ["miss", "hit"]:
        return _fail(f"expected cache states ['miss', 'hit'], got {states}")
    if responses[0]["result"] != responses[1]["result"]:
        return _fail("cache hit returned a different result envelope")
    print(
        "serve smoke OK: second identical request was a cache hit "
        f"(latencies {responses[0]['serve']['latency_ms']}ms -> "
        f"{responses[1]['serve']['latency_ms']}ms)"
    )
    return _binary_smoke(line)


if __name__ == "__main__":
    sys.exit(main())

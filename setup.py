"""Setuptools entry point.

Kept as a plain ``setup.py`` so that editable installs work in offline
environments whose setuptools/pip lack the ``wheel`` package required by the
PEP 660 editable-install path (``pip install -e . --no-build-isolation`` then
falls back to the legacy ``setup.py develop`` route).

The ``test`` extra pins the optional testing plugins; ``pytest-timeout`` in
particular arms the suite-wide hang ceiling declared in ``tests/conftest.py``
(the suite runs fine without it — the ceiling is simply not enforced).
"""

from setuptools import find_packages, setup

setup(
    name="repro-bunde06",
    version="0.6.0",
    description=(
        "Reproduction of Bunde, 'Power-aware scheduling for makespan and "
        "flow' (SPAA 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": [
            "pytest",
            "pytest-timeout",
            "pytest-benchmark",
            "hypothesis",
            "scipy",
        ],
    },
)

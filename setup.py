"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip lack the ``wheel`` package required by the
PEP 660 editable-install path (``pip install -e . --no-build-isolation`` then
falls back to the legacy ``setup.py develop`` route).
"""

from setuptools import setup

setup()

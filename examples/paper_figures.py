"""Regenerate the paper's Figures 1-3 as ASCII plots and data tables.

The paper's only plotted evaluation is the energy/makespan curve of the
three-job instance ``r = (0, 5, 6)``, ``w = (5, 2, 1)`` under
``power = speed**3`` (Figure 1), together with its first derivative
(Figure 2, continuous across configuration changes) and second derivative
(Figure 3, discontinuous at the configuration changes E = 8 and E = 17).

Run with:  python examples/paper_figures.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_plot, detect_breakpoints, format_table
from repro.makespan import makespan_frontier
from repro.workloads import FIGURE1_ENERGY_RANGE, figure1_instance, figure1_power


def main() -> None:
    instance = figure1_instance()
    power = figure1_power()
    curve = makespan_frontier(instance, power)
    lo, hi = FIGURE1_ENERGY_RANGE
    grid = np.linspace(lo, hi, 400)

    makespans = curve.sample(grid)
    first = curve.sample_derivative(grid)
    second = curve.sample_second_derivative(grid)

    print("Instance:", instance)
    print("Power function: speed^3")
    print(f"Configuration changes (paper: E = 8 and E = 17): {curve.breakpoints}")
    print()

    print(ascii_plot(grid, makespans, x_label="energy", y_label="makespan",
                     title="Figure 1: energy vs makespan of non-dominated schedules"))
    print(ascii_plot(grid, first, x_label="energy", y_label="d makespan / d energy",
                     title="Figure 2: first derivative (continuous at E = 8, 17)"))
    print(ascii_plot(grid, second, x_label="energy", y_label="d^2 makespan / d energy^2",
                     title="Figure 3: second derivative (jumps at E = 8, 17)"))

    detected = detect_breakpoints(grid, second)
    print("Breakpoints recovered from the sampled second derivative:",
          [round(b, 2) for b in detected])
    print()

    # the numbers behind the figure, at a coarse grid, as a table
    sample = np.linspace(lo, hi, 16)
    rows = [
        [float(e), curve.value(float(e)), curve.derivative(float(e)), curve.second_derivative(float(e))]
        for e in sample
    ]
    print(format_table(
        ["energy", "makespan", "1st derivative", "2nd derivative"],
        rows,
        title="Figures 1-3 data (16-point sample)",
    ))


if __name__ == "__main__":
    main()

"""Scheduling a shared-energy multicore node / small cluster (Section 5).

Scenario: a batch of jobs must run on an m-core node with a single energy
budget (a laptop package power limit, or a rack-level energy cap).  The
example covers both regimes the paper analyses:

* equal-work jobs -- the cyclic assignment of Theorem 10 is provably optimal;
  we solve makespan exactly and total flow to arbitrary precision, and show
  the structural facts (all cores finish together; the last job on every core
  runs at the same speed),
* unequal-work jobs released together -- the NP-hard regime of Theorem 11; we
  compare the exact exponential search, the LPT heuristic and the PTAS-style
  scheme, and run the Partition reduction end to end.

Run with:  python examples/multicore_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import PolynomialPower
from repro.multi import (
    decide_partition_via_scheduling,
    exact_zero_release_makespan,
    has_perfect_partition_dp,
    heuristic_multiprocessor_makespan,
    last_job_speeds,
    multiprocessor_flow_equal_work,
    multiprocessor_makespan_equal_work,
    partition_to_scheduling,
    ptas_zero_release_makespan,
)
from repro.workloads import equal_work_instance, partition_elements, zero_release_instance


def equal_work_part(power: PolynomialPower) -> None:
    jobs = equal_work_instance(16, seed=11, arrival_rate=2.0, name="batch-16")
    energy = 20.0
    print(f"Equal-work batch on a shared energy budget of {energy:g}: {jobs}")
    rows = []
    for cores in (1, 2, 4, 8):
        makespan = multiprocessor_makespan_equal_work(jobs, power, cores, energy)
        flow = multiprocessor_flow_equal_work(jobs, power, cores, energy)
        sched = makespan.schedule(jobs, power)
        finishes = sched.processor_completion_times()
        rows.append([
            cores,
            makespan.makespan,
            float(np.ptp(finishes[finishes > 0])),
            flow.flow,
            float(np.ptp(last_job_speeds(flow))),
        ])
    print(format_table(
        ["cores", "optimal makespan", "finish-time spread", "optimal flow", "last-job speed spread"],
        rows,
        title="cyclic assignment (Theorem 10) on m cores",
    ))


def unequal_work_part(power: PolynomialPower) -> None:
    jobs = zero_release_instance(10, seed=13, mean_work=2.0, work_distribution="pareto")
    energy = 25.0
    exact = exact_zero_release_makespan(jobs, power, 3, energy)
    lpt = heuristic_multiprocessor_makespan(jobs, power, 3, energy, "lpt")
    ptas = ptas_zero_release_makespan(jobs, power, 3, energy, epsilon=0.25)
    print("Unequal-work batch (NP-hard regime, Theorem 11), 3 cores:")
    print(format_table(
        ["solver", "makespan", "vs exact"],
        [
            ["exact (exponential search)", exact.makespan, 1.0],
            ["LPT heuristic", lpt.makespan, lpt.makespan / exact.makespan],
            ["PTAS-style scheme (eps=0.25)", ptas.makespan, ptas.makespan / exact.makespan],
        ],
    ))

    print("Partition reduction demo:")
    for planted in (True, False):
        elements = partition_elements(8, seed=3, planted_yes=planted)
        reduction = partition_to_scheduling(elements, power)
        answer = decide_partition_via_scheduling(elements, power)
        truth = has_perfect_partition_dp(elements)
        print(f"  elements {elements} -> scheduler says perfect partition exists: {answer} "
              f"(DP ground truth: {truth}; makespan target B/2 = {reduction.makespan_target:g})")
    print()


def main() -> None:
    power = PolynomialPower(3.0)
    equal_work_part(power)
    print()
    unequal_work_part(power)


if __name__ == "__main__":
    main()

"""Minimising response time (total flow) on a battery budget.

Scenario from the paper's Section 4: a batch of equal-size requests arrives
over time on a battery-powered device.  We want the best average response
time for a given battery budget, and the full response-time/energy trade-off
to pick an operating point from.

Demonstrates:

* the equal-work flow solver (arbitrarily-good approximation, with closed
  form whenever Theorem 8's hard case does not occur),
* verifying the Theorem 1 speed relations on the computed optimum,
* the Theorem 8 hard instance itself (why exact closed forms cannot exist).

Run with:  python examples/battery_powered_flow.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_plot, format_table
from repro.core import PolynomialPower
from repro.flow import (
    equal_work_flow_laptop,
    equal_work_flow_server,
    solve_optimality_system,
    theorem8_polynomial,
    verify_theorem1,
)
from repro.workloads import equal_work_instance, theorem8_instance


def main() -> None:
    power = PolynomialPower(3.0)
    requests = equal_work_instance(12, seed=7, arrival_rate=1.5, work=1.0,
                                   name="request-batch")
    print(f"Workload: {requests}")
    print()

    # ------------------------------------------------------------------
    # Laptop problem for flow: best average response time per battery budget.
    # ------------------------------------------------------------------
    budgets = np.geomspace(1.0, 40.0, 12)
    rows = []
    for energy in budgets:
        result = equal_work_flow_laptop(requests, power, float(energy))
        holds = verify_theorem1(requests, power, result.speeds, rtol=5e-2)
        rows.append([
            float(energy),
            result.flow,
            result.flow / requests.n_jobs,
            "closed form" if result.exact else "convex approx",
            "yes" if holds else "no",
        ])
    print(format_table(
        ["battery budget", "total flow", "avg response time", "solution type", "Theorem 1 holds"],
        rows,
        title="Response time vs battery budget",
    ))
    print(ascii_plot(budgets, [r[1] for r in rows], x_label="energy budget",
                     y_label="total flow", title="flow / energy trade-off"))

    # ------------------------------------------------------------------
    # Server problem: the SLA says average response time <= 1.2 time units.
    # ------------------------------------------------------------------
    sla_total_flow = 1.2 * requests.n_jobs
    server = equal_work_flow_server(requests, power, sla_total_flow)
    print(f"Minimum battery to keep average response time below 1.2: "
          f"{server.energy:.4f} energy units (achieved flow {server.flow:.4f})")
    print()

    # ------------------------------------------------------------------
    # The Theorem 8 hard instance: why there is no closed form in general.
    # ------------------------------------------------------------------
    hard = theorem8_instance()
    system = solve_optimality_system(energy_budget=9.0)
    print("Theorem 8 hard instance (three unit jobs released at 0, 0, 1; E = 9):")
    print(f"  the C2 = 1 branch requires sigma_2 = {system.sigma2:.12f},")
    print(f"  which is a root of the paper's degree-12 polynomial "
          f"(residual {theorem8_polynomial(system.sigma2):.2e}) with no rational roots --")
    print("  i.e. no formula built from +, -, *, / and k-th roots can output it exactly.")
    best = equal_work_flow_laptop(hard, power, 9.0)
    print(f"  our solver's optimum at E = 9: flow = {best.flow:.6f} "
          f"(completion of job 2 = {best.completion_times[1]:.4f}; see EXPERIMENTS.md "
          "for the discrepancy with the paper's stated window)")


if __name__ == "__main__":
    main()

"""Quickstart: power-aware scheduling of a handful of jobs on one processor.

This walks through the paper's two central questions on a small instance:

* the *laptop problem* -- "given this much battery, how fast can I finish?"
  (solved exactly by IncMerge, Section 3.1 of the paper),
* the *server problem* -- "given this deadline, how little energy do I need?"
  (solved by inverting the non-dominated frontier, Section 3.2),

and prints the resulting schedules, their block structure and the energy /
makespan trade-off curve.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_plot, format_table
from repro.core import Instance, PolynomialPower
from repro.makespan import incmerge, makespan_frontier, minimum_energy_for_makespan


def main() -> None:
    # Jobs: (release time, work).  Work is in "billions of cycles"; a speed of
    # 1.0 means one unit of work per unit of time.
    instance = Instance.from_arrays(
        releases=[0.0, 1.0, 4.0, 4.5, 9.0],
        works=[3.0, 1.0, 2.0, 1.5, 2.0],
        name="quickstart",
    )
    # The classic DVFS model: power = speed^3.
    power = PolynomialPower(3.0)

    print(f"Instance: {instance}")
    print()

    # ------------------------------------------------------------------
    # Laptop problem: fix the energy budget, minimise the makespan.
    # ------------------------------------------------------------------
    energy_budget = 15.0
    result = incmerge(instance, power, energy_budget)
    print(f"Laptop problem with energy budget {energy_budget:g}:")
    print(f"  optimal makespan = {result.makespan:.4f}")
    print(f"  energy used      = {result.energy:.4f} (the optimum always spends the budget)")
    rows = [
        [f"jobs {b.first}..{b.last}", b.start_time, b.end_time, b.speed]
        for b in result.blocks
    ]
    print(format_table(["block", "start", "end", "speed"], rows, title="  block structure:"))

    schedule = result.schedule()
    schedule.validate(energy_budget=energy_budget * (1 + 1e-9))
    print(f"  schedule check: feasible, total flow = {schedule.total_flow:.4f}")
    print()

    # ------------------------------------------------------------------
    # Server problem: fix the deadline, minimise the energy.
    # ------------------------------------------------------------------
    deadline = 12.0
    needed = minimum_energy_for_makespan(instance, power, deadline)
    print(f"Server problem with makespan target {deadline:g}:")
    print(f"  minimum energy = {needed:.4f}")
    roundtrip = incmerge(instance, power, needed).makespan
    print(f"  (check: spending exactly that energy gives makespan {roundtrip:.4f})")
    print()

    # ------------------------------------------------------------------
    # The whole trade-off curve (every non-dominated schedule).
    # ------------------------------------------------------------------
    curve = makespan_frontier(instance, power)
    print(f"Non-dominated frontier: {len(curve.segments)} block configurations, "
          f"configuration changes at E = {[round(b, 3) for b in curve.breakpoints]}")
    grid = np.linspace(6.0, 40.0, 60)
    print(ascii_plot(grid, curve.sample(grid), x_label="energy budget",
                     y_label="optimal makespan", title="energy vs makespan"))


if __name__ == "__main__":
    main()

"""An online DVFS "governor" playground: AVR, OA and BKP against the offline optimum.

The paper's future-work section singles out online power-aware scheduling as
the key open problem and cites the deadline-based online algorithms AVR, OA
and BKP.  This example simulates those governors on a synthetic interactive
workload (jobs with deadlines derived from a latency target), measures their
energy against the offline optimum (YDS), and shows the effect of quantising
the offline plan onto a discrete frequency ladder (the paper's Athlon 64
levels) -- the two "more realistic model" directions Section 6 sketches.

Run with:  python examples/online_dvfs_governor.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import PolynomialPower
from repro.discrete import quantize_schedule, uniform_levels
from repro.online import avr_schedule, bkp_schedule, oa_schedule, yds_schedule
from repro.workloads import deadline_instance


def main() -> None:
    power = PolynomialPower(3.0)

    print("Online DVFS governors vs the offline optimum (per-seed energy ratios)")
    rows = []
    for seed in range(5):
        workload = deadline_instance(10, seed=seed, arrival_rate=1.2, laxity=2.5)
        optimal = yds_schedule(workload, power)
        avr = avr_schedule(workload, power)
        oa = oa_schedule(workload, power)
        bkp = bkp_schedule(workload, power, steps_per_interval=32)
        rows.append([
            seed,
            optimal.energy,
            avr.energy / optimal.energy,
            oa.energy / optimal.energy,
            bkp.energy / optimal.energy,
        ])
    print(format_table(
        ["seed", "optimal energy (YDS)", "AVR / OPT", "OA / OPT", "BKP / OPT"],
        rows,
        title="energy ratios (lower is better; 1.0 = offline optimal)",
    ))
    means = np.mean(np.array([[r[2], r[3], r[4]] for r in rows]), axis=0)
    print(f"mean ratios: AVR {means[0]:.3f}, OA {means[1]:.3f}, BKP {means[2]:.3f}")
    print("(theoretical worst cases for alpha=3: AVR 2^2*27=108, OA 27, BKP ~135 -- the")
    print(" synthetic workloads are far from adversarial, as expected)")
    print()

    # ------------------------------------------------------------------
    # discrete frequency ladders on top of the offline plan
    # ------------------------------------------------------------------
    workload = deadline_instance(10, seed=0, arrival_rate=1.2, laxity=2.5)
    plan = yds_schedule(workload, power)
    top = max(piece.speed for piece in plan.pieces) * 1.01
    rows = []
    for levels in (2, 3, 5, 10, 20):
        ladder = uniform_levels(levels, max_speed=top)
        quantised = quantize_schedule(plan, ladder)
        rows.append([levels, quantised.energy_overhead, len(quantised.clamped_jobs)])
    print(format_table(
        ["frequency levels", "energy overhead vs continuous", "clamped jobs"],
        rows,
        title="two-level emulation of the offline plan on discrete frequency ladders",
    ))


if __name__ == "__main__":
    main()

"""Hypothesis property suite for the online speed-scaling stack.

Three families of invariants, each checked on randomized feasible
deadline instances:

* **feasibility** -- every AVR / OA (scalar and incremental) / BKP schedule
  meets all deadlines (BKP up to its documented discretisation tolerance),
* **energy sandwich** -- ``energy(YDS) <= energy(OA) <= alpha**alpha *
  energy(YDS)``: YDS is offline-optimal and OA is ``alpha**alpha``
  competitive (per instance, not just in the worst case),
* **scaling invariance** -- stretching time by ``c`` divides all profile
  speeds by ``c`` (and shifts events), scaling work by ``c`` multiplies
  them by ``c``; the incremental OA energy scales accordingly.

Hypothesis-heavy tests carry the ``slow`` marker so ``pytest -m "not slow"``
stays a quick smoke run.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from _strategies import (
    deadline_instance_from as _deadline_instance,
    hypothesis_settings,
    laxities_strategy,
    releases_strategy,
    works_strategy,
)
from repro.core import CUBE, Instance, PolynomialPower
from repro.online import (
    avr_schedule,
    avr_speed_profile,
    bkp_schedule,
    oa_schedule,
    oa_schedule_incremental,
    yds_schedule,
)

pytestmark = pytest.mark.slow

common_settings = hypothesis_settings(max_examples=30)

alpha_strategy = st.floats(min_value=1.5, max_value=4.0, allow_nan=False)
scale_strategy = st.floats(min_value=0.25, max_value=4.0, allow_nan=False)


# ----------------------------------------------------------------------
# deadline feasibility
# ----------------------------------------------------------------------


@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_avr_and_oa_schedules_meet_deadlines(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    avr_schedule(inst, CUBE).validate(require_deadlines=True)
    oa_schedule(inst, CUBE).validate(require_deadlines=True)
    oa_schedule_incremental(inst, CUBE).validate(require_deadlines=True)


@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_bkp_schedule_feasible_up_to_discretisation(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    schedule = bkp_schedule(inst, CUBE, steps_per_interval=32)
    # the discretised simulation may overrun a deadline by a sliver that
    # vanishes with the step count; the work itself is always completed
    completions = schedule.completion_times
    slack = 1e-2 * np.maximum(1.0, np.abs(inst.deadlines))
    assert np.all(completions <= inst.deadlines + slack)
    executed = np.zeros(inst.n_jobs)
    for piece in schedule.pieces:
        executed[piece.job] += piece.work
    assert np.allclose(executed, inst.works, rtol=1e-9)


# ----------------------------------------------------------------------
# energy ordering: optimal <= OA <= alpha^alpha * optimal
# ----------------------------------------------------------------------


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    laxities=laxities_strategy,
    alpha=alpha_strategy,
)
def test_energy_sandwich_yds_oa(releases, works, laxities, alpha):
    inst = _deadline_instance(releases, works, laxities)
    power = PolynomialPower(alpha)
    optimal = yds_schedule(inst, power).energy
    online = oa_schedule_incremental(inst, power).energy
    assert online >= optimal * (1.0 - 1e-9)
    assert online <= alpha**alpha * optimal * (1.0 + 1e-9)


@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_avr_within_its_bound(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    alpha = CUBE.alpha
    optimal = yds_schedule(inst, CUBE).energy
    online = avr_schedule(inst, CUBE).energy
    assert online >= optimal * (1.0 - 1e-9)
    assert online <= 2 ** (alpha - 1.0) * alpha**alpha * optimal * (1.0 + 1e-9)


# ----------------------------------------------------------------------
# scaling invariance of the profiles
# ----------------------------------------------------------------------


def _scaled_instance(inst: Instance, time_scale: float, work_scale: float) -> Instance:
    return Instance.from_arrays(
        inst.releases * time_scale,
        inst.works * work_scale,
        deadlines=inst.deadlines * time_scale,
    )


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    laxities=laxities_strategy,
    scale=scale_strategy,
)
def test_avr_profile_time_scaling(releases, works, laxities, scale):
    inst = _deadline_instance(releases, works, laxities)
    base = avr_speed_profile(inst)
    scaled = avr_speed_profile(_scaled_instance(inst, scale, 1.0))
    assert len(base) == len(scaled)
    for (a, b, s), (a2, b2, s2) in zip(base, scaled, strict=True):
        assert a2 == pytest.approx(a * scale, rel=1e-9, abs=1e-12)
        assert b2 == pytest.approx(b * scale, rel=1e-9, abs=1e-12)
        assert s2 == pytest.approx(s / scale, rel=1e-9, abs=1e-12)


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    laxities=laxities_strategy,
    scale=scale_strategy,
)
def test_avr_profile_work_scaling(releases, works, laxities, scale):
    inst = _deadline_instance(releases, works, laxities)
    base = avr_speed_profile(inst)
    scaled = avr_speed_profile(_scaled_instance(inst, 1.0, scale))
    for (a, b, s), (a2, b2, s2) in zip(base, scaled, strict=True):
        assert (a2, b2) == (a, b)
        assert s2 == pytest.approx(s * scale, rel=1e-9, abs=1e-12)


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    laxities=laxities_strategy,
    scale=scale_strategy,
    alpha=alpha_strategy,
)
def test_oa_energy_scaling(releases, works, laxities, scale, alpha):
    """Work scaling by c multiplies all OA speeds (hence energy rates) by c."""
    inst = _deadline_instance(releases, works, laxities)
    power = PolynomialPower(alpha)
    base = oa_schedule_incremental(inst, power).energy
    scaled = oa_schedule_incremental(
        _scaled_instance(inst, 1.0, scale), power
    ).energy
    # energy = sum w * s^(alpha-1); w and s both scale by c => c^alpha
    assert scaled == pytest.approx(base * scale**alpha, rel=1e-6)


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    laxities=laxities_strategy,
    scale=scale_strategy,
)
def test_oa_energy_time_scaling(releases, works, laxities, scale):
    """Time scaling by c divides speeds by c: energy scales by c^(1-alpha)."""
    inst = _deadline_instance(releases, works, laxities)
    alpha = CUBE.alpha
    base = oa_schedule_incremental(inst, CUBE).energy
    scaled = oa_schedule_incremental(_scaled_instance(inst, scale, 1.0), CUBE).energy
    # same works at speeds s/c => energy = sum w * (s/c)^(alpha-1)
    assert scaled == pytest.approx(base * scale ** (1.0 - alpha), rel=1e-6)

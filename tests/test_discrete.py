"""Tests for discrete speed levels and schedule quantisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.discrete import (
    ATHLON64,
    SpeedLevels,
    geometric_levels,
    quantize_profile,
    quantize_schedule,
    two_level_split,
    uniform_levels,
)
from repro.exceptions import InvalidInstanceError, InvalidScheduleError
from repro.makespan import incmerge
from repro.online import oa_schedule_incremental
from repro.workloads import deadline_instance, figure1_instance, poisson_instance


class TestSpeedLevels:
    def test_sorted_and_deduplicated(self):
        levels = SpeedLevels("x", (2.0, 1.0, 2.0))
        assert levels.levels == (1.0, 2.0)
        assert levels.min_speed == 1.0
        assert levels.max_speed == 2.0

    def test_bracket(self):
        levels = SpeedLevels("x", (1.0, 2.0, 4.0))
        assert levels.bracket(3.0) == (2.0, 4.0)
        assert levels.bracket(2.0) == (2.0, 2.0)
        assert levels.bracket(0.5) == (1.0, 1.0)
        assert levels.bracket(9.0) == (4.0, 4.0)

    def test_nearest(self):
        levels = SpeedLevels("x", (1.0, 2.0, 4.0))
        assert levels.nearest(2.9) == 2.0
        assert levels.nearest(3.1) == 4.0

    def test_athlon_from_paper(self):
        assert len(ATHLON64) == 3
        assert ATHLON64.max_speed == pytest.approx(1.0)
        assert ATHLON64.min_speed == pytest.approx(0.4)

    def test_generators(self):
        assert uniform_levels(4).levels == (0.25, 0.5, 0.75, 1.0)
        geo = geometric_levels(3, max_speed=1.0, ratio=0.5)
        assert geo.levels == (0.25, 0.5, 1.0)

    def test_invalid(self):
        with pytest.raises(InvalidInstanceError):
            SpeedLevels("x", ())
        with pytest.raises(InvalidInstanceError):
            SpeedLevels("x", (0.0, 1.0))
        with pytest.raises(InvalidInstanceError):
            uniform_levels(0)
        with pytest.raises(InvalidInstanceError):
            geometric_levels(2, ratio=1.5)


class TestTwoLevelSplit:
    def test_interpolation(self):
        frac_hi, frac_lo = two_level_split(1.5, 1.0, 2.0)
        assert frac_hi == pytest.approx(0.5)
        assert frac_lo == pytest.approx(0.5)
        assert frac_hi * 2.0 + frac_lo * 1.0 == pytest.approx(1.5)

    def test_exact_level(self):
        frac_hi, frac_lo = two_level_split(2.0, 2.0, 2.0)
        assert (frac_hi, frac_lo) == (1.0, 0.0)

    def test_out_of_bracket(self):
        with pytest.raises(InvalidScheduleError):
            two_level_split(3.0, 1.0, 2.0)


class TestQuantizeSchedule:
    def test_preserves_work_and_never_saves_energy(self, cube):
        inst = poisson_instance(8, seed=4)
        sched = incmerge(inst, cube, 20.0).schedule()
        top = float(np.max(sched.speeds)) * 1.05
        result = quantize_schedule(sched, uniform_levels(6, max_speed=top))
        result.schedule.validate()
        assert not result.clamped_jobs
        assert result.energy_overhead >= -1e-9
        assert result.makespan_increase == pytest.approx(0.0, abs=1e-9)

    def test_finer_grid_reduces_overhead(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 12.0).schedule()
        top = float(np.max(sched.speeds)) * 1.01
        coarse = quantize_schedule(sched, uniform_levels(3, max_speed=top))
        fine = quantize_schedule(sched, uniform_levels(24, max_speed=top))
        assert fine.energy_overhead <= coarse.energy_overhead + 1e-12

    def test_exact_when_speeds_are_levels(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 17.0).schedule()  # speeds 1, 2, 2
        result = quantize_schedule(sched, SpeedLevels("exact", (1.0, 2.0)))
        assert result.energy_overhead == pytest.approx(0.0, abs=1e-12)
        assert result.discrete_energy == pytest.approx(sched.energy)

    def test_clamping_reported_and_makespan_grows(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 30.0).schedule()  # final job runs faster than 1.0
        result = quantize_schedule(sched, ATHLON64)
        assert result.clamped_jobs  # at least the final job exceeds speed 1.0
        assert result.makespan_increase > 0.0
        result.schedule.validate()

    def test_athlon_overhead_positive_for_intermediate_speeds(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 5.0).schedule()  # single block below speed 1
        result = quantize_schedule(sched, ATHLON64)
        assert not result.clamped_jobs
        assert result.energy_overhead >= 0.0

    def test_idle_gap_is_preserved_not_filled(self, cube):
        # regression: a schedule with an idle gap between bursts must keep the
        # gap after quantization -- the machine idles (or sleeps) there, it
        # does not run at the lowest operating point
        inst = Instance.from_arrays(
            [0.0, 10.0], [1.0, 1.0], deadlines=[1.0, 11.0], name="gapped"
        )
        sched = oa_schedule_incremental(inst, cube)
        result = quantize_schedule(sched, SpeedLevels("wide", (0.5, 2.0)))
        pieces = sorted(result.schedule.pieces, key=lambda p: p.start)
        first_end = max(p.end for p in pieces if p.job == 0)
        second_start = min(p.start for p in pieces if p.job == 1)
        assert second_start - first_end >= 8.0  # the gap survives
        assert all(p.speed >= 0.5 for p in pieces)  # busy pieces stay on-ladder

    def test_nearest_policy_rounds_to_closest_level(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 17.0).schedule()  # speeds 1, 2, 2
        result = quantize_schedule(sched, SpeedLevels("x", (0.9, 2.1)), "nearest")
        speeds = sorted({round(p.speed, 6) for p in result.schedule.pieces})
        assert speeds == [0.9, 2.1]

    def test_unknown_policy_rejected(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 17.0).schedule()
        with pytest.raises(InvalidScheduleError, match="policy"):
            quantize_schedule(sched, ATHLON64, "stochastic")


class TestBracketGuards:
    def test_bracket_rejects_idle_speed(self):
        # regression: bracket(0) used to clamp idle up to min_speed, turning
        # idle gaps into busy time at the lowest operating point
        levels = SpeedLevels("x", (1.0, 2.0))
        with pytest.raises(InvalidScheduleError, match="idle"):
            levels.bracket(0.0)
        with pytest.raises(InvalidScheduleError, match="idle"):
            levels.bracket(-1.0)
        with pytest.raises(InvalidScheduleError, match="non-positive"):
            levels.nearest(0.0)

    def test_scaled_ladder(self):
        doubled = ATHLON64.scaled(2.0)
        assert doubled.levels == tuple(2.0 * s for s in ATHLON64.levels)
        assert "x2" in doubled.name
        named = ATHLON64.scaled(0.5, name="half")
        assert named.name == "half"


class TestQuantizeProfile:
    def test_idle_segments_pass_through_at_speed_zero(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        profile = [(0.0, 1.0, 1.5), (1.0, 3.0, 0.0), (3.0, 4.0, 2.0)]
        pq = quantize_profile(profile, levels)
        assert (1.0, 3.0, 0.0) in pq.segments
        assert pq.clamped_segments == 0
        assert pq.deficit_work == 0.0
        # idle never becomes the lowest operating point
        assert all(s == 0.0 or s >= 1.0 for _, _, s in pq.segments)

    def test_two_level_split_preserves_work_per_segment(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        pq = quantize_profile([(0.0, 2.0, 1.5)], levels)
        work = sum((end - start) * speed for start, end, speed in pq.segments)
        assert work == pytest.approx(3.0)
        assert {speed for _, _, speed in pq.segments} == {1.0, 2.0}

    def test_sub_minimum_speed_busy_then_idle(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        pq = quantize_profile([(0.0, 4.0, 0.25)], levels)
        assert pq.segments == ((0.0, 1.0, 1.0), (1.0, 4.0, 0.0))
        assert pq.deficit_work == 0.0

    def test_clamping_accrues_deficit(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        pq = quantize_profile([(0.0, 1.0, 3.0)], levels)
        assert pq.clamped_segments == 1
        assert pq.deficit_work == pytest.approx(1.0)
        assert pq.segments == ((0.0, 1.0, 2.0),)

    def test_nearest_round_down_accrues_deficit(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        pq = quantize_profile([(0.0, 1.0, 1.4)], levels, "nearest")
        assert pq.slowed_segments == 1
        assert pq.deficit_work == pytest.approx(0.4)
        assert pq.segments == ((0.0, 1.0, 1.0),)

    def test_nearest_round_up_busy_then_idle(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        pq = quantize_profile([(0.0, 1.0, 1.6)], levels, "nearest")
        assert pq.slowed_segments == 0
        assert pq.deficit_work == 0.0
        assert pq.segments == ((0.0, 0.8, 2.0), (0.8, 1.0, 0.0))

    def test_invalid_segments_rejected(self):
        levels = SpeedLevels("x", (1.0, 2.0))
        with pytest.raises(InvalidScheduleError, match="duration"):
            quantize_profile([(1.0, 1.0, 1.0)], levels)
        with pytest.raises(InvalidScheduleError, match="non-negative"):
            quantize_profile([(0.0, 1.0, -0.5)], levels)
        with pytest.raises(InvalidScheduleError, match="policy"):
            quantize_profile([(0.0, 1.0, 1.0)], levels, "stochastic")

    def test_oa_quantized_end_to_end_keeps_deadlines(self, cube):
        # the online path: OA plan -> quantize -> still meets every deadline
        # with the two-level policy on a ladder whose max dominates the plan
        inst = deadline_instance(8, seed=5)
        sched = oa_schedule_incremental(inst, cube)
        top = float(np.max(sched.speeds)) * 1.05
        result = quantize_schedule(sched, uniform_levels(8, max_speed=top))
        result.schedule.validate()
        completions = result.schedule.completion_times
        assert np.all(completions <= inst.deadlines * (1 + 1e-9))

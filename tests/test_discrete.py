"""Tests for discrete speed levels and schedule quantisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE
from repro.discrete import (
    ATHLON64,
    SpeedLevels,
    geometric_levels,
    quantize_schedule,
    two_level_split,
    uniform_levels,
)
from repro.exceptions import InvalidInstanceError, InvalidScheduleError
from repro.makespan import incmerge
from repro.workloads import figure1_instance, poisson_instance


class TestSpeedLevels:
    def test_sorted_and_deduplicated(self):
        levels = SpeedLevels("x", (2.0, 1.0, 2.0))
        assert levels.levels == (1.0, 2.0)
        assert levels.min_speed == 1.0
        assert levels.max_speed == 2.0

    def test_bracket(self):
        levels = SpeedLevels("x", (1.0, 2.0, 4.0))
        assert levels.bracket(3.0) == (2.0, 4.0)
        assert levels.bracket(2.0) == (2.0, 2.0)
        assert levels.bracket(0.5) == (1.0, 1.0)
        assert levels.bracket(9.0) == (4.0, 4.0)

    def test_nearest(self):
        levels = SpeedLevels("x", (1.0, 2.0, 4.0))
        assert levels.nearest(2.9) == 2.0
        assert levels.nearest(3.1) == 4.0

    def test_athlon_from_paper(self):
        assert len(ATHLON64) == 3
        assert ATHLON64.max_speed == pytest.approx(1.0)
        assert ATHLON64.min_speed == pytest.approx(0.4)

    def test_generators(self):
        assert uniform_levels(4).levels == (0.25, 0.5, 0.75, 1.0)
        geo = geometric_levels(3, max_speed=1.0, ratio=0.5)
        assert geo.levels == (0.25, 0.5, 1.0)

    def test_invalid(self):
        with pytest.raises(InvalidInstanceError):
            SpeedLevels("x", ())
        with pytest.raises(InvalidInstanceError):
            SpeedLevels("x", (0.0, 1.0))
        with pytest.raises(InvalidInstanceError):
            uniform_levels(0)
        with pytest.raises(InvalidInstanceError):
            geometric_levels(2, ratio=1.5)


class TestTwoLevelSplit:
    def test_interpolation(self):
        frac_hi, frac_lo = two_level_split(1.5, 1.0, 2.0)
        assert frac_hi == pytest.approx(0.5)
        assert frac_lo == pytest.approx(0.5)
        assert frac_hi * 2.0 + frac_lo * 1.0 == pytest.approx(1.5)

    def test_exact_level(self):
        frac_hi, frac_lo = two_level_split(2.0, 2.0, 2.0)
        assert (frac_hi, frac_lo) == (1.0, 0.0)

    def test_out_of_bracket(self):
        with pytest.raises(InvalidScheduleError):
            two_level_split(3.0, 1.0, 2.0)


class TestQuantizeSchedule:
    def test_preserves_work_and_never_saves_energy(self, cube):
        inst = poisson_instance(8, seed=4)
        sched = incmerge(inst, cube, 20.0).schedule()
        top = float(np.max(sched.speeds)) * 1.05
        result = quantize_schedule(sched, uniform_levels(6, max_speed=top))
        result.schedule.validate()
        assert not result.clamped_jobs
        assert result.energy_overhead >= -1e-9
        assert result.makespan_increase == pytest.approx(0.0, abs=1e-9)

    def test_finer_grid_reduces_overhead(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 12.0).schedule()
        top = float(np.max(sched.speeds)) * 1.01
        coarse = quantize_schedule(sched, uniform_levels(3, max_speed=top))
        fine = quantize_schedule(sched, uniform_levels(24, max_speed=top))
        assert fine.energy_overhead <= coarse.energy_overhead + 1e-12

    def test_exact_when_speeds_are_levels(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 17.0).schedule()  # speeds 1, 2, 2
        result = quantize_schedule(sched, SpeedLevels("exact", (1.0, 2.0)))
        assert result.energy_overhead == pytest.approx(0.0, abs=1e-12)
        assert result.discrete_energy == pytest.approx(sched.energy)

    def test_clamping_reported_and_makespan_grows(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 30.0).schedule()  # final job runs faster than 1.0
        result = quantize_schedule(sched, ATHLON64)
        assert result.clamped_jobs  # at least the final job exceeds speed 1.0
        assert result.makespan_increase > 0.0
        result.schedule.validate()

    def test_athlon_overhead_positive_for_intermediate_speeds(self, cube):
        inst = figure1_instance()
        sched = incmerge(inst, cube, 5.0).schedule()  # single block below speed 1
        result = quantize_schedule(sched, ATHLON64)
        assert not result.clamped_jobs
        assert result.energy_overhead >= 0.0

"""Tests for the deterministic fault-injection subsystem (:mod:`repro.faults`)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exceptions import InvalidInstanceError
from repro.faults import (
    CACHE_WRITE,
    SITES,
    SOLVER_SLOW,
    WORKER_EXCEPTION,
    WORKER_HANG,
    FaultPlan,
    FaultRule,
    InjectedFault,
)


class TestFaultRule:
    def test_unknown_site_is_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault site"):
            FaultRule(site="reactor-meltdown")

    def test_rate_out_of_range_is_rejected(self):
        with pytest.raises(InvalidInstanceError, match="rate"):
            FaultRule(site=CACHE_WRITE, rate=1.5)

    def test_negative_delay_is_rejected(self):
        with pytest.raises(InvalidInstanceError, match="delay"):
            FaultRule(site=SOLVER_SLOW, delay=-1.0)

    def test_explicit_indices_fire_exactly_there(self):
        rule = FaultRule(site=WORKER_EXCEPTION, indices=frozenset({2, 5}))
        fired = [i for i in range(10) if rule.applies(i, seed=0)]
        assert fired == [2, 5]

    def test_rate_zero_never_fires(self):
        rule = FaultRule(site=WORKER_EXCEPTION)
        assert not any(rule.applies(i, seed=7) for i in range(100))

    def test_rate_one_always_fires(self):
        rule = FaultRule(site=WORKER_EXCEPTION, rate=1.0)
        assert all(rule.applies(i, seed=7) for i in range(100))

    def test_seeded_rate_is_deterministic(self):
        rule = FaultRule(site=WORKER_EXCEPTION, rate=0.3)
        a = [rule.applies(i, seed=42) for i in range(200)]
        b = [rule.applies(i, seed=42) for i in range(200)]
        assert a == b
        # a different seed decides differently somewhere
        c = [rule.applies(i, seed=43) for i in range(200)]
        assert a != c
        # and the empirical rate is in the right ballpark
        assert 0.15 < sum(a) / len(a) < 0.45

    def test_round_trips_through_dict(self):
        rule = FaultRule(site=WORKER_HANG, indices=frozenset({1, 3}),
                         rate=0.25, delay=2.0, message="stuck")
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_fire_matches_rules_by_ordinal(self):
        plan = FaultPlan(
            rules=(FaultRule(site=WORKER_EXCEPTION, indices=frozenset({1})),)
        )
        assert plan.fire(WORKER_EXCEPTION, ordinal=0) is None
        assert plan.fire(WORKER_EXCEPTION, ordinal=1) is not None
        assert plan.fired(WORKER_EXCEPTION) == 1
        assert plan.fired() == 1

    def test_counter_mode_consumes_one_tick_per_call(self):
        plan = FaultPlan(
            rules=(FaultRule(site=CACHE_WRITE, indices=frozenset({0, 2})),)
        )
        hits = [plan.fire(CACHE_WRITE) is not None for _ in range(4)]
        assert hits == [True, False, True, False]

    def test_unknown_site_is_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault site"):
            FaultPlan().fire("nope")

    def test_pickle_round_trip_resets_counters(self):
        plan = FaultPlan(
            rules=(FaultRule(site=CACHE_WRITE, indices=frozenset({0})),), seed=9
        )
        assert plan.fire(CACHE_WRITE) is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.rules == plan.rules and clone.seed == plan.seed
        assert clone.fired() == 0
        # the clone's counter restarts, so ordinal 0 fires again
        assert clone.fire(CACHE_WRITE) is not None

    def test_decisions_identical_after_pickling(self):
        rule = FaultRule(site=WORKER_EXCEPTION, rate=0.5)
        plan = FaultPlan(rules=(rule,), seed=123)
        clone = pickle.loads(pickle.dumps(plan))
        mine = [plan.fire(WORKER_EXCEPTION, ordinal=i) is not None
                for i in range(64)]
        theirs = [clone.fire(WORKER_EXCEPTION, ordinal=i) is not None
                  for i in range(64)]
        assert mine == theirs

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule(site=WORKER_HANG, indices=frozenset({3}), delay=1.0),
                FaultRule(site=CACHE_WRITE, rate=0.1, message="disk full"),
            ),
            seed=7,
        )
        assert FaultPlan.from_dict(plan.to_dict()).rules == plan.rules
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        loaded = FaultPlan.from_file(path)
        assert loaded.rules == plan.rules and loaded.seed == 7

    def test_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(InvalidInstanceError, match="unreadable fault plan"):
            FaultPlan.from_file(path)
        with pytest.raises(InvalidInstanceError, match="not a fault-plan"):
            FaultPlan.from_dict({"kind": "instance"})

    def test_sleep_serves_rule_delay(self):
        plan = FaultPlan()
        rule = FaultRule(site=SOLVER_SLOW, delay=0.01)
        import time

        start = time.monotonic()
        plan.sleep(rule)
        assert time.monotonic() - start >= 0.009

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.exceptions import ReproError, error_code

        exc = InjectedFault("boom")
        assert not isinstance(exc, ReproError)
        assert error_code(exc) == "internal"

    def test_all_sites_enumerated(self):
        assert len(SITES) == 6 and len(set(SITES)) == 6

"""Tests for the binary envelope codec (:mod:`repro.io`).

The codec is the wire format ``repro serve`` negotiates per connection, the
per-row blob format of the sqlite cache store, and the batch engine's
write-behind shipping format — so the one property that matters is exactness:
whatever the JSON codec would carry, the binary codec carries bit-identically.
"""

from __future__ import annotations

import json
import math
import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import REGISTRY
from repro.api import solve as api_solve
from repro.exceptions import InvalidInstanceError
from repro.io import (
    ENVELOPE_CODECS,
    binary_envelope_decode,
    binary_envelope_encode,
    decode_envelope,
    encode_envelope,
    result_from_dict,
    result_to_dict,
)

from test_cache import BATCHABLE, _request_for


def _round_trip(payload):
    return binary_envelope_decode(binary_envelope_encode(payload))


# ----------------------------------------------------------------------
# hypothesis: arbitrary JSON-ish payloads survive exactly
# ----------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),  # inf is fine; NaN breaks == comparison only
    st.text(max_size=40),
)

_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=12), children, max_size=6),
    ),
    max_leaves=25,
)


class TestRoundTripProperties:
    @given(_payloads)
    def test_arbitrary_payloads_round_trip(self, payload):
        assert _round_trip(payload) == payload

    @given(st.lists(st.floats(allow_nan=False), min_size=1, max_size=50))
    def test_float_lists_are_bit_exact(self, values):
        back = _round_trip(values)
        assert [v.hex() for v in back] == [v.hex() for v in values]

    @given(st.floats())
    def test_every_float64_survives(self, value):
        (raw,) = struct.unpack("<d", struct.pack("<d", value))
        back = _round_trip(value)
        assert struct.pack("<d", back) == struct.pack("<d", raw)

    @given(st.text(max_size=200))
    def test_unicode_strings_survive(self, text):
        assert _round_trip(text) == text

    def test_nan_survives_as_nan(self):
        assert math.isnan(_round_trip(float("nan")))

    def test_ndarray_encodes_like_its_float_list(self):
        values = [0.1, 2.5, -1e300, math.pi]
        as_array = binary_envelope_encode(np.array(values))
        as_list = binary_envelope_encode(values)
        assert as_array == as_list
        assert _round_trip(values) == values

    def test_int_list_stays_a_list_of_ints(self):
        back = _round_trip([1, 2, 3])
        assert back == [1, 2, 3]
        assert all(type(v) is int for v in back)

    def test_bools_do_not_collapse_into_ints(self):
        back = _round_trip([True, False, 1, 0])
        assert back == [True, False, 1, 0]
        assert [type(v) for v in back] == [bool, bool, int, int]

    def test_deterministic_for_given_insertion_order(self):
        payload = {"b": [1.0, 2.0], "a": {"x": None}}
        assert binary_envelope_encode(payload) == binary_envelope_encode(payload)


# ----------------------------------------------------------------------
# the load-bearing equivalence: every solver's result envelope is carried
# identically by both codecs
# ----------------------------------------------------------------------

class TestSolverEnvelopeEquivalence:
    @pytest.mark.parametrize("name", sorted(BATCHABLE))
    def test_result_envelope_json_binary_bitwise_equal(self, name):
        request = _request_for(name)
        result = api_solve(request)
        envelope = result_to_dict(result)
        via_json = json.loads(json.dumps(envelope))
        via_binary = _round_trip(envelope)
        assert via_binary == via_json
        # and the decoded result is the same object down to the speed bytes
        back = result_from_dict(via_binary)
        assert back.speeds.tobytes() == result.speeds.tobytes()
        assert struct.pack("<d", back.energy) == struct.pack("<d", result.energy)

    def test_binary_is_smaller_on_ndarray_heavy_envelopes(self):
        request = _request_for("laptop")
        envelope = result_to_dict(api_solve(request))
        envelope = dict(envelope, speeds=list(np.linspace(0.1, 4.0, 512)))
        json_size = len(json.dumps(envelope).encode("utf-8"))
        binary_size = len(binary_envelope_encode(envelope))
        assert binary_size < json_size


# ----------------------------------------------------------------------
# malformed input: structured errors, never crashes or wrong values
# ----------------------------------------------------------------------

class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(InvalidInstanceError, match="bad magic"):
            binary_envelope_decode(b"NOPE" + b"\x00")

    def test_truncated_body(self):
        blob = binary_envelope_encode({"speeds": [1.0, 2.0, 3.0]})
        with pytest.raises(InvalidInstanceError, match="truncated"):
            binary_envelope_decode(blob[:-5])

    def test_trailing_bytes(self):
        blob = binary_envelope_encode([1.0])
        with pytest.raises(InvalidInstanceError, match="trailing"):
            binary_envelope_decode(blob + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(InvalidInstanceError, match="unknown binary envelope tag"):
            binary_envelope_decode(b"RBE1\xff")

    def test_int64_overflow_rejected_on_encode(self):
        with pytest.raises(InvalidInstanceError, match="int64"):
            binary_envelope_encode(2**63)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="dict keys"):
            binary_envelope_encode({1: "x"})

    def test_2d_ndarray_rejected(self):
        with pytest.raises(InvalidInstanceError, match="1-D"):
            binary_envelope_encode(np.ones((2, 2)))

    def test_unencodable_type_rejected(self):
        with pytest.raises(InvalidInstanceError, match="not binary-envelope-encodable"):
            binary_envelope_encode({"x": {1, 2}})

    @given(st.binary(max_size=64))
    def test_fuzzed_bodies_never_crash(self, junk):
        try:
            binary_envelope_decode(b"RBE1" + junk)
        except InvalidInstanceError:
            pass  # a structured error is the contract; anything else fails


# ----------------------------------------------------------------------
# wire framing (what the serve loop and loadgen actually exchange)
# ----------------------------------------------------------------------

class TestWireFraming:
    def test_json_frame_is_the_historical_line(self):
        payload = {"kind": "serve-control", "op": "ping"}
        assert encode_envelope(payload, "json") == (json.dumps(payload) + "\n").encode(
            "utf-8"
        )
        assert decode_envelope(encode_envelope(payload, "json"), "json") == payload

    def test_binary_frame_round_trips(self):
        payload = {"speeds": [1.0, 0.5], "ok": True}
        frame = encode_envelope(payload, "binary")
        (length,) = struct.unpack("<I", frame[:4])
        assert length == len(frame) - 4
        assert decode_envelope(frame, "binary") == payload

    def test_length_mismatch_rejected(self):
        frame = encode_envelope({"a": 1}, "binary")
        with pytest.raises(InvalidInstanceError, match="length mismatch"):
            decode_envelope(frame + b"\x00", "binary")
        with pytest.raises(InvalidInstanceError, match="no length prefix"):
            decode_envelope(b"\x01", "binary")

    def test_unknown_codec_rejected(self):
        assert ENVELOPE_CODECS == ("json", "binary")
        with pytest.raises(InvalidInstanceError, match="unknown envelope codec"):
            encode_envelope({}, "msgpack")
        with pytest.raises(InvalidInstanceError, match="unknown envelope codec"):
            decode_envelope(b"", "msgpack")

"""Tests for schedule representation, metrics and validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CUBE, Instance, Piece, Schedule
from repro.exceptions import InvalidScheduleError


class TestPiece:
    def test_work_and_duration(self):
        piece = Piece(job=0, processor=0, start=1.0, end=3.0, speed=2.0)
        assert piece.duration == pytest.approx(2.0)
        assert piece.work == pytest.approx(4.0)

    def test_invalid_interval(self):
        with pytest.raises(InvalidScheduleError):
            Piece(job=0, processor=0, start=3.0, end=3.0, speed=1.0)

    def test_invalid_speed(self):
        with pytest.raises(InvalidScheduleError):
            Piece(job=0, processor=0, start=0.0, end=1.0, speed=0.0)
        with pytest.raises(InvalidScheduleError):
            Piece(job=0, processor=0, start=0.0, end=1.0, speed=math.inf)

    def test_negative_indices(self):
        with pytest.raises(InvalidScheduleError):
            Piece(job=-1, processor=0, start=0.0, end=1.0, speed=1.0)


class TestFromSpeeds:
    def test_fig1_schedule(self, fig1, cube):
        sched = Schedule.from_speeds(fig1, cube, [1.0, 2.0, 2.0])
        assert sched.makespan == pytest.approx(6.5)
        assert sched.energy == pytest.approx(5 * 1 + 2 * 4 + 1 * 4)
        assert sched.total_flow == pytest.approx(5.0 + 1.0 + 0.5)
        sched.validate()

    def test_idle_gap_inserted_for_late_release(self, cube):
        inst = Instance.from_arrays([0.0, 10.0], [1.0, 1.0])
        sched = Schedule.from_speeds(inst, cube, [1.0, 1.0])
        starts = sched.start_times
        assert starts[0] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(10.0)
        assert sched.makespan == pytest.approx(11.0)

    def test_wrong_speed_count(self, fig1, cube):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_speeds(fig1, cube, [1.0, 2.0])

    def test_nonpositive_speed_rejected(self, fig1, cube):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_speeds(fig1, cube, [1.0, -2.0, 1.0])


class TestMultiprocessorConstruction:
    def test_from_processor_speeds(self, cube):
        inst = Instance.from_arrays([0, 0, 1, 1], [1, 1, 1, 1])
        sched = Schedule.from_processor_speeds(
            inst, cube, {0: [0, 2], 1: [1, 3]}, [1.0, 1.0, 2.0, 2.0]
        )
        assert sched.n_processors == 2
        sched.validate()
        per_proc = sched.processor_completion_times()
        assert per_proc.shape == (2,)

    def test_duplicate_assignment_rejected(self, cube):
        inst = Instance.from_arrays([0, 0], [1, 1])
        with pytest.raises(InvalidScheduleError):
            Schedule.from_processor_speeds(inst, cube, {0: [0, 1], 1: [1]}, [1.0, 1.0])

    def test_missing_job_rejected(self, cube):
        inst = Instance.from_arrays([0, 0], [1, 1])
        with pytest.raises(InvalidScheduleError):
            Schedule.from_processor_speeds(inst, cube, {0: [0]}, [1.0, 1.0])


class TestMetrics:
    def test_flow_and_weighted_flow(self, cube):
        inst = Instance.from_arrays([0.0, 1.0], [1.0, 1.0], weights=[1.0, 3.0])
        sched = Schedule.from_speeds(inst, cube, [1.0, 1.0])
        # C = [1, 2]; flows = [1, 1]
        assert sched.total_flow == pytest.approx(2.0)
        assert sched.total_weighted_flow == pytest.approx(1.0 + 3.0)
        assert sched.max_flow == pytest.approx(1.0)

    def test_energy_by_processor_sums_to_total(self, cube):
        inst = Instance.from_arrays([0, 0, 0, 0], [1, 2, 1, 2])
        sched = Schedule.from_processor_speeds(
            inst, cube, {0: [0, 1], 1: [2, 3]}, [1.0, 2.0, 1.0, 2.0]
        )
        assert sched.energy_by_processor().sum() == pytest.approx(sched.energy)


class TestValidation:
    def test_overlap_detected(self, cube):
        inst = Instance.from_arrays([0, 0], [1, 1])
        pieces = [
            Piece(job=0, processor=0, start=0.0, end=1.0, speed=1.0),
            Piece(job=1, processor=0, start=0.5, end=1.5, speed=1.0),
        ]
        sched = Schedule(inst, cube, pieces)
        with pytest.raises(InvalidScheduleError):
            sched.validate()

    def test_start_before_release_detected(self, cube):
        inst = Instance.from_arrays([0, 5], [1, 1])
        pieces = [
            Piece(job=0, processor=0, start=0.0, end=1.0, speed=1.0),
            Piece(job=1, processor=0, start=1.0, end=2.0, speed=1.0),
        ]
        sched = Schedule(inst, cube, pieces)
        with pytest.raises(InvalidScheduleError):
            sched.validate()

    def test_work_mismatch_detected(self, cube):
        inst = Instance.from_arrays([0], [2.0])
        pieces = [Piece(job=0, processor=0, start=0.0, end=1.0, speed=1.0)]
        sched = Schedule(inst, cube, pieces)
        with pytest.raises(InvalidScheduleError):
            sched.validate()

    def test_energy_budget_check(self, fig1, cube):
        sched = Schedule.from_speeds(fig1, cube, [1.0, 2.0, 2.0])  # energy 17
        sched.validate(energy_budget=17.0)
        with pytest.raises(InvalidScheduleError):
            sched.validate(energy_budget=10.0)
        assert not sched.is_valid(energy_budget=10.0)
        assert sched.is_valid(energy_budget=20.0)

    def test_deadline_check(self, cube):
        inst = Instance.from_arrays([0.0], [2.0], deadlines=[1.0])
        sched = Schedule.from_speeds(inst, cube, [1.0])  # finishes at 2 > deadline 1
        sched.validate()  # deadlines not enforced by default
        with pytest.raises(InvalidScheduleError):
            sched.validate(require_deadlines=True)

    def test_missing_piece_for_job(self, cube):
        inst = Instance.from_arrays([0, 0], [1, 1])
        pieces = [Piece(job=0, processor=0, start=0.0, end=1.0, speed=1.0)]
        sched = Schedule(inst, cube, pieces)
        with pytest.raises(InvalidScheduleError):
            _ = sched.completion_times

    def test_empty_schedule_rejected(self, fig1, cube):
        with pytest.raises(InvalidScheduleError):
            Schedule(fig1, cube, [])

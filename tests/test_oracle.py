"""Tests for the brute-force and DP reference solvers (and their mutual agreement)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import BudgetError, InfeasibleError
from repro.makespan import brute_force_laptop, dp_laptop, incmerge


class TestBruteForce:
    def test_fig1_matches_incmerge(self, fig1, cube):
        for energy in [3.0, 8.0, 12.0, 17.0, 30.0]:
            assert brute_force_laptop(fig1, cube, energy).makespan == pytest.approx(
                incmerge(fig1, cube, energy).makespan
            )

    def test_energy_equals_budget(self, fig1, cube):
        result = brute_force_laptop(fig1, cube, 11.0)
        assert result.energy == pytest.approx(11.0)

    def test_schedule_constructible(self, fig1, cube):
        result = brute_force_laptop(fig1, cube, 11.0)
        sched = result.schedule(fig1, cube)
        sched.validate(energy_budget=11.0 * (1 + 1e-9))

    def test_job_limit(self, cube):
        inst = Instance.from_arrays(list(range(25)), [1.0] * 25)
        with pytest.raises(InfeasibleError):
            brute_force_laptop(inst, cube, 10.0)

    def test_invalid_budget(self, fig1, cube):
        with pytest.raises(BudgetError):
            brute_force_laptop(fig1, cube, 0.0)


class TestDP:
    def test_fig1_matches_incmerge(self, fig1, cube):
        for energy in [3.0, 8.0, 12.0, 17.0, 30.0]:
            assert dp_laptop(fig1, cube, energy).makespan == pytest.approx(
                incmerge(fig1, cube, energy).makespan
            )

    def test_matches_brute_force_on_random_instances(self, cube):
        rng = np.random.default_rng(5)
        for _ in range(20):
            n = int(rng.integers(1, 9))
            releases = np.sort(rng.uniform(0, 10, n))
            releases[0] = 0.0
            works = rng.uniform(0.2, 3.0, n)
            inst = Instance.from_arrays(releases, works)
            energy = float(rng.uniform(0.5, 40.0))
            assert dp_laptop(inst, cube, energy).makespan == pytest.approx(
                brute_force_laptop(inst, cube, energy).makespan, rel=1e-9
            )

    def test_configuration_reconstruction_is_consistent(self, fig1, cube):
        # E = 18 is strictly inside the three-block region (the breakpoint at
        # E = 17 admits two equivalent configurations, so it is avoided here)
        result = dp_laptop(fig1, cube, 18.0)
        assert result.configuration.boundaries == (0, 1, 2)
        result_low = dp_laptop(fig1, cube, 6.0)
        assert result_low.configuration.boundaries == (0,)

    def test_coincident_releases(self, cube):
        inst = Instance.from_arrays([0, 0, 1, 1, 4], [1, 2, 1, 1, 2])
        for energy in [2.0, 10.0, 40.0]:
            assert dp_laptop(inst, cube, energy).makespan == pytest.approx(
                incmerge(inst, cube, energy).makespan, rel=1e-9
            )

    def test_invalid_budget(self, fig1, cube):
        with pytest.raises(BudgetError):
            dp_laptop(fig1, cube, -5.0)

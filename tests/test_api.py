"""Tests for the unified solver registry and typed request/response API."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    BUDGET_KINDS,
    MACHINES,
    MODES,
    OBJECTIVES,
    REGISTRY,
    ProblemSpec,
    SolveRequest,
    SolveResult,
    SolverCapabilities,
    SolverRegistry,
    list_solvers,
    solve,
)
from repro.batch import SOLVERS, solve_many
from repro.core import CUBE, Instance, PolynomialPower, TabulatedConvexPower
from repro.exceptions import (
    InvalidInstanceError,
    ReproError,
    UnknownSolverError,
    error_code,
)
from repro.io import request_from_dict, request_to_dict, result_from_dict, result_to_dict
from repro.makespan import incmerge
from repro.workloads import deadline_instance, equal_work_instance, figure1_instance


def request_for(name: str) -> SolveRequest:
    """A valid request for any registered solver, driven by its metadata."""
    caps = REGISTRY.capabilities(name)
    if caps.needs_deadlines:
        instance = deadline_instance(5, seed=1, laxity=3.0)
    elif caps.needs_zero_release:
        instance = Instance.from_arrays(
            releases=[0.0] * 5, works=[5.0, 3.0, 2.0, 2.0, 1.0]
        )
    elif caps.needs_equal_work:
        instance = equal_work_instance(4, seed=1)
    else:
        instance = figure1_instance()
    budget = None
    if caps.budget_kind == "energy":
        budget = 12.0
    elif caps.budget_kind == "metric":
        # a loose target every server-mode solver can meet
        budget = 50.0
    options = {}
    if name == "frontier":
        options = {"min_energy": 8.0, "max_energy": 17.0, "points": 3}
    return SolveRequest(
        instance=instance,
        power=CUBE,
        solver=name,
        budget=budget,
        processors=2 if caps.multiprocessor else 1,
        options=options,
    )


class TestRegistryCompleteness:
    """Every registered solver carries full, valid capability metadata."""

    def test_registry_is_populated(self):
        assert len(REGISTRY) >= 11

    @pytest.mark.parametrize("name", list(REGISTRY.names()))
    def test_full_capability_metadata(self, name):
        caps = REGISTRY.capabilities(name)
        assert caps.name == name
        assert caps.spec.objective in OBJECTIVES
        assert caps.spec.mode in MODES
        assert caps.spec.machine in MACHINES
        assert isinstance(caps.spec.online, bool)
        assert caps.budget_kind in BUDGET_KINDS
        assert isinstance(caps.batchable, bool)
        assert caps.summary.strip()

    @pytest.mark.parametrize("name", list(REGISTRY.names()))
    def test_every_solver_listed_by_cli(self, name, capsys):
        from repro.cli import main

        assert main(["solve", "--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "solver-list"
        assert name in {s["name"] for s in payload["solvers"]}

    @pytest.mark.parametrize("name", list(REGISTRY.names()))
    def test_request_roundtrips_through_json_and_solves(self, name):
        request = request_for(name)
        rebuilt = request_from_dict(json.loads(json.dumps(request_to_dict(request))))
        assert rebuilt.solver == name
        assert np.allclose(rebuilt.instance.releases, request.instance.releases)
        result = solve(rebuilt)
        assert result.ok, (name, result.error_code, result.error_message)
        back = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert back.ok and back.solver == name
        if result.speeds is not None:
            assert np.allclose(back.speeds, result.speeds)
        else:
            assert back.extras == dict(result.extras)

    def test_list_solvers_matches_registry(self):
        assert [caps.name for caps in list_solvers()] == list(REGISTRY.names())


class TestUnknownSolverUnification:
    """One registry error (with the known-solver list) from every entry point."""

    def test_registry_get(self):
        with pytest.raises(UnknownSolverError) as err:
            REGISTRY.get("nope")
        assert err.value.name == "nope"
        assert "laptop" in err.value.known

    def test_solve_many(self):
        with pytest.raises(UnknownSolverError) as err:
            solve_many([figure1_instance()], CUBE, 10.0, solver="nope")
        assert "known solvers" in str(err.value)

    def test_is_invalid_instance_and_value_error(self):
        # pre-registry call sites caught these; keep them working
        with pytest.raises(InvalidInstanceError):
            REGISTRY.get("nope")
        with pytest.raises(ValueError):
            solve_many([figure1_instance()], CUBE, 10.0, solver="nope")

    def test_solve_envelope(self):
        result = solve(SolveRequest(instance=figure1_instance(), power=CUBE, solver="nope"))
        assert not result.ok
        assert result.error_code == "unknown-solver"

    def test_non_batchable_solver_rejected_by_batch(self):
        with pytest.raises(InvalidInstanceError, match="not batchable"):
            solve_many([figure1_instance()], CUBE, 10.0, solver="frontier")


class TestErrorEnvelopes:
    def test_missing_budget(self):
        result = solve(SolveRequest(instance=figure1_instance(), power=CUBE, solver="laptop"))
        assert result.error_code == "invalid-budget"

    def test_missing_deadlines(self):
        result = solve(
            SolveRequest(instance=figure1_instance(), power=CUBE, solver="yds")
        )
        assert result.error_code == "invalid-instance"
        assert "deadline" in result.error_message

    def test_unsupported_power_gate(self):
        # no built-in solver needs power = s^alpha (they all keep numeric
        # fallbacks), so exercise the registry gate with a custom solver
        registry = SolverRegistry()
        registry.register(
            SolverCapabilities(
                name="poly-only",
                spec=ProblemSpec(objective="makespan", mode="laptop"),
                summary="requires power = s^alpha",
                needs_polynomial_power=True,
            ),
            lambda request: (request.power.alpha, None, None, {}),
        )
        tabulated = TabulatedConvexPower(lambda s: s**3)
        result = solve(
            SolveRequest(
                instance=figure1_instance(), power=tabulated,
                solver="poly-only", budget=1.0,
            ),
            registry=registry,
        )
        assert result.error_code == "unsupported-power"
        ok = solve(
            SolveRequest(
                instance=figure1_instance(), power=CUBE,
                solver="poly-only", budget=1.0,
            ),
            registry=registry,
        )
        assert ok.ok and ok.value == pytest.approx(3.0)

    def test_flow_accepts_non_polynomial_power(self):
        # regression: the flow solvers fall back to the convex approximation
        # for non-polynomial power, so the registry must not gate them
        from repro.core import AffinePolynomialPower

        affine = AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=0.5)
        result = solve(
            SolveRequest(
                instance=equal_work_instance(4, seed=0),
                power=affine,
                solver="flow",
                budget=10.0,
            )
        )
        assert result.ok, (result.error_code, result.error_message)
        assert result.extras["exact_closed_form"] is False

    def test_infeasible_maps_to_code(self):
        # a flow target below the infinite-speed lower bound is infeasible
        result = solve(
            SolveRequest(
                instance=equal_work_instance(4, seed=0),
                power=CUBE,
                solver="flow-server",
                budget=1e-9,
            )
        )
        assert not result.ok
        assert result.error_code == "infeasible"

    def test_uniprocessor_solver_rejects_processors(self):
        result = solve(
            SolveRequest(
                instance=figure1_instance(), power=CUBE, solver="laptop",
                budget=17.0, processors=4,
            )
        )
        assert result.error_code == "invalid-instance"

    def test_raise_if_error(self):
        result = solve(SolveRequest(instance=figure1_instance(), power=CUBE, solver="nope"))
        with pytest.raises(ReproError, match="unknown-solver"):
            result.raise_if_error()
        ok = solve(request_for("laptop"))
        assert ok.raise_if_error() is ok

    def test_error_code_helper(self):
        assert error_code(UnknownSolverError("x")) == "unknown-solver"
        assert error_code(RuntimeError("x")) == "internal"


class TestSpecResolution:
    def test_unique_cell_resolves(self):
        spec = ProblemSpec(objective="makespan", mode="laptop")
        assert REGISTRY.resolve(spec) == "laptop"
        result = solve(
            SolveRequest(instance=figure1_instance(), power=CUBE, spec=spec, budget=17.0)
        )
        assert result.ok and result.solver == "laptop"
        assert result.value == pytest.approx(6.5)

    def test_spec_failure_envelope_names_resolved_solver(self):
        # resolution succeeded, validation failed: the envelope must say
        # which solver rejected the request, not "<spec>"
        spec = ProblemSpec(objective="makespan", mode="laptop")
        result = solve(SolveRequest(instance=figure1_instance(), power=CUBE, spec=spec))
        assert not result.ok
        assert result.solver == "laptop"
        assert result.error_code == "invalid-budget"

    def test_spec_failure_envelope_without_resolution(self):
        spec = ProblemSpec(objective="flow", mode="frontier")
        result = solve(SolveRequest(instance=figure1_instance(), power=CUBE, spec=spec))
        assert not result.ok and result.solver == "<spec>"
        assert result.error_code == "unknown-solver"

    def test_ambiguous_cell_requires_explicit_name(self):
        spec = ProblemSpec(objective="energy", mode="server", online=True)
        with pytest.raises(InvalidInstanceError, match="several solvers"):
            REGISTRY.resolve(spec)

    def test_unmatched_cell_is_unknown_solver(self):
        with pytest.raises(UnknownSolverError):
            REGISTRY.resolve(ProblemSpec(objective="flow", mode="frontier"))

    def test_invalid_spec_fields_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ProblemSpec(objective="latency", mode="laptop")
        with pytest.raises(InvalidInstanceError):
            ProblemSpec(objective="makespan", mode="hybrid")

    def test_request_needs_solver_or_spec(self):
        with pytest.raises(InvalidInstanceError):
            SolveRequest(instance=figure1_instance(), power=CUBE)


class TestRegistryMechanics:
    def test_duplicate_registration_rejected(self):
        registry = SolverRegistry()
        caps = SolverCapabilities(
            name="demo",
            spec=ProblemSpec(objective="makespan", mode="laptop"),
            summary="demo",
        )
        registry.register(caps, lambda request: (1.0, 1.0, None, {}))
        with pytest.raises(InvalidInstanceError, match="already registered"):
            registry.register(caps, lambda request: (1.0, 1.0, None, {}))

    def test_find_filters(self):
        online = REGISTRY.find(online=True)
        assert online == ("avr", "oa", "bkp")
        assert set(REGISTRY.find(objective="makespan", machine="multi")) == {
            "multi-makespan",
            "multi-makespan-exact",
            "multi-makespan-ptas",
        }
        assert set(REGISTRY.find(variant_of="multi-makespan")) == {
            "multi-makespan-exact",
            "multi-makespan-ptas",
        }
        assert set(REGISTRY.find(approximate=True)) == {
            "multi-makespan-ptas",
            "frontier-coarse",
            "yds-anytime",
        }
        with pytest.raises(InvalidInstanceError, match="capability filter"):
            REGISTRY.find(bogus=True)

    def test_custom_registry_dispatch(self):
        registry = SolverRegistry()
        registry.register(
            SolverCapabilities(
                name="demo",
                spec=ProblemSpec(objective="makespan", mode="laptop"),
                summary="doubles the budget",
            ),
            lambda request: (2.0 * request.budget, request.budget, None, {"tag": "demo"}),
        )
        result = solve(
            SolveRequest(instance=figure1_instance(), power=CUBE, solver="demo", budget=3.0),
            registry=registry,
        )
        assert result.ok and result.value == 6.0 and result.extras["tag"] == "demo"


class TestDeprecatedSolversAlias:
    def test_view_matches_registry_batchable_set(self):
        assert list(SOLVERS) == list(REGISTRY.find(batchable=True))
        assert len(SOLVERS) == len(REGISTRY.find(batchable=True))
        assert "laptop" in SOLVERS and "frontier" not in SOLVERS

    def test_membership_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert "laptop" in SOLVERS

    def test_getitem_warns_and_matches_direct_solver(self):
        with pytest.warns(DeprecationWarning, match="SOLVERS is deprecated"):
            legacy = SOLVERS["laptop"]
        value, energy, speeds = legacy(figure1_instance(), CUBE, 17.0)
        direct = incmerge(figure1_instance(), CUBE, 17.0)
        assert value == direct.makespan
        assert energy == direct.energy
        assert np.array_equal(speeds, direct.speeds)

    def test_unknown_key_raises_keyerror(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                SOLVERS["nope"]


class TestBatchRegistryEquivalence:
    def test_solve_many_matches_registry_run(self):
        instances = [equal_work_instance(4, seed=s) for s in range(3)]
        batch = solve_many(instances, CUBE, 6.0, solver="flow")
        for res, inst in zip(batch, instances):
            direct = REGISTRY.run(
                SolveRequest(instance=inst, power=CUBE, solver="flow", budget=6.0)
            )
            assert res.value == float(direct.value)
            assert res.energy == float(direct.energy)
            assert np.array_equal(res.speeds, direct.speeds)

    def test_top_level_exports(self):
        assert repro.solve is solve
        assert repro.REGISTRY is REGISTRY
        assert isinstance(repro.REGISTRY, SolverRegistry)
        result = repro.solve(request_for("oa"))
        assert isinstance(result, SolveResult) and result.ok

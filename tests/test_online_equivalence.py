"""Equivalence suite for the online engine v2 (incremental / vectorized paths).

Follows the ``tests/test_kernels.py`` pattern: every fast path introduced by
the online engine is pinned to its retained scalar reference at 1e-9 —

* ``oa_schedule_incremental`` (prefix-density planner, in-place residual
  updates) vs ``oa_schedule`` (re-plans with full YDS per event),
* ``avr_speed_profile`` (event-grid scatter-add kernel) vs
  ``avr_speed_profile_reference`` (one scan per segment),
* ``bkp_speed_profile`` (cumulative work-grid evaluation) vs
  ``bkp_speed_profile_reference`` (one ``bkp_speed_at`` per slice),
* ``execute_profile_edf`` (heap hot loop) vs
  ``execute_profile_edf_reference`` (full-array rescans),

across all deadline-carrying generator families, including the two
adversarial ones, plus randomized (Hypothesis) instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from _strategies import (
    deadline_instance_from as _deadline_instance,
    hypothesis_settings,
    laxities_strategy,
    releases_strategy,
    works_strategy,
)
from repro.core import CUBE, PolynomialPower
from repro.online import (
    avr_speed_profile,
    avr_speed_profile_reference,
    bkp_speed_profile,
    bkp_speed_profile_reference,
    execute_profile_edf,
    execute_profile_edf_reference,
    oa_schedule,
    oa_schedule_incremental,
)
from repro.workloads import (
    deadline_instance,
    nested_interval_instance,
    staircase_deadline_instance,
)

TOL = 1e-9

#: name -> (n_jobs, seed) -> instance, every deadline-carrying family
FAMILIES = {
    "deadline": lambda n, seed: deadline_instance(n, seed=seed, laxity=2.5),
    "staircase": lambda n, seed: staircase_deadline_instance(n, seed=seed),
    "nested": lambda n, seed: nested_interval_instance(n, seed=seed),
}

common_settings = hypothesis_settings(max_examples=30)


def _assert_profiles_equal(fast, slow):
    assert len(fast) == len(slow)
    for (a1, b1, s1), (a2, b2, s2) in zip(fast, slow):
        assert a1 == pytest.approx(a2, rel=1e-12, abs=1e-12)
        assert b1 == pytest.approx(b2, rel=1e-12, abs=1e-12)
        assert s1 == pytest.approx(s2, rel=TOL, abs=TOL)


# ----------------------------------------------------------------------
# incremental OA vs the scalar replanning reference
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n_jobs", [1, 2, 5, 11, 20])
def test_incremental_oa_matches_reference_on_families(family, n_jobs):
    for seed in range(4):
        inst = FAMILIES[family](n_jobs, seed)
        for alpha in (2.0, 3.0):
            power = PolynomialPower(alpha)
            reference = oa_schedule(inst, power)
            incremental = oa_schedule_incremental(inst, power)
            assert incremental.energy == pytest.approx(reference.energy, rel=TOL)
            incremental.validate(require_deadlines=True)


def test_incremental_oa_same_event_batch_regression():
    """Pinned hypothesis falsifying example: two jobs in one release event.

    The arriving batch must be deadline-sorted before the binary merge —
    searchsorted positions only interleave against the existing order, so an
    unsorted batch corrupted the prefix-density staircase (speeds 2, 2
    instead of 1, 1 here).
    """
    inst = _deadline_instance([0.0, 0.0], [1.0, 1.0], [2.0, 1.0])
    incremental = oa_schedule_incremental(inst, CUBE)
    assert incremental.energy == pytest.approx(oa_schedule(inst, CUBE).energy, rel=TOL)
    assert incremental.energy == pytest.approx(2.0, rel=TOL)


@pytest.mark.slow
@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_incremental_oa_matches_reference_hypothesis(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    reference = oa_schedule(inst, CUBE)
    incremental = oa_schedule_incremental(inst, CUBE)
    assert incremental.energy == pytest.approx(reference.energy, rel=TOL)
    # the executed work per job must match the instance exactly either way
    executed = np.zeros(inst.n_jobs)
    for piece in incremental.pieces:
        executed[piece.job] += piece.work
    assert np.allclose(executed, inst.works, rtol=1e-6)


# ----------------------------------------------------------------------
# vectorized AVR / BKP profiles vs scalar references
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n_jobs", [1, 3, 9, 16])
def test_avr_profile_matches_reference_on_families(family, n_jobs):
    for seed in range(4):
        inst = FAMILIES[family](n_jobs, seed)
        _assert_profiles_equal(
            avr_speed_profile(inst), avr_speed_profile_reference(inst)
        )


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n_jobs", [1, 3, 9])
def test_bkp_profile_matches_reference_on_families(family, n_jobs):
    for seed in range(2):
        inst = FAMILIES[family](n_jobs, seed)
        _assert_profiles_equal(
            bkp_speed_profile(inst, steps_per_interval=8),
            bkp_speed_profile_reference(inst, steps_per_interval=8),
        )


@pytest.mark.slow
@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_avr_and_bkp_profiles_match_reference_hypothesis(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    _assert_profiles_equal(avr_speed_profile(inst), avr_speed_profile_reference(inst))
    _assert_profiles_equal(
        bkp_speed_profile(inst, steps_per_interval=4),
        bkp_speed_profile_reference(inst, steps_per_interval=4),
    )


# ----------------------------------------------------------------------
# heap-based executor vs full-rescan reference
# ----------------------------------------------------------------------


def _assert_schedules_equal(fast, slow):
    assert fast.energy == pytest.approx(slow.energy, rel=TOL)
    assert len(fast.pieces) == len(slow.pieces)
    for p, q in zip(fast.pieces, slow.pieces):
        assert p.job == q.job
        assert p.start == pytest.approx(q.start, rel=1e-12, abs=1e-12)
        assert p.end == pytest.approx(q.end, rel=1e-12, abs=1e-12)
        assert p.speed == pytest.approx(q.speed, rel=TOL)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n_jobs", [1, 4, 10, 18])
def test_executor_matches_reference_on_avr_profiles(family, n_jobs):
    for seed in range(3):
        inst = FAMILIES[family](n_jobs, seed)
        profile = avr_speed_profile(inst)
        _assert_schedules_equal(
            execute_profile_edf(inst, CUBE, profile),
            execute_profile_edf_reference(inst, CUBE, profile),
        )


@pytest.mark.slow
@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_executor_matches_reference_hypothesis(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    profile = bkp_speed_profile(inst, steps_per_interval=4)
    _assert_schedules_equal(
        execute_profile_edf(inst, CUBE, profile, work_tolerance=1e-3),
        execute_profile_edf_reference(inst, CUBE, profile, work_tolerance=1e-3),
    )

"""Property-based tests (hypothesis) for the core invariants of the paper.

Each property encodes one structural fact proved in the paper (or required by
the model), checked on randomly generated instances:

* IncMerge spends exactly the budget, never violates it, and its makespan is
  never beaten by the exhaustive block-configuration search (Lemma 7).
* Block speeds are non-decreasing (Lemma 6) and the schedule has the
  Lemma 2-5 structure.
* The non-dominated frontier is consistent with IncMerge and non-increasing.
* The server problem inverts the laptop problem.
* Equal-work flow: energy budget respected, more energy never increases the
  optimal flow, Theorem 1 holds at the optimum.
* Cyclic assignment is no worse than random assignments for equal-work
  multiprocessor makespan (Theorem 10).
* YDS meets every deadline and never uses more energy than AVR (optimality).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import CUBE, Instance, PolynomialPower, check_optimal_structure
from repro.flow import equal_work_flow_laptop, verify_theorem1
from repro.makespan import (
    brute_force_laptop,
    incmerge,
    makespan_frontier,
    minimum_energy_for_makespan,
)
from repro.multi import cyclic_assignment, makespan_for_assignment
from repro.online import avr_schedule, yds_schedule

# hypothesis-heavy: excluded from `pytest -m "not slow"` quick runs
pytestmark = pytest.mark.slow

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

releases_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)
works_strategy = st.lists(
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)
energy_strategy = st.floats(min_value=0.2, max_value=50.0, allow_nan=False, allow_infinity=False)
alpha_strategy = st.floats(min_value=1.3, max_value=4.0, allow_nan=False, allow_infinity=False)


def build_instance(releases: list[float], works: list[float]) -> Instance:
    n = min(len(releases), len(works))
    rel = sorted(releases[:n])
    rel[0] = 0.0
    return Instance.from_arrays(rel, works[:n])


common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


# ----------------------------------------------------------------------
# makespan properties
# ----------------------------------------------------------------------


@common_settings
@given(releases=releases_strategy, works=works_strategy, energy=energy_strategy)
def test_incmerge_budget_and_structure(releases, works, energy):
    inst = build_instance(releases, works)
    result = incmerge(inst, CUBE, energy)
    # exact budget use (the optimum always exhausts the budget)
    assert result.energy == pytest.approx(energy, rel=1e-8)
    # schedule feasibility and Lemma 2-6 structure
    sched = result.schedule()
    sched.validate(energy_budget=energy * (1 + 1e-8))
    assert check_optimal_structure(sched).satisfies_all
    # non-decreasing block speeds
    speeds = [b.speed for b in result.blocks]
    assert all(s2 >= s1 * (1 - 1e-12) for s1, s2 in zip(speeds, speeds[1:]))


@common_settings
@given(releases=releases_strategy, works=works_strategy, energy=energy_strategy)
def test_incmerge_is_optimal_against_brute_force(releases, works, energy):
    inst = build_instance(releases, works)
    assume(inst.n_jobs <= 6)
    fast = incmerge(inst, CUBE, energy)
    slow = brute_force_laptop(inst, CUBE, energy)
    assert fast.makespan == pytest.approx(slow.makespan, rel=1e-8)


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    energy=energy_strategy,
    alpha=alpha_strategy,
)
def test_frontier_matches_incmerge_for_any_alpha(releases, works, energy, alpha):
    inst = build_instance(releases, works)
    power = PolynomialPower(alpha)
    curve = makespan_frontier(inst, power)
    assert curve.value(energy) == pytest.approx(incmerge(inst, power, energy).makespan, rel=1e-7)


@common_settings
@given(releases=releases_strategy, works=works_strategy, energy=energy_strategy)
def test_more_energy_never_increases_makespan(releases, works, energy):
    inst = build_instance(releases, works)
    low = incmerge(inst, CUBE, energy).makespan
    high = incmerge(inst, CUBE, energy * 1.5).makespan
    assert high <= low + 1e-9


@common_settings
@given(releases=releases_strategy, works=works_strategy, energy=energy_strategy)
def test_server_inverts_laptop(releases, works, energy):
    inst = build_instance(releases, works)
    makespan = incmerge(inst, CUBE, energy).makespan
    recovered = minimum_energy_for_makespan(inst, CUBE, makespan)
    assert recovered == pytest.approx(energy, rel=1e-6)


# ----------------------------------------------------------------------
# flow properties (equal work)
# ----------------------------------------------------------------------


@common_settings
@given(releases=releases_strategy, energy=st.floats(min_value=0.5, max_value=30.0))
def test_equal_work_flow_budget_and_theorem1(releases, energy):
    rel = sorted(releases)
    rel[0] = 0.0
    inst = Instance.equal_work(rel, work=1.0)
    result = equal_work_flow_laptop(inst, CUBE, energy)
    assert result.energy <= energy * (1 + 1e-5)
    assert verify_theorem1(inst, CUBE, result.speeds, rtol=5e-2)
    sched = result.schedule(inst, CUBE)
    sched.validate(energy_budget=energy * (1 + 1e-4))


@common_settings
@given(releases=releases_strategy, energy=st.floats(min_value=0.5, max_value=20.0))
def test_equal_work_flow_monotone_in_energy(releases, energy):
    rel = sorted(releases)
    rel[0] = 0.0
    inst = Instance.equal_work(rel, work=1.0)
    low = equal_work_flow_laptop(inst, CUBE, energy).flow
    high = equal_work_flow_laptop(inst, CUBE, energy * 2.0).flow
    assert high <= low + 1e-5


# ----------------------------------------------------------------------
# multiprocessor properties
# ----------------------------------------------------------------------


@common_settings
@given(
    releases=st.lists(
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False), min_size=2, max_size=6
    ),
    energy=st.floats(min_value=1.0, max_value=30.0),
    n_processors=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cyclic_never_worse_than_random_assignment(releases, energy, n_processors, seed):
    rel = sorted(releases)
    rel[0] = 0.0
    inst = Instance.equal_work(rel, work=1.0)
    cyclic = makespan_for_assignment(
        inst, CUBE, cyclic_assignment(inst.n_jobs, n_processors), energy
    )
    rng = np.random.default_rng(seed)
    mapping: dict[int, list[int]] = {p: [] for p in range(n_processors)}
    for job in range(inst.n_jobs):
        mapping[int(rng.integers(0, n_processors))].append(job)
    mapping = {p: jobs for p, jobs in mapping.items() if jobs}
    other = makespan_for_assignment(inst, CUBE, mapping, energy)
    assert cyclic.makespan <= other.makespan * (1 + 1e-7)


# ----------------------------------------------------------------------
# deadline / online properties
# ----------------------------------------------------------------------


@common_settings
@given(
    releases=st.lists(
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False), min_size=1, max_size=5
    ),
    works=st.lists(
        st.floats(min_value=0.2, max_value=2.0, allow_nan=False), min_size=1, max_size=5
    ),
    laxities=st.lists(
        st.floats(min_value=0.5, max_value=5.0, allow_nan=False), min_size=1, max_size=5
    ),
)
def test_yds_feasible_and_no_worse_than_avr(releases, works, laxities):
    n = min(len(releases), len(works), len(laxities))
    rel = sorted(releases[:n])
    rel[0] = 0.0
    deadlines = [r + l for r, l in zip(rel, laxities[:n])]
    inst = Instance.from_arrays(rel, works[:n], deadlines=deadlines)
    optimal = yds_schedule(inst, CUBE)
    optimal.validate(require_deadlines=True)
    heuristic = avr_schedule(inst, CUBE)
    heuristic.validate(require_deadlines=True)
    assert optimal.energy <= heuristic.energy * (1 + 1e-9)

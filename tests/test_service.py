"""Tests for the ``repro serve`` request loop (:mod:`repro.service`)."""

from __future__ import annotations

import io
import json
import socket
import threading

import pytest

from repro.api import SolveRequest
from repro.api import solve as api_solve
from repro.cache import ResultCache
from repro.cli import main
from repro.core import CUBE
from repro.io import request_to_dict, result_to_dict
from repro.service import AsyncServeLoop, ServeStats, serve_stream
from repro.workloads import figure1_instance


def _request_line(request_id=None, budget=17.0) -> str:
    envelope = request_to_dict(
        SolveRequest(
            instance=figure1_instance(), power=CUBE, solver="laptop", budget=budget
        )
    )
    if request_id is not None:
        envelope["id"] = request_id
    return json.dumps(envelope) + "\n"


def _serve(lines, **kwargs):
    out = io.StringIO()
    stats = serve_stream(iter(lines), out, **kwargs)
    return [json.loads(line) for line in out.getvalue().splitlines()], stats


class TestServeStream:
    def test_one_response_per_line_in_order(self):
        responses, stats = _serve([_request_line(), _request_line(budget=8.0)])
        assert len(responses) == 2
        assert all(r["kind"] == "serve-response" for r in responses)
        assert all(r["result"]["status"] == "ok" for r in responses)
        assert stats.requests == 2 and stats.ok == 2 and stats.errors == 0
        # responses match the library path exactly
        direct = api_solve(
            SolveRequest(
                instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
            )
        )
        assert responses[0]["result"] == result_to_dict(direct)

    def test_identical_requests_second_is_cache_hit(self):
        responses, stats = _serve(
            [_request_line(), _request_line()], cache=ResultCache()
        )
        assert responses[0]["serve"]["cache"] == "miss"
        assert responses[1]["serve"]["cache"] == "hit"
        assert responses[0]["result"] == responses[1]["result"]
        assert stats.cache_hits == 1

    def test_no_cache_reports_off(self):
        responses, _ = _serve([_request_line()])
        assert responses[0]["serve"]["cache"] == "off"

    def test_client_id_is_echoed(self):
        responses, _ = _serve([_request_line(request_id="req-42")])
        assert responses[0]["id"] == "req-42"

    def test_malformed_line_is_structured_error_and_loop_survives(self):
        responses, stats = _serve(["{not json\n", _request_line()])
        assert len(responses) == 2
        assert responses[0]["result"]["status"] == "error"
        assert responses[0]["result"]["error"]["code"] == "invalid-instance"
        assert responses[1]["result"]["status"] == "ok"
        assert stats.errors == 1 and stats.ok == 1

    def test_wrong_envelope_kind_is_structured_error(self):
        responses, _ = _serve([json.dumps({"kind": "instance"}) + "\n"])
        assert responses[0]["result"]["status"] == "error"

    @pytest.mark.parametrize("power", [5, None, [], {"type": "polynomial"},
                                       {"type": "polynomial", "alpha": "x"}])
    def test_malformed_power_section_is_structured_error(self, power):
        # regression: a wrong-typed power section used to raise AttributeError
        # through request_from_dict and kill the loop
        envelope = json.loads(_request_line())
        envelope["power"] = power
        responses, stats = _serve([json.dumps(envelope) + "\n"])
        assert responses[0]["result"]["status"] == "error"
        assert stats.errors == 1

    def test_solver_failure_uses_the_serving_contract(self):
        envelope = request_to_dict(
            SolveRequest(instance=figure1_instance(), power=CUBE, solver="laptop")
        )  # no budget: laptop requires one
        responses, stats = _serve([json.dumps(envelope) + "\n"])
        assert responses[0]["result"]["status"] == "error"
        assert responses[0]["result"]["error"]["code"] == "invalid-budget"
        assert stats.errors == 1

    def test_blank_lines_are_skipped(self):
        responses, stats = _serve(["\n", "   \n", _request_line()])
        assert len(responses) == 1
        assert stats.requests == 1

    def test_timing_flag_controls_latency_field(self):
        with_timing, _ = _serve([_request_line()])
        without, _ = _serve([_request_line()], timing=False)
        assert "latency_ms" in with_timing[0]["serve"]
        assert "latency_ms" not in without[0]["serve"]

    def test_verify_metadata_on_ok_result(self):
        responses, _ = _serve([_request_line()], verify=True, cache=ResultCache())
        assert responses[0]["serve"]["verified"] is True

    def test_eof_returns_stats_cleanly(self):
        _, stats = _serve([])
        assert stats == ServeStats()


def _tcp_roundtrip(address, lines: list[str]) -> list[dict]:
    """Send all lines on one connection, half-close, read responses to EOF."""
    with socket.create_connection(address, timeout=10) as conn:
        conn.sendall("".join(lines).encode("utf-8"))
        conn.shutdown(socket.SHUT_WR)
        blob = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            blob += chunk
    return [json.loads(line) for line in blob.decode("utf-8").splitlines()]


class TestServeTcp:
    def test_tcp_roundtrip_with_cache_hit(self):
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        try:
            responses = _tcp_roundtrip(address, [_request_line(), _request_line()])
        finally:
            stats = loop.stop()
        assert [r["serve"]["cache"] for r in responses] == ["miss", "hit"]
        assert all(r["result"]["status"] == "ok" for r in responses)
        assert stats.requests == 2
        assert stats.cache_hits == 1

    def test_tcp_cache_is_shared_across_connections(self):
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        try:
            seen = [_tcp_roundtrip(address, [_request_line()])[0] for _ in range(2)]
        finally:
            loop.stop()
        assert seen[0]["serve"]["cache"] == "miss"
        assert seen[1]["serve"]["cache"] == "hit"


class TestServeCli:
    def test_stdin_stdout_loop(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(_request_line() + _request_line())
        )
        assert main(["serve", "--no-timing"]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["serve"]["cache"] for r in responses] == ["miss", "hit"]
        assert "serve: 2 request(s), 1 cache hit(s)" in captured.err

    def test_no_cache_flag(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(_request_line()))
        assert main(["serve", "--no-cache", "--no-timing"]) == 0
        responses = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert responses[0]["serve"]["cache"] == "off"

    def test_cache_dir_persists_across_invocations(self, tmp_path, monkeypatch, capsys):
        store = str(tmp_path / "cache")
        monkeypatch.setattr("sys.stdin", io.StringIO(_request_line()))
        assert main(["serve", "--cache-dir", store, "--no-timing"]) == 0
        capsys.readouterr()
        monkeypatch.setattr("sys.stdin", io.StringIO(_request_line()))
        assert main(["serve", "--cache-dir", store, "--no-timing"]) == 0
        responses = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert responses[0]["serve"]["cache"] == "hit"

    def test_malformed_tcp_address_is_cli_error(self, capsys):
        assert main(["serve", "--tcp", "nonsense"]) == 2
        assert "malformed --tcp" in capsys.readouterr().err

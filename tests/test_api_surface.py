"""Public-API-surface snapshot: accidental export breaks fail fast.

These snapshots pin the exported names (``__all__``) of the modules that form
the library's serving surface.  A failure here means the public API changed:
if the change is intentional, update the snapshot *and* the README's
"Library API" section in the same commit; if not, you just caught an
accidental break before it shipped.

Part of the quick (``-m "not slow"``) split so CI fails fast.
"""

from __future__ import annotations

import repro
import repro.api
import repro.batch
import repro.cache
import repro.cache_store
import repro.exceptions
import repro.faults
import repro.io
import repro.service
import repro.sim
import repro.verify

API_SURFACE = {
    "OBJECTIVES",
    "MODES",
    "MACHINES",
    "BUDGET_KINDS",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "RegisteredSolver",
    "SolverRegistry",
    "REGISTRY",
    "CostModel",
    "RouteDecision",
    "Finding",
    "VerificationReport",
    "solve",
    "verify",
    "list_solvers",
}

VERIFY_SURFACE = {
    "SEVERITIES",
    "Finding",
    "VerificationReport",
    "VerificationContext",
    "CHECKERS",
    "checker",
    "verify",
    "check_schedule",
    "reconstruct_schedule",
    "StructureReport",
    "check_optimal_structure",
    "assert_optimal_structure",
}

IO_SURFACE = {
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "instances_to_dict",
    "instances_from_dict",
    "save_instances",
    "load_instances",
    "instance_to_csv",
    "instance_from_csv",
    "power_to_dict",
    "power_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "spec_to_dict",
    "spec_from_dict",
    "request_to_dict",
    "request_from_dict",
    "result_to_dict",
    "result_from_dict",
    "capabilities_to_dict",
    "batch_result_to_dict",
    "batch_result_from_dict",
    "serve_response_to_dict",
    "serve_response_from_dict",
    "report_to_dict",
    "report_from_dict",
    "speed_levels_to_dict",
    "speed_levels_from_dict",
    "machine_model_to_dict",
    "machine_model_from_dict",
    "ENVELOPE_CODECS",
    "binary_envelope_encode",
    "binary_envelope_decode",
    "encode_envelope",
    "decode_envelope",
}

BATCH_SURFACE = {"BatchResult", "SOLVERS", "solve_many", "solve_stream"}

CACHE_SURFACE = {
    "CacheStats",
    "ResultCache",
    "capability_fingerprint",
    "instance_digest",
    "request_cache_key",
}

CACHE_STORE_SURFACE = {
    "ENTRY_KIND",
    "STORE_BACKENDS",
    "CacheStore",
    "DiskJSONStore",
    "MemoryStore",
    "SqliteStore",
    "open_store",
    "validate_entry",
}

SERVICE_SURFACE = {
    "ServeStats",
    "handle_request_line",
    "serve_stream",
    "AsyncServeLoop",
}

SIM_SURFACE = {
    "MACHINE_MODEL_NAMES",
    "SIM_ALGORITHMS",
    "TRACE_FAMILIES",
    "MachineModel",
    "SimEvent",
    "SimReport",
    "SimResult",
    "SleepState",
    "Trace",
    "TraceEvent",
    "generate_trace",
    "load_trace",
    "machine_model",
    "save_trace",
    "scenario_matrix",
    "sim_report_from_dict",
    "sim_report_to_dict",
    "simulate",
    "trace_from_csv",
    "trace_from_jsonl",
    "trace_to_csv",
    "trace_to_jsonl",
}

FAULTS_SURFACE = {
    "SITES",
    "WORKER_EXCEPTION",
    "WORKER_HANG",
    "SOLVER_SLOW",
    "CACHE_WRITE",
    "JOURNAL_TORN",
    "CONNECTION_DROP",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
}

EXCEPTIONS_SURFACE = {
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleError",
    "BudgetError",
    "ConvergenceError",
    "UnsupportedPowerFunctionError",
    "UnknownSolverError",
    "VerificationError",
    "DeadlineExceededError",
    "OverloadedError",
    "WorkerTimeoutError",
    "error_code",
}

TOP_LEVEL_SURFACE = {
    "analysis",
    "api",
    "batch",
    "BatchResult",
    "solve_many",
    "solve_stream",
    "cache",
    "ResultCache",
    "core",
    "discrete",
    "faults",
    "FaultPlan",
    "flow",
    "io",
    "makespan",
    "multi",
    "online",
    "service",
    "sim",
    "verify",
    "workloads",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "SolverRegistry",
    "REGISTRY",
    "solve",
    "list_solvers",
    "Instance",
    "Job",
    "PowerFunction",
    "PolynomialPower",
    "CUBE",
    "SQUARE",
    "Schedule",
    "TradeoffCurve",
    "__version__",
}

#: The registered solver matrix is part of the served surface too: removing
#: or renaming a solver breaks every client that requests it by name.
SOLVER_NAMES = {
    "laptop",
    "server",
    "frontier",
    "flow",
    "flow-server",
    "multi-makespan",
    "multi-flow",
    "yds",
    "avr",
    "oa",
    "bkp",
}


def test_api_surface_snapshot():
    assert set(repro.api.__all__) == API_SURFACE


def test_verify_surface_snapshot():
    assert set(repro.verify.__all__) == VERIFY_SURFACE


def test_io_surface_snapshot():
    assert set(repro.io.__all__) == IO_SURFACE


def test_batch_surface_snapshot():
    assert set(repro.batch.__all__) == BATCH_SURFACE


def test_cache_surface_snapshot():
    assert set(repro.cache.__all__) == CACHE_SURFACE


def test_cache_store_surface_snapshot():
    assert set(repro.cache_store.__all__) == CACHE_STORE_SURFACE


def test_service_surface_snapshot():
    assert set(repro.service.__all__) == SERVICE_SURFACE


def test_sim_surface_snapshot():
    assert set(repro.sim.__all__) == SIM_SURFACE


def test_faults_surface_snapshot():
    assert set(repro.faults.__all__) == FAULTS_SURFACE


def test_exceptions_surface_snapshot():
    assert set(repro.exceptions.__all__) == EXCEPTIONS_SURFACE


def test_top_level_surface_snapshot():
    assert set(repro.__all__) == TOP_LEVEL_SURFACE


def test_registered_solver_names_snapshot():
    assert set(repro.REGISTRY.names()) >= SOLVER_NAMES


def test_all_names_actually_exported():
    for module in (repro, repro.api, repro.io, repro.batch, repro.cache,
                   repro.exceptions, repro.faults, repro.service, repro.sim,
                   repro.verify):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} missing"

"""Tests for the makespan server problem (minimum energy for a deadline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import InfeasibleError
from repro.makespan import (
    incmerge,
    makespan_frontier,
    minimum_energy_for_makespan,
    minimum_energy_for_makespan_direct,
    schedule_for_makespan,
)


class TestServerProblem:
    def test_fig1_known_values(self, fig1, cube):
        # at T = 6.5 the optimum is the 3-block schedule with speeds 1, 2, 2
        assert minimum_energy_for_makespan(fig1, cube, 6.5) == pytest.approx(17.0)
        # at T = 8 the optimum is the single block at speed 1 -> energy 8
        assert minimum_energy_for_makespan(fig1, cube, 8.0) == pytest.approx(8.0)

    def test_direct_matches_frontier_inversion(self, fig1, cube):
        for target in [6.3, 6.5, 7.0, 8.0, 9.5, 15.0]:
            a = minimum_energy_for_makespan(fig1, cube, target)
            b = minimum_energy_for_makespan_direct(fig1, cube, target)
            assert a == pytest.approx(b, rel=1e-9)

    def test_roundtrip_with_laptop_problem(self, fig1, cube):
        for target in [6.4, 7.3, 9.0, 20.0]:
            energy = minimum_energy_for_makespan(fig1, cube, target)
            achieved = incmerge(fig1, cube, energy).makespan
            assert achieved == pytest.approx(target, rel=1e-9)

    def test_roundtrip_from_energy_side(self, fig1, cube):
        for energy in [5.0, 9.0, 14.0, 22.0]:
            makespan = incmerge(fig1, cube, energy).makespan
            recovered = minimum_energy_for_makespan(fig1, cube, makespan)
            assert recovered == pytest.approx(energy, rel=1e-8)

    def test_precomputed_frontier_reused(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        value = minimum_energy_for_makespan(fig1, cube, 7.0, frontier=curve)
        assert value == pytest.approx(minimum_energy_for_makespan(fig1, cube, 7.0))

    def test_infeasible_targets(self, fig1, cube):
        with pytest.raises(InfeasibleError):
            minimum_energy_for_makespan(fig1, cube, 6.0)  # equal to the last release
        with pytest.raises(InfeasibleError):
            minimum_energy_for_makespan(fig1, cube, 3.0)
        with pytest.raises(InfeasibleError):
            minimum_energy_for_makespan_direct(fig1, cube, 5.9)
        with pytest.raises(InfeasibleError):
            minimum_energy_for_makespan(fig1, cube, float("inf"))

    def test_monotone_in_target(self, cube):
        inst = Instance.from_arrays([0, 1, 4, 4.2], [1, 2, 1, 1])
        targets = np.linspace(4.5, 20.0, 25)
        energies = [minimum_energy_for_makespan(inst, cube, float(t)) for t in targets]
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))

    def test_schedule_for_makespan(self, fig1, cube):
        sched = schedule_for_makespan(fig1, cube, 7.0)
        assert sched.makespan == pytest.approx(7.0, rel=1e-9)
        sched.validate()

    def test_random_roundtrips(self, cube):
        rng = np.random.default_rng(11)
        for _ in range(15):
            n = int(rng.integers(1, 7))
            releases = np.sort(rng.uniform(0, 6, n))
            releases[0] = 0.0
            works = rng.uniform(0.3, 2.0, n)
            inst = Instance.from_arrays(releases, works)
            energy = float(rng.uniform(0.5, 30.0))
            makespan = incmerge(inst, cube, energy).makespan
            assert minimum_energy_for_makespan(inst, cube, makespan) == pytest.approx(
                energy, rel=1e-7
            )

"""The golden regeneration script and the checked-in captures cannot drift.

``tools/regen_golden.py`` is the single command that rewrites
``tests/golden/``; this suite runs its :func:`regenerate` function and
asserts the output matches the repository byte for byte — so a CLI output
change cannot land without regenerating the goldens, and a script change
cannot silently produce different captures than the ones tests pin against.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "golden"
_SCRIPT = Path(__file__).parent.parent / "tools" / "regen_golden.py"


def _load_regen_module():
    spec = importlib.util.spec_from_file_location("regen_golden", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def captures() -> dict[str, str]:
    return _load_regen_module().regenerate()


pytestmark = pytest.mark.slow  # includes the compete sweep


def test_script_covers_every_checked_in_golden(captures):
    on_disk = {p.name for p in GOLDEN.iterdir() if p.is_file()}
    assert on_disk == set(captures), (
        "tools/regen_golden.py and tests/golden/ disagree about which "
        "captures exist; extend CLI_CASES (or delete the stale file)"
    )


def test_script_output_matches_checked_in_goldens(captures):
    stale = [
        name
        for name, text in sorted(captures.items())
        if (GOLDEN / name).read_text(encoding="utf-8") != text
    ]
    assert not stale, (
        f"golden files out of date: {stale}; run python tools/regen_golden.py"
    )


def test_verify_smoke_envelopes_pass_verification():
    # the exact invocation CI's verify smoke step runs
    from repro.cli import main

    assert main([
        "verify",
        "--request", str(GOLDEN / "verify_request.json"),
        "--result", str(GOLDEN / "verify_result.json"),
    ]) == 0

"""Tests for the certificate-verification subsystem (:mod:`repro.verify`).

The negative-path suite mutates known-good results — shifting completions
past deadlines, dropping work, inflating reported energy — and asserts each
checker rejects the tampered envelope with the *right* finding code, which
guards the verifiers against passing vacuously.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro
from repro.api import SolveRequest, SolveResult
from repro.api import verify as api_verify
from repro.batch import solve_many
from repro.cli import main
from repro.core import CUBE, Instance, Piece, Schedule
from repro.exceptions import VerificationError
from repro.io import (
    report_from_dict,
    report_to_dict,
    request_to_dict,
    result_to_dict,
    save_instances,
)
from repro.verify import VerificationReport, check_schedule, verify
from repro.workloads import equal_work_instance


def _solved(solver: str, **kwargs) -> tuple[SolveRequest, SolveResult]:
    request = SolveRequest(solver=solver, power=CUBE, **kwargs)
    result = repro.solve(request)
    assert result.ok, result.error_message
    return request, result


@pytest.fixture
def laptop_pair(fig1):
    return _solved("laptop", instance=fig1, budget=17.0)


@pytest.fixture
def yds_pair(fig1):
    return _solved("yds", instance=fig1.with_deadlines(12.0))


class TestPositive:
    def test_laptop_report_passes_and_lists_checks(self, laptop_pair):
        report = verify(*laptop_pair)
        assert report.ok
        assert report.status == "pass"
        assert report.checks == (
            "envelope", "feasibility", "accounting",
            "budget-tightness", "optimal-structure",
        )
        assert report.findings == ()

    def test_api_verify_matches_subsystem(self, laptop_pair):
        request, result = laptop_pair
        assert api_verify(request, result).ok
        assert isinstance(api_verify(request, result), VerificationReport)

    def test_warning_findings_do_not_fail(self, laptop_pair):
        request, result = laptop_pair
        # a budget-less request downgrades budget-tightness to a warning skip
        no_budget = dataclasses.replace(request, budget=None)
        report = verify(no_budget, result)
        assert report.ok
        assert "certificate-skipped" in report.codes()

    def test_raise_if_failed(self, laptop_pair):
        request, result = laptop_pair
        verify(request, result).raise_if_failed()
        bad = dataclasses.replace(result, energy=result.energy * 2.0)
        with pytest.raises(VerificationError, match="energy-mismatch"):
            verify(request, bad).raise_if_failed()

    def test_unknown_solver_is_a_failing_finding(self, laptop_pair):
        request, result = laptop_pair
        report = verify(request, dataclasses.replace(result, solver="nope"))
        assert not report.ok
        assert report.codes() == ("unknown-solver",)


class TestNegativePaths:
    """Each mutation of a known-good result must trip its specific checker."""

    def test_inflated_energy_rejected(self, laptop_pair):
        request, result = laptop_pair
        bad = dataclasses.replace(result, energy=result.energy * 1.5)
        report = verify(request, bad)
        assert not report.ok
        assert "energy-mismatch" in report.codes()

    def test_completion_shifted_past_deadline_rejected(self, yds_pair):
        request, result = yds_pair
        # halving the speeds shifts completions past the deadlines
        bad = dataclasses.replace(result, speeds=result.speeds * 0.5)
        report = verify(request, bad)
        assert "deadline-missed" in report.codes()

    def test_dropped_work_rejected(self, laptop_pair):
        request, result = laptop_pair
        bad = dataclasses.replace(result, speeds=result.speeds[:-1])
        report = verify(request, bad)
        assert report.codes() == ("speeds-shape",)

    def test_non_positive_speed_rejected(self, laptop_pair):
        request, result = laptop_pair
        speeds = result.speeds.copy()
        speeds[0] = 0.0
        report = verify(request, dataclasses.replace(result, speeds=speeds))
        assert report.codes() == ("speeds-invalid",)

    def test_tampered_value_rejected(self, laptop_pair):
        request, result = laptop_pair
        bad = dataclasses.replace(result, value=result.value * 0.9)
        assert "value-mismatch" in verify(request, bad).codes()

    def test_budget_overrun_rejected(self, laptop_pair):
        request, result = laptop_pair
        # consistently faster schedule: accounting passes, tightness fails
        speeds = result.speeds * 1.2
        schedule = Schedule.from_speeds(request.instance, request.power, speeds)
        bad = dataclasses.replace(
            result, speeds=speeds, energy=schedule.energy, value=schedule.makespan
        )
        assert "budget-exceeded" in verify(request, bad).codes()

    def test_yds_suboptimal_energy_rejected(self, yds_pair):
        request, result = yds_pair
        # a uniformly faster schedule stays feasible but wastes energy
        speeds = result.speeds * 1.3
        from repro.online.yds import edf_schedule_at_speeds

        schedule = edf_schedule_at_speeds(request.instance, request.power, speeds)
        bad = dataclasses.replace(
            result, speeds=speeds, energy=schedule.energy, value=schedule.energy
        )
        codes = verify(request, bad).codes()
        assert "yds-energy-suboptimal" in codes
        assert "density-certificate-violated" in codes

    def test_online_energy_below_optimum_rejected(self, fig1):
        request, result = _solved("avr", instance=fig1.with_deadlines(12.0))
        bad = dataclasses.replace(result, energy=1e-6, value=1e-6)
        assert "energy-below-optimal" in verify(request, bad).codes()

    def test_frontier_non_monotone_samples_rejected(self, fig1):
        request, result = _solved(
            "frontier",
            instance=fig1,
            options={"min_energy": 6.0, "max_energy": 21.0, "points": 5},
        )
        extras = {k: v for k, v in result.extras.items()}
        samples = [dict(s) for s in extras["samples"]]
        samples[0]["makespan"], samples[-1]["makespan"] = (
            samples[-1]["makespan"],
            samples[0]["makespan"],
        )
        bad = dataclasses.replace(result, extras={**extras, "samples": samples})
        assert "frontier-not-monotone" in verify(request, bad).codes()

    def test_non_cyclic_assignment_rejected(self):
        instance = Instance.equal_work([0.0, 1.0, 2.0], work=2.0)
        request, result = _solved(
            "multi-makespan", instance=instance, budget=8.0, processors=2
        )
        extras = dict(result.extras)
        extras["assignment"] = {"0": [0, 1], "1": [2]}
        bad = dataclasses.replace(result, extras=extras)
        assert "assignment-not-cyclic" in verify(request, bad).codes()

    def test_assignment_dropping_a_job_rejected(self):
        instance = Instance.equal_work([0.0, 1.0, 2.0], work=2.0)
        request, result = _solved(
            "multi-makespan", instance=instance, budget=8.0, processors=2
        )
        extras = dict(result.extras)
        extras["assignment"] = {"0": [0], "1": [1]}  # job 2 dropped
        bad = dataclasses.replace(result, extras=extras)
        codes = verify(request, bad).codes()
        assert "reconstruction-failed" in codes
        assert "assignment-not-partition" in codes

    def test_stripped_speeds_rejected(self, laptop_pair):
        request, result = laptop_pair
        bare = SolveResult(solver="laptop", status="ok",
                           value=result.value, energy=result.energy)
        report = verify(request, bare)
        assert not report.ok
        assert "speeds-missing" in report.codes()

    def test_stripped_energy_and_value_rejected(self, laptop_pair):
        request, result = laptop_pair
        bare = dataclasses.replace(result, value=None, energy=None)
        codes = verify(request, bare).codes()
        assert "value-missing" in codes
        assert "energy-missing" in codes

    def test_frontier_may_omit_the_triple(self, fig1):
        request, result = _solved(
            "frontier", instance=fig1,
            options={"min_energy": 6.0, "max_energy": 21.0, "points": 5},
        )
        assert result.speeds is None and result.value is None
        assert verify(request, result).ok

    def test_non_numeric_value_is_a_finding_not_a_crash(self, laptop_pair):
        request, result = laptop_pair
        bad = dataclasses.replace(result, value="bogus")
        report = verify(request, bad)
        assert "value-invalid" in report.codes()

    def test_malformed_extras_become_findings_not_crashes(self, fig1):
        request, result = _solved(
            "frontier", instance=fig1,
            options={"min_energy": 6.0, "max_energy": 21.0, "points": 5},
        )
        bad = dataclasses.replace(result, extras={"samples": [{"oops": 1}],
                                                  "breakpoints": "abc"})
        report = verify(request, bad)
        assert not report.ok
        assert "certificate-error" in report.codes()

    def test_malformed_assignment_becomes_finding_not_crash(self):
        instance = Instance.equal_work([0.0, 1.0], work=2.0)
        request, result = _solved(
            "multi-makespan", instance=instance, budget=8.0, processors=2
        )
        bad = dataclasses.replace(result, extras={"assignment": {"0": 5}})
        report = verify(request, bad)
        assert not report.ok
        codes = report.codes()
        assert "reconstruction-failed" in codes or "certificate-error" in codes

    def test_error_result_is_flagged(self, laptop_pair):
        request, _ = laptop_pair
        error = repro.solve(dataclasses.replace(request, budget=-1.0))
        assert not error.ok
        report = verify(request, error)
        assert not report.ok
        assert report.codes() == ("result-is-error",)

    def test_solver_mismatch_is_flagged(self, laptop_pair, fig1):
        request, _ = laptop_pair
        other = repro.solve(
            SolveRequest(instance=fig1, power=CUBE, solver="server", budget=8.0)
        )
        report = verify(request, other)
        assert not report.ok
        assert report.codes() == ("solver-mismatch",)


class TestCheckScheduleAsData:
    """Direct schedule-level mutations (the 'drop work' family)."""

    def _schedule(self, fig1):
        from repro.makespan import incmerge

        return incmerge(fig1, CUBE, 17.0).schedule()

    def test_clean_schedule_has_no_findings(self, fig1):
        assert check_schedule(self._schedule(fig1)) == []

    def test_dropping_a_piece_is_work_loss(self, fig1):
        schedule = self._schedule(fig1)
        pieces = list(schedule.pieces)[:-1]
        tampered = Schedule(fig1, CUBE, pieces)
        codes = [f.code for f in check_schedule(tampered)]
        assert "job-unscheduled" in codes

    def test_shrinking_a_piece_drops_work(self, fig1):
        schedule = self._schedule(fig1)
        pieces = list(schedule.pieces)
        last = pieces[-1]
        pieces[-1] = Piece(
            job=last.job,
            processor=last.processor,
            start=last.start,
            end=last.start + last.duration / 2.0,
            speed=last.speed,
        )
        codes = [f.code for f in check_schedule(Schedule(fig1, CUBE, pieces))]
        assert "work-mismatch" in codes

    def test_early_start_violates_release(self, fig1):
        schedule = self._schedule(fig1)
        pieces = list(schedule.pieces)
        second = pieces[1]
        pieces[1] = Piece(
            job=second.job,
            processor=second.processor,
            start=second.start - 5.5,
            end=second.end - 5.5,
            speed=second.speed,
        )
        codes = [f.code for f in check_schedule(Schedule(fig1, CUBE, pieces))]
        assert "release-violated" in codes
        assert "pieces-overlap" in codes


class TestSerialization:
    def test_report_round_trip(self, laptop_pair):
        request, result = laptop_pair
        bad = dataclasses.replace(result, energy=result.energy * 1.5)
        report = verify(request, bad)
        payload = report_to_dict(report)
        rebuilt = report_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == report

    def test_report_payload_shape(self, laptop_pair):
        report = verify(*laptop_pair)
        payload = report_to_dict(report)
        assert payload["kind"] == "verification-report"
        assert payload["status"] == "pass"
        assert payload["findings"] == []

    def test_report_from_dict_rejects_foreign_kind(self):
        from repro.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            report_from_dict({"kind": "instance"})

    def test_report_from_dict_rejects_finding_without_code(self):
        from repro.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError, match="finding row 0"):
            report_from_dict({
                "kind": "verification-report",
                "solver": "s",
                "checks": ["envelope"],
                "findings": [{"message": "x"}],
            })


class TestBatchVerify:
    def test_solve_many_verify_passes(self):
        instances = [equal_work_instance(4, seed=s) for s in range(3)]
        results = solve_many(instances, CUBE, 6.0, solver="laptop", verify=True)
        assert [r.index for r in results] == [0, 1, 2]

    def test_solve_many_verify_matches_unverified(self):
        instances = [equal_work_instance(4, seed=s) for s in range(2)]
        plain = solve_many(instances, CUBE, 6.0, solver="laptop")
        checked = solve_many(instances, CUBE, 6.0, solver="laptop", verify=True)
        for a, b in zip(plain, checked):
            assert a.value == b.value and a.energy == b.energy


class TestVerifyCli:
    @pytest.fixture
    def envelopes(self, tmp_path, laptop_pair):
        request, result = laptop_pair
        req_path = tmp_path / "req.json"
        res_path = tmp_path / "res.json"
        req_path.write_text(json.dumps(request_to_dict(request)), encoding="utf-8")
        res_path.write_text(json.dumps(result_to_dict(result)), encoding="utf-8")
        return req_path, res_path

    def test_pass_exits_zero(self, envelopes, capsys):
        req, res = envelopes
        assert main(["verify", "--request", str(req), "--result", str(res)]) == 0
        assert "verification PASS" in capsys.readouterr().out

    def test_tampered_envelope_exits_one_with_structured_finding(
        self, envelopes, tmp_path, capsys
    ):
        req, res = envelopes
        data = json.loads(res.read_text(encoding="utf-8"))
        data["energy"] *= 1.5
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(data), encoding="utf-8")
        assert main(["verify", "--request", str(req), "--result", str(bad),
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "fail"
        codes = [f["code"] for f in payload["findings"]]
        assert "energy-mismatch" in codes

    def test_malformed_input_exits_two(self, tmp_path, envelopes, capsys):
        req, _ = envelopes
        broken = tmp_path / "broken.json"
        broken.write_text("{not json", encoding="utf-8")
        assert main(["verify", "--request", str(req), "--result", str(broken)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_flags_exit_two(self, capsys):
        assert main(["verify"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_capture_round_trip(self, tmp_path, capsys):
        instances = [equal_work_instance(4, seed=s) for s in range(3)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        assert main(["batch", "--instances", str(batch_in), "--energy", "6",
                     "--json"]) == 0
        capture = tmp_path / "out.json"
        capture.write_text(capsys.readouterr().out, encoding="utf-8")
        assert main(["verify", "--instances", str(batch_in),
                     "--results", str(capture), "--energy", "6"]) == 0
        assert "3 passed, 0 failed" in capsys.readouterr().out

    def test_tampered_batch_capture_fails(self, tmp_path, capsys):
        instances = [equal_work_instance(4, seed=s) for s in range(2)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        assert main(["batch", "--instances", str(batch_in), "--energy", "6",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        data["results"][0]["speeds"][0] *= 0.25
        capture = tmp_path / "out.json"
        capture.write_text(json.dumps(data), encoding="utf-8")
        assert main(["verify", "--instances", str(batch_in),
                     "--results", str(capture), "--energy", "6", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1

    def test_malformed_capture_row_exits_two(self, tmp_path, capsys):
        instances = [equal_work_instance(3, seed=0)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        capture = tmp_path / "out.json"
        capture.write_text(json.dumps({
            "solver": "laptop",
            "results": [{"index": 0, "value": "bogus", "energy": 6.0,
                         "speeds": [1.0, 1.0, 1.0]}],
        }), encoding="utf-8")
        assert main(["verify", "--instances", str(batch_in),
                     "--results", str(capture), "--energy", "6"]) == 2
        assert "malformed batch result row" in capsys.readouterr().err

    def test_negative_capture_index_exits_two(self, tmp_path, capsys):
        instances = [equal_work_instance(3, seed=0)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        capture = tmp_path / "out.json"
        capture.write_text(json.dumps({
            "solver": "laptop",
            "results": [{"index": -1, "value": 1.0, "energy": 6.0,
                         "speeds": [1.0, 1.0, 1.0]}],
        }), encoding="utf-8")
        assert main(["verify", "--instances", str(batch_in),
                     "--results", str(capture), "--energy", "6"]) == 2
        assert "outside the instance batch" in capsys.readouterr().err

    def test_cli_batch_verify_flag(self, tmp_path, capsys):
        instances = [equal_work_instance(3, seed=s) for s in range(2)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        assert main(["batch", "--instances", str(batch_in), "--energy", "6",
                     "--verify"]) == 0

    def test_cli_batch_verify_failure_exits_one(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli_mod

        def boom(*args, **kwargs):
            raise VerificationError("instance 0: verification failed")

        monkeypatch.setattr(cli_mod, "solve_many", boom)
        instances = [equal_work_instance(3, seed=0)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        assert main(["batch", "--instances", str(batch_in), "--energy", "6",
                     "--verify"]) == 1
        assert "verification failed" in capsys.readouterr().err

    def test_capture_records_alpha_and_budgets(self, tmp_path, capsys):
        # verifying a non-default-alpha capture must not need the flags again
        instances = [equal_work_instance(3, seed=s) for s in range(2)]
        batch_in = tmp_path / "in.json"
        save_instances(instances, batch_in)
        assert main(["batch", "--instances", str(batch_in), "--energy", "6",
                     "--alpha", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["alpha"] == 2.0
        assert payload["budgets"] == [6.0, 6.0]
        capture = tmp_path / "out.json"
        capture.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["verify", "--instances", str(batch_in),
                     "--results", str(capture)]) == 0
        assert "2 passed, 0 failed" in capsys.readouterr().out


class TestCapabilitiesMetadata:
    def test_certificates_are_part_of_the_listing(self, capsys):
        assert main(["solve", "--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {s["name"]: s for s in payload["solvers"]}
        assert by_name["laptop"]["certificates"] == [
            "budget-tightness", "optimal-structure",
        ]
        assert all(s["certificates"] for s in payload["solvers"])

    def test_certificate_kinds_must_be_strings(self):
        from repro.api import ProblemSpec, SolverCapabilities
        from repro.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            SolverCapabilities(
                name="x",
                spec=ProblemSpec(objective="makespan", mode="laptop"),
                summary="s",
                certificates=("ok", ""),
            )

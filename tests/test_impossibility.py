"""Tests for the Theorem 8 reproduction (hard instance, polynomial, windows)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE
from repro.exceptions import InvalidInstanceError
from repro.flow import (
    THEOREM8_COEFFICIENTS,
    equal_work_flow_laptop,
    hard_instance,
    rational_roots,
    solve_optimality_system,
    theorem8_polynomial,
    tight_configuration_energy_window,
)
from repro.workloads import THEOREM8_ENERGY_BUDGET, theorem8_instance


class TestPolynomial:
    def test_coefficients_match_paper(self):
        # degree 12, leading coefficient 2, constant term -729, 13 coefficients
        assert len(THEOREM8_COEFFICIENTS) == 13
        assert THEOREM8_COEFFICIENTS[0] == 2
        assert THEOREM8_COEFFICIENTS[-1] == -729
        assert THEOREM8_COEFFICIENTS[1] == -12
        assert sum(THEOREM8_COEFFICIENTS) == 2 - 12 + 6 + 108 - 159 - 738 + 2415 - 1026 - 5940 + 12150 - 10449 + 4374 - 729

    def test_polynomial_evaluation_scalar_and_vector(self):
        value = theorem8_polynomial(1.0)
        assert value == pytest.approx(sum(THEOREM8_COEFFICIENTS))
        values = theorem8_polynomial(np.array([1.0, 0.0]))
        assert values[1] == pytest.approx(-729.0)

    def test_no_rational_roots(self):
        assert rational_roots() == []

    def test_rational_root_helper_on_known_polynomial(self):
        # (x - 2)(x + 3) = x^2 + x - 6
        roots = rational_roots((1, 1, -6))
        assert sorted(float(r) for r in roots) == [-3.0, 2.0]


class TestOptimalitySystem:
    def test_solution_is_root_of_paper_polynomial(self):
        solution = solve_optimality_system(THEOREM8_ENERGY_BUDGET)
        # the paper's degree-12 polynomial (coefficients up to ~1.2e4) should
        # vanish at sigma_2 up to floating point round-off
        assert abs(solution.polynomial_residual) < 1e-6

    def test_system_equations_satisfied(self):
        solution = solve_optimality_system(9.0)
        assert solution.energy == pytest.approx(9.0, rel=1e-10)
        assert 1.0 / solution.sigma1 + 1.0 / solution.sigma2 == pytest.approx(1.0, rel=1e-10)
        assert solution.sigma1**3 == pytest.approx(
            solution.sigma2**3 + solution.sigma3**3, rel=1e-9
        )

    def test_completion_times(self):
        solution = solve_optimality_system(9.0)
        c1, c2, c3 = solution.completion_times
        assert c2 == pytest.approx(1.0, rel=1e-10)
        assert c1 < c2 < c3

    def test_solution_exists_inside_measured_window(self):
        # budgets measured (see EXPERIMENTS.md) to have the tight configuration
        solution = solve_optimality_system(10.8)
        assert solution.sigma3 > 0
        assert 1.0 / solution.sigma1 + 1.0 / solution.sigma2 == pytest.approx(1.0, rel=1e-9)

    def test_no_solution_for_tiny_budget(self):
        with pytest.raises(InvalidInstanceError):
            solve_optimality_system(4.0)

    def test_invalid_budget(self):
        with pytest.raises(InvalidInstanceError):
            solve_optimality_system(-1.0)


class TestHardInstance:
    def test_instance_shape(self):
        inst = hard_instance()
        assert inst.n_jobs == 3
        assert inst.is_equal_work()
        assert np.allclose(inst.releases, [0.0, 0.0, 1.0])
        assert np.allclose(theorem8_instance().releases, inst.releases)

    def test_optimal_flow_at_budget_9_beats_or_matches_tight_candidate(self, cube):
        # Our solvers find the dense (late, late) configuration optimal at E=9,
        # with strictly lower flow than the C_2 = 1 candidate the paper analyses;
        # this discrepancy is recorded in EXPERIMENTS.md.  Either way, the
        # optimum can never be *worse* than the tight candidate.
        tight = solve_optimality_system(9.0)
        optimum = equal_work_flow_laptop(hard_instance(), cube, 9.0)
        assert optimum.flow <= tight.flow + 1e-9

    def test_tight_window_upper_end_matches_paper(self, cube):
        lo, hi = tight_configuration_energy_window(resolution=0.1)
        # paper: approximately (8.43, 11.54); our measurement reproduces the
        # upper end (≈11.5) and finds the lower end at ≈10.3 (see EXPERIMENTS.md)
        assert hi == pytest.approx(11.54, abs=0.25)
        assert 9.5 < lo < 11.0
        assert lo < hi

    def test_tight_configuration_optimal_inside_window(self, cube):
        result = equal_work_flow_laptop(hard_instance(), cube, 10.8)
        assert result.completion_times[1] == pytest.approx(1.0, abs=5e-3)
        system = solve_optimality_system(10.8)
        assert result.flow == pytest.approx(system.flow, rel=5e-3)

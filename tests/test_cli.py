"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io import save_instance, save_instances
from repro.workloads import (
    deadline_instance,
    equal_work_instance,
    figure1_instance,
)


FIG1_ARGS = ["--releases", "0,5,6", "--works", "5,2,1"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_laptop_requires_energy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["laptop", *FIG1_ARGS])


class TestLaptop:
    def test_table_output(self, capsys):
        assert main(["laptop", *FIG1_ARGS, "--energy", "17"]) == 0
        out = capsys.readouterr().out
        assert "optimal makespan 6.5" in out

    def test_json_output(self, capsys):
        assert main(["laptop", *FIG1_ARGS, "--energy", "17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["makespan"] == pytest.approx(6.5)
        assert payload["speeds"] == pytest.approx([1.0, 2.0, 2.0])

    def test_instance_file(self, tmp_path, capsys):
        path = save_instance(figure1_instance(), tmp_path / "fig1.json")
        assert main(["laptop", "--instance", str(path), "--energy", "17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["makespan"] == pytest.approx(6.5)

    def test_missing_instance_spec_is_an_error(self, capsys):
        assert main(["laptop", "--energy", "17"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServerAndFrontier:
    def test_server(self, capsys):
        assert main(["server", *FIG1_ARGS, "--makespan", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["minimum_energy"] == pytest.approx(8.0)

    def test_frontier(self, capsys):
        assert main([
            "frontier", *FIG1_ARGS, "--min-energy", "6", "--max-energy", "21",
            "--points", "5", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["breakpoints"] == pytest.approx([8.0, 17.0])
        assert len(payload["samples"]) == 5


class TestFlowAndMulti:
    def test_flow(self, capsys, tmp_path):
        inst = equal_work_instance(4, seed=1)
        path = save_instance(inst, tmp_path / "eq.json")
        assert main(["flow", "--instance", str(path), "--energy", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["energy"] <= 5.0 * (1 + 1e-6)
        assert len(payload["speeds"]) == 4

    def test_multi_makespan_and_flow(self, capsys, tmp_path):
        inst = equal_work_instance(6, seed=2)
        path = save_instance(inst, tmp_path / "eq.json")
        for metric in ("makespan", "flow"):
            code = main([
                "multi", "--instance", str(path), "--energy", "8",
                "--processors", "2", "--metric", metric, "--json",
            ])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["metric"] == metric
            assert payload["value"] > 0


class TestBatchGolden:
    """Golden regression tests for ``repro batch`` (JSON in/out, determinism)."""

    def _batch_file(self, tmp_path):
        instances = [equal_work_instance(4, seed=s) for s in range(3)]
        return save_instances(instances, tmp_path / "batch.json")

    def test_json_roundtrip_and_determinism(self, tmp_path, capsys):
        path = self._batch_file(tmp_path)
        argv = ["batch", "--instances", str(path), "--energy", "6", "--json"]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            # the results section must be byte-identical across reruns
            # (timing fields legitimately differ)
            outputs.append(json.dumps(payload["results"], sort_keys=True).encode())
        assert outputs[0] == outputs[1]
        payload_results = json.loads(outputs[0])
        assert [r["index"] for r in payload_results] == [0, 1, 2]
        assert all(r["value"] > 0 for r in payload_results)

    def test_online_solver_through_batch(self, tmp_path, capsys):
        instances = [deadline_instance(5, seed=s, laxity=3.0) for s in range(2)]
        path = save_instances(instances, tmp_path / "dl.json")
        argv = [
            "batch", "--instances", str(path), "--energy", "0",
            "--solver", "oa", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 2
        assert all(r["energy"] > 0 for r in payload["results"])

    def test_malformed_instance_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not valid json", encoding="utf-8")
        assert main(["batch", "--instances", str(bad), "--energy", "6"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_payload_kind_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "kind.json"
        bad.write_text(json.dumps({"kind": "schedule"}), encoding="utf-8")
        assert main(["batch", "--instances", str(bad), "--energy", "6"]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "payload", ["123", '"hello"', "[1, 2]", '{"kind": "instance", "jobs": [1]}',
                    '{"kind": "instance", "jobs": [{"release": 0}]}'])
    def test_valid_json_wrong_shape_exits_2(self, tmp_path, capsys, payload):
        """Valid JSON that is not an instance batch must be a clean CLI error."""
        bad = tmp_path / "shape.json"
        bad.write_text(payload, encoding="utf-8")
        assert main(["batch", "--instances", str(bad), "--energy", "6"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["batch", "--instances", str(missing), "--energy", "6"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompeteGolden:
    """Golden regression tests for ``repro compete``."""

    QUICK = ["compete", "--alphas", "2", "--sizes", "5", "--seeds", "2",
             "--families", "deadline,staircase"]

    def test_output_file_bytes_identical_across_reruns(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([*self.QUICK, "--output", str(path)]) == 0
            capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        payload = json.loads(paths[0].read_text(encoding="utf-8"))
        assert payload["kind"] == "competitive-sweep"
        # grid: 3 algorithms x 1 alpha x 2 families x 1 size x 2 seeds
        assert len(payload["cells"]) == 12
        assert all(cell["ratio"] >= 1.0 - 1e-6 for cell in payload["cells"]
                   if cell["algorithm"] != "bkp")

    def test_json_stdout_structure(self, capsys):
        assert main([*self.QUICK, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summaries = {(r["algorithm"], r["family"]) for r in payload["summary"]}
        assert ("oa", "staircase") in summaries
        for row in payload["summary"]:
            assert row["mean_ratio"] <= row["bound"] * (1 + 1e-9)

    def test_table_output(self, capsys):
        assert main(self.QUICK) == 0
        out = capsys.readouterr().out
        assert "mean_ratio" in out and "staircase" in out

    def test_unknown_family_exits_2(self, capsys):
        assert main(["compete", "--families", "bogus"]) == 2
        assert "unknown workload family" in capsys.readouterr().err

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["compete", "--algorithms", "lll"]) == 2
        assert "unknown online algorithm" in capsys.readouterr().err

    def test_nonpositive_seeds_exits_2(self, capsys):
        assert main(["compete", "--seeds", "0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestFigures:
    def test_figures_json(self, capsys):
        assert main(["figures", "--points", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["breakpoints"] == pytest.approx([8.0, 17.0])
        assert len(payload["samples"]) == 7

    def test_figures_table(self, capsys):
        assert main(["figures", "--points", "5"]) == 0
        assert "2nd_derivative" in capsys.readouterr().out


class TestServeCacheSelection:
    """``repro serve --cache-backend`` wiring (without starting the loop)."""

    def _args(self, *extra):
        return build_parser().parse_args(["serve", *extra])

    def test_auto_without_dir_is_memory_only(self):
        from repro.cli import _serve_cache

        cache = _serve_cache(self._args())
        assert cache is not None and cache.store is None

    def test_auto_with_dir_keeps_the_disk_json_default(self, tmp_path):
        from repro.cli import _serve_cache

        cache = _serve_cache(self._args("--cache-dir", str(tmp_path)))
        assert cache.store is not None and cache.store.backend == "disk-json"
        assert cache.directory == tmp_path

    def test_sqlite_backend_selected_by_name(self, tmp_path):
        from repro.cli import _serve_cache

        cache = _serve_cache(
            self._args("--cache-dir", str(tmp_path), "--cache-backend", "sqlite")
        )
        assert cache.store.backend == "sqlite"
        assert cache.store.path == tmp_path / "cache.sqlite3"

    def test_memory_backend_never_touches_disk(self, tmp_path):
        from repro.cli import _serve_cache

        cache = _serve_cache(self._args("--cache-backend", "memory"))
        assert cache.store is None

    def test_persistent_backend_without_dir_is_an_error(self):
        from repro.cli import _serve_cache
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="--cache-dir"):
            _serve_cache(self._args("--cache-backend", "sqlite"))

    def test_no_cache_wins_over_backend(self, tmp_path):
        from repro.cli import _serve_cache

        args = self._args("--cache-dir", str(tmp_path), "--cache-backend",
                          "sqlite", "--no-cache")
        assert _serve_cache(args) is None

    def test_unknown_backend_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            self._args("--cache-backend", "redis")

    def test_memory_cache_bound_is_threaded_through(self, tmp_path):
        from repro.cli import _serve_cache

        cache = _serve_cache(
            self._args("--cache-dir", str(tmp_path), "--cache-backend",
                       "sqlite", "--memory-cache", "7")
        )
        assert cache.max_memory_entries == 7

"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io import save_instance
from repro.workloads import equal_work_instance, figure1_instance


FIG1_ARGS = ["--releases", "0,5,6", "--works", "5,2,1"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_laptop_requires_energy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["laptop", *FIG1_ARGS])


class TestLaptop:
    def test_table_output(self, capsys):
        assert main(["laptop", *FIG1_ARGS, "--energy", "17"]) == 0
        out = capsys.readouterr().out
        assert "optimal makespan 6.5" in out

    def test_json_output(self, capsys):
        assert main(["laptop", *FIG1_ARGS, "--energy", "17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["makespan"] == pytest.approx(6.5)
        assert payload["speeds"] == pytest.approx([1.0, 2.0, 2.0])

    def test_instance_file(self, tmp_path, capsys):
        path = save_instance(figure1_instance(), tmp_path / "fig1.json")
        assert main(["laptop", "--instance", str(path), "--energy", "17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["makespan"] == pytest.approx(6.5)

    def test_missing_instance_spec_is_an_error(self, capsys):
        assert main(["laptop", "--energy", "17"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServerAndFrontier:
    def test_server(self, capsys):
        assert main(["server", *FIG1_ARGS, "--makespan", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["minimum_energy"] == pytest.approx(8.0)

    def test_frontier(self, capsys):
        assert main([
            "frontier", *FIG1_ARGS, "--min-energy", "6", "--max-energy", "21",
            "--points", "5", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["breakpoints"] == pytest.approx([8.0, 17.0])
        assert len(payload["samples"]) == 5


class TestFlowAndMulti:
    def test_flow(self, capsys, tmp_path):
        inst = equal_work_instance(4, seed=1)
        path = save_instance(inst, tmp_path / "eq.json")
        assert main(["flow", "--instance", str(path), "--energy", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["energy"] <= 5.0 * (1 + 1e-6)
        assert len(payload["speeds"]) == 4

    def test_multi_makespan_and_flow(self, capsys, tmp_path):
        inst = equal_work_instance(6, seed=2)
        path = save_instance(inst, tmp_path / "eq.json")
        for metric in ("makespan", "flow"):
            code = main([
                "multi", "--instance", str(path), "--energy", "8",
                "--processors", "2", "--metric", metric, "--json",
            ])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["metric"] == metric
            assert payload["value"] > 0


class TestFigures:
    def test_figures_json(self, capsys):
        assert main(["figures", "--points", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["breakpoints"] == pytest.approx([8.0, 17.0])
        assert len(payload["samples"]) == 7

    def test_figures_table(self, capsys):
        assert main(["figures", "--points", "5"]) == 0
        assert "2nd_derivative" in capsys.readouterr().out

"""Tests for the power/speed models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    CUBE,
    SQUARE,
    AffinePolynomialPower,
    PolynomialPower,
    TabulatedConvexPower,
)
from repro.exceptions import BudgetError, UnsupportedPowerFunctionError


class TestPolynomialPower:
    def test_cube_constants(self):
        assert CUBE.alpha == 3.0
        assert CUBE.is_polynomial
        assert CUBE.power(2.0) == pytest.approx(8.0)

    def test_energy_per_work(self):
        assert CUBE.energy_per_work(2.0) == pytest.approx(4.0)
        assert SQUARE.energy_per_work(2.0) == pytest.approx(2.0)

    def test_energy(self):
        # 5 units of work at speed 1: time 5, power 1 -> energy 5
        assert CUBE.energy(5.0, 1.0) == pytest.approx(5.0)
        # 2 units at speed 2: time 1, power 8 -> energy 8
        assert CUBE.energy(2.0, 2.0) == pytest.approx(8.0)

    def test_zero_work_energy_is_zero(self):
        assert CUBE.energy(0.0, 1.0) == 0.0

    def test_energy_for_duration(self):
        # 2 units of work over 1 time unit = speed 2
        assert CUBE.energy_for_duration(2.0, 1.0) == pytest.approx(8.0)

    def test_speed_for_energy_inverse(self):
        for speed in [0.1, 1.0, 2.5, 7.0]:
            energy = CUBE.energy(3.0, speed)
            assert CUBE.speed_for_energy(3.0, energy) == pytest.approx(speed)

    def test_duration_for_energy(self):
        duration = CUBE.duration_for_energy(2.0, 8.0)
        assert duration == pytest.approx(1.0)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(UnsupportedPowerFunctionError):
            PolynomialPower(1.0)
        with pytest.raises(UnsupportedPowerFunctionError):
            PolynomialPower(0.5)

    def test_invalid_arguments(self):
        with pytest.raises(BudgetError):
            CUBE.energy(1.0, 0.0)
        with pytest.raises(BudgetError):
            CUBE.energy(-1.0, 1.0)
        with pytest.raises(BudgetError):
            CUBE.speed_for_energy(1.0, 0.0)
        with pytest.raises(BudgetError):
            CUBE.power(-1.0)

    def test_denergy_dduration_matches_finite_difference(self):
        w, d = 2.0, 1.3
        h = 1e-7
        numeric = (CUBE.energy_for_duration(w, d + h) - CUBE.energy_for_duration(w, d - h)) / (2 * h)
        assert CUBE.denergy_dduration(w, d) == pytest.approx(numeric, rel=1e-5)

    def test_strict_convexity_of_energy_per_work(self):
        speeds = np.linspace(0.1, 5.0, 50)
        values = [CUBE.energy_per_work(s) for s in speeds]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestAffinePolynomialPower:
    def test_no_leakage_matches_polynomial(self):
        affine = AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=0.0)
        assert affine.power(2.0) == pytest.approx(CUBE.power(2.0))
        assert affine.energy_per_work(2.0) == pytest.approx(CUBE.energy_per_work(2.0))
        assert affine.speed_for_energy_per_work(4.0) == pytest.approx(2.0)

    def test_critical_speed_positive_with_leakage(self):
        affine = AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=2.0)
        assert affine.critical_speed > 0.0
        assert affine.critical_speed == pytest.approx(1.0, rel=1e-9)  # (2/(1*2))^(1/3)

    def test_inverse_roundtrip_with_leakage(self):
        affine = AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=0.5)
        for speed in [affine.critical_speed * 1.01, 1.5, 4.0]:
            e = affine.energy_per_work(speed)
            assert affine.speed_for_energy_per_work(e) == pytest.approx(speed, rel=1e-8)

    def test_below_critical_speed_rejected(self):
        affine = AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=2.0)
        with pytest.raises(BudgetError):
            affine.energy_per_work(affine.critical_speed * 0.5)

    def test_not_polynomial(self):
        affine = AffinePolynomialPower(static=1.0)
        assert not affine.is_polynomial
        with pytest.raises(UnsupportedPowerFunctionError):
            _ = affine.alpha

    def test_invalid_parameters(self):
        with pytest.raises(UnsupportedPowerFunctionError):
            AffinePolynomialPower(exponent=1.0)
        with pytest.raises(UnsupportedPowerFunctionError):
            AffinePolynomialPower(coefficient=0.0)
        with pytest.raises(UnsupportedPowerFunctionError):
            AffinePolynomialPower(static=-1.0)


class TestTabulatedConvexPower:
    def test_wraps_cubic(self):
        power = TabulatedConvexPower(lambda s: s**3, name="cubic")
        assert power.power(2.0) == pytest.approx(8.0)
        assert power.energy_per_work(2.0) == pytest.approx(4.0)
        assert power.speed_for_energy_per_work(4.0) == pytest.approx(2.0, rel=1e-9)

    def test_wireless_style_power(self):
        # e^s - 1 style transmission power (strictly convex through the origin);
        # restrict the convexity spot-check range so the exponential does not
        # overflow at the default upper bound of 1e3
        power = TabulatedConvexPower(lambda s: math.expm1(s), name="exp", check_range=(1e-3, 50.0))
        speed = power.speed_for_energy_per_work(power.energy_per_work(1.7))
        assert speed == pytest.approx(1.7, rel=1e-8)

    def test_non_convex_rejected(self):
        with pytest.raises(UnsupportedPowerFunctionError):
            TabulatedConvexPower(lambda s: math.sqrt(s), name="sqrt")

    def test_negative_power_rejected(self):
        with pytest.raises(UnsupportedPowerFunctionError):
            TabulatedConvexPower(lambda s: -s**3)

    def test_zero_speed(self):
        power = TabulatedConvexPower(lambda s: s**2.5)
        assert power.power(0.0) == 0.0
        with pytest.raises(BudgetError):
            power.energy_per_work(0.0)

"""Tests for the equal-work flow solvers (laptop, server, frontier samples)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance, PolynomialPower
from repro.exceptions import BudgetError, InfeasibleError, InvalidInstanceError
from repro.flow import (
    convex_flow_laptop,
    equal_work_flow_laptop,
    equal_work_flow_server,
    flow_energy_frontier_samples,
    verify_theorem1,
)


@pytest.fixture
def spread() -> Instance:
    """Equal-work jobs with spread-out releases (rich mix of configurations)."""
    return Instance.equal_work([0.0, 0.5, 3.0, 3.2, 7.0], work=1.0)


class TestLaptop:
    def test_never_worse_than_convex(self, spread, cube):
        for energy in [0.8, 2.0, 5.0, 20.0]:
            refined = equal_work_flow_laptop(spread, cube, energy)
            approx = convex_flow_laptop(spread, cube, energy)
            assert refined.flow <= approx.flow * (1 + 1e-6)

    def test_energy_budget_respected(self, spread, cube):
        for energy in [1.0, 6.0, 15.0]:
            result = equal_work_flow_laptop(spread, cube, energy)
            assert result.energy <= energy * (1 + 1e-6)

    def test_flow_decreasing_in_energy(self, spread, cube):
        budgets = np.linspace(0.5, 25.0, 15)
        flows = [equal_work_flow_laptop(spread, cube, float(e)).flow for e in budgets]
        assert all(b <= a + 1e-6 for a, b in zip(flows, flows[1:]))

    def test_theorem1_holds_at_optimum(self, spread, cube):
        for energy in [1.0, 4.0, 12.0]:
            result = equal_work_flow_laptop(spread, cube, energy)
            assert verify_theorem1(spread, cube, result.speeds, rtol=2e-2)

    def test_exact_refinement_when_no_tight_boundary(self, spread, cube):
        result = equal_work_flow_laptop(spread, cube, 0.5)
        if result.exact:
            # the refined solution spends exactly the budget
            assert result.energy == pytest.approx(0.5, rel=1e-12)

    def test_schedule_valid(self, spread, cube):
        result = equal_work_flow_laptop(spread, cube, 4.0)
        sched = result.schedule(spread, cube)
        sched.validate(energy_budget=4.0 * (1 + 1e-5))
        assert sched.total_flow == pytest.approx(result.flow, rel=1e-6)

    def test_single_job(self, cube):
        inst = Instance.equal_work([0.0], work=1.0)
        result = equal_work_flow_laptop(inst, cube, 4.0)
        assert result.flow == pytest.approx(0.5)  # speed 2
        assert result.exact

    def test_requires_equal_work(self, cube):
        inst = Instance.from_arrays([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(InvalidInstanceError):
            equal_work_flow_laptop(inst, cube, 5.0)

    def test_invalid_budget(self, spread, cube):
        with pytest.raises(BudgetError):
            equal_work_flow_laptop(spread, cube, -1.0)

    def test_alpha_2(self, spread):
        power = PolynomialPower(2.0)
        result = equal_work_flow_laptop(spread, power, 5.0)
        assert result.energy <= 5.0 * (1 + 1e-6)
        assert verify_theorem1(spread, power, result.speeds, rtol=2e-2)


class TestServer:
    def test_roundtrip(self, spread, cube):
        laptop = equal_work_flow_laptop(spread, cube, 5.0)
        server = equal_work_flow_server(spread, cube, laptop.flow * 1.000001)
        assert server.energy == pytest.approx(5.0, rel=1e-3)

    def test_energy_increases_as_target_tightens(self, spread, cube):
        energies = [
            equal_work_flow_server(spread, cube, target).energy
            for target in [12.0, 8.0, 6.0]
        ]
        assert energies[0] < energies[1] < energies[2]

    def test_infeasible_target(self, spread, cube):
        with pytest.raises(InfeasibleError):
            equal_work_flow_server(spread, cube, 0.0)

    def test_requires_equal_work(self, cube):
        inst = Instance.from_arrays([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(InvalidInstanceError):
            equal_work_flow_server(inst, cube, 5.0)


class TestFrontierSamples:
    def test_monotone_series(self, spread, cube):
        energies = np.linspace(1.0, 20.0, 8)
        results = flow_energy_frontier_samples(spread, cube, energies)
        flows = [r.flow for r in results]
        assert all(b <= a + 1e-6 for a, b in zip(flows, flows[1:]))
        assert len(results) == len(energies)

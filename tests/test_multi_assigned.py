"""Tests for the fixed-assignment multiprocessor solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import BudgetError, InvalidInstanceError
from repro.flow import convex_flow_laptop
from repro.makespan import incmerge
from repro.multi import (
    cyclic_assignment,
    energy_for_assignment_makespan,
    flow_for_assignment,
    makespan_for_assignment,
)


@pytest.fixture
def inst() -> Instance:
    return Instance.equal_work([0.0, 0.3, 1.0, 2.0, 2.5, 4.0], work=1.0)


class TestMakespanForAssignment:
    def test_single_processor_reduces_to_incmerge(self, inst, cube):
        assignment = {0: list(range(inst.n_jobs))}
        result = makespan_for_assignment(inst, cube, assignment, 10.0)
        assert result.makespan == pytest.approx(incmerge(inst, cube, 10.0).makespan, rel=1e-8)

    def test_processors_finish_simultaneously(self, inst, cube):
        result = makespan_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, 2), 10.0)
        sched = result.schedule(inst, cube)
        finishes = sched.processor_completion_times()
        assert finishes[0] == pytest.approx(finishes[1], rel=1e-7)

    def test_energy_equals_budget(self, inst, cube):
        result = makespan_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, 3), 12.0)
        assert result.energy == pytest.approx(12.0, rel=1e-7)
        sched = result.schedule(inst, cube)
        sched.validate(energy_budget=12.0 * (1 + 1e-6))

    def test_more_energy_never_hurts(self, inst, cube):
        assignment = cyclic_assignment(inst.n_jobs, 2)
        budgets = np.linspace(2.0, 30.0, 10)
        makespans = [
            makespan_for_assignment(inst, cube, assignment, float(e)).makespan for e in budgets
        ]
        assert all(b <= a + 1e-9 for a, b in zip(makespans, makespans[1:]))

    def test_more_processors_never_hurt(self, inst, cube):
        makespans = [
            makespan_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, m), 8.0).makespan
            for m in [1, 2, 3]
        ]
        assert makespans[1] <= makespans[0] + 1e-9
        assert makespans[2] <= makespans[1] + 1e-9

    def test_energy_for_assignment_roundtrip(self, inst, cube):
        assignment = cyclic_assignment(inst.n_jobs, 2)
        result = makespan_for_assignment(inst, cube, assignment, 9.0)
        energy = energy_for_assignment_makespan(inst, cube, assignment, result.makespan)
        assert energy == pytest.approx(9.0, rel=1e-7)

    def test_invalid_budget(self, inst, cube):
        with pytest.raises(BudgetError):
            makespan_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, 2), 0.0)

    def test_bad_assignment_rejected(self, inst, cube):
        with pytest.raises(InvalidInstanceError):
            makespan_for_assignment(inst, cube, {0: [0, 1]}, 5.0)


class TestFlowForAssignment:
    def test_single_processor_matches_uniprocessor_convex(self, inst, cube):
        assignment = {0: list(range(inst.n_jobs))}
        result = flow_for_assignment(inst, cube, assignment, 8.0)
        reference = convex_flow_laptop(inst, cube, 8.0)
        assert result.flow == pytest.approx(reference.flow, rel=1e-5)

    def test_energy_budget_respected(self, inst, cube):
        result = flow_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, 2), 8.0)
        assert result.energy <= 8.0 * (1 + 1e-6)
        sched = result.schedule(inst, cube)
        sched.validate(energy_budget=8.0 * (1 + 1e-5))
        assert sched.total_flow == pytest.approx(result.flow, rel=1e-6)

    def test_more_processors_never_hurt(self, inst, cube):
        flows = [
            flow_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, m), 6.0).flow
            for m in [1, 2, 3]
        ]
        assert flows[1] <= flows[0] + 1e-6
        assert flows[2] <= flows[1] + 1e-6

    def test_flow_decreasing_in_energy(self, inst, cube):
        assignment = cyclic_assignment(inst.n_jobs, 2)
        flows = [
            flow_for_assignment(inst, cube, assignment, float(e)).flow
            for e in [2.0, 6.0, 15.0]
        ]
        assert flows[0] > flows[1] > flows[2]

    def test_invalid_budget(self, inst, cube):
        with pytest.raises(BudgetError):
            flow_for_assignment(inst, cube, cyclic_assignment(inst.n_jobs, 2), -3.0)

"""Tests for the non-dominated makespan frontier (Section 3.2, Figures 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance, PolynomialPower, TabulatedConvexPower
from repro.makespan import incmerge, makespan_frontier, schedule_for_energy
from repro.workloads import FIGURE1_BREAKPOINTS, FIGURE1_ENERGY_RANGE


class TestFigure1Curve:
    def test_breakpoints_match_paper(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        assert curve.breakpoints == pytest.approx(list(FIGURE1_BREAKPOINTS))

    def test_three_configurations(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        assert len(curve.segments) == 3

    def test_endpoint_values_match_figure(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        lo, hi = FIGURE1_ENERGY_RANGE
        # left end of the plotted range: E = 6 -> makespan ~ 9.24 (figure axis ends at 9.25)
        assert curve.value(lo) == pytest.approx(8.0 / np.sqrt(6.0 / 8.0), rel=1e-12)
        assert 9.2 < curve.value(lo) < 9.25
        # right end: E = 21 -> makespan ~ 6.35
        assert curve.value(hi) == pytest.approx(6.0 + 1.0 / np.sqrt(8.0), rel=1e-12)

    def test_matches_incmerge_everywhere(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        for energy in np.linspace(1.0, 40.0, 40):
            assert curve.value(float(energy)) == pytest.approx(
                incmerge(fig1, cube, float(energy)).makespan, rel=1e-9
            )

    def test_first_derivative_continuous_at_breakpoints(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        for breakpoint in curve.breakpoints:
            left = curve.derivative(breakpoint - 1e-7)
            right = curve.derivative(breakpoint + 1e-7)
            assert left == pytest.approx(right, rel=1e-4)

    def test_first_derivative_value_at_17(self, fig1, cube):
        # hand-computed: dM/dE = -1/2 * (E - 13)^(-3/2) just above E = 17 -> -1/16
        curve = makespan_frontier(fig1, cube)
        assert curve.derivative(17.0 + 1e-9) == pytest.approx(-1.0 / 16.0, rel=1e-6)

    def test_derivative_range_matches_figure2(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        grid = np.linspace(6.0, 21.0, 200)
        deriv = curve.sample_derivative(grid)
        assert np.all(deriv < 0.0)
        assert deriv.min() >= -0.8   # figure 2's axis spans 0 .. -0.8
        assert deriv.max() <= 0.0

    def test_second_derivative_discontinuous_at_breakpoints(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        for breakpoint in curve.breakpoints:
            left = curve.second_derivative(breakpoint - 1e-9)
            right = curve.second_derivative(breakpoint + 1e-9)
            assert abs(left - right) > 1e-3

    def test_second_derivative_range_matches_figure3(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        grid = np.linspace(6.0, 21.0, 200)
        second = curve.sample_second_derivative(grid)
        assert np.all(second > 0.0)
        assert second.max() <= 0.25  # figure 3's axis spans 0 .. 0.25

    def test_curve_is_convex_and_decreasing(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        assert curve.is_convex()
        grid = np.linspace(6.0, 40.0, 50)
        values = curve.sample(grid)
        assert np.all(np.diff(values) < 0.0)


class TestGeneralInstances:
    def test_single_job_single_segment(self, cube):
        inst = Instance.from_arrays([0.0], [2.0])
        curve = makespan_frontier(inst, cube)
        assert len(curve.segments) == 1
        assert curve.breakpoints == []
        assert curve.value(8.0) == pytest.approx(2.0 / 2.0)  # speed 2

    def test_matches_incmerge_on_random_instances(self, cube):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(2, 9))
            releases = np.sort(rng.uniform(0, 10, n))
            releases[0] = 0.0
            works = rng.uniform(0.3, 2.5, n)
            inst = Instance.from_arrays(releases, works)
            curve = makespan_frontier(inst, cube)
            for energy in rng.uniform(0.5, 50.0, 6):
                assert curve.value(float(energy)) == pytest.approx(
                    incmerge(inst, cube, float(energy)).makespan, rel=1e-8
                )

    def test_coincident_releases(self, cube):
        inst = Instance.from_arrays([0, 0, 2], [1, 1, 2])
        curve = makespan_frontier(inst, cube)
        for energy in [1.0, 5.0, 20.0]:
            assert curve.value(energy) == pytest.approx(
                incmerge(inst, cube, energy).makespan, rel=1e-9
            )

    def test_non_polynomial_power_uses_numeric_derivatives(self, fig1):
        power = TabulatedConvexPower(lambda s: s**3, name="cubic-tabulated")
        curve = makespan_frontier(fig1, power)
        reference = makespan_frontier(fig1, CUBE)
        for energy in [7.0, 12.0, 20.0]:
            assert curve.value(energy) == pytest.approx(reference.value(energy), rel=1e-6)
            assert curve.derivative(energy) == pytest.approx(
                reference.derivative(energy), rel=1e-3
            )

    def test_alpha_2_breakpoints_still_at_configuration_changes(self, fig1):
        power = PolynomialPower(2.0)
        curve = makespan_frontier(fig1, power)
        # with alpha = 2 the fixed blocks use energy 5*1 + 2*2 = 9 and the
        # final job merges with block {1} when its speed drops to 2 -> E = 9 + 1*2 = 11
        assert curve.breakpoints[-1] == pytest.approx(11.0)

    def test_schedule_for_energy_matches_curve(self, fig1, cube):
        curve = makespan_frontier(fig1, cube)
        sched = schedule_for_energy(fig1, cube, 12.0)
        assert sched.makespan == pytest.approx(curve.value(12.0))
        sched.validate(energy_budget=12.0 * (1 + 1e-9))

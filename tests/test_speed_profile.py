"""Tests for piecewise-constant speed profiles."""

from __future__ import annotations

import pytest

from repro.core import CUBE, Instance, Schedule, SpeedProfile, SpeedSegment, profile_from_schedule
from repro.exceptions import InvalidScheduleError


class TestSpeedSegment:
    def test_work(self):
        seg = SpeedSegment(0.0, 2.0, 1.5)
        assert seg.work == pytest.approx(3.0)
        assert seg.duration == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(InvalidScheduleError):
            SpeedSegment(1.0, 1.0, 1.0)
        with pytest.raises(InvalidScheduleError):
            SpeedSegment(0.0, 1.0, -1.0)


class TestSpeedProfile:
    def test_overlap_rejected(self):
        with pytest.raises(InvalidScheduleError):
            SpeedProfile([SpeedSegment(0, 2, 1), SpeedSegment(1, 3, 1)])

    def test_coalescing(self):
        profile = SpeedProfile([SpeedSegment(0, 1, 2.0), SpeedSegment(1, 2, 2.0)])
        assert len(profile.segments) == 1
        assert profile.segments[0].end == pytest.approx(2.0)

    def test_speed_at_and_idle_gaps(self):
        profile = SpeedProfile([SpeedSegment(0, 1, 2.0), SpeedSegment(3, 4, 1.0)])
        assert profile.speed_at(0.5) == pytest.approx(2.0)
        assert profile.speed_at(2.0) == 0.0
        assert profile.speed_at(3.5) == pytest.approx(1.0)
        assert profile.speed_at(-1.0) == 0.0
        assert profile.speed_at(10.0) == 0.0

    def test_work_between(self):
        profile = SpeedProfile([SpeedSegment(0, 2, 1.0), SpeedSegment(4, 5, 3.0)])
        assert profile.work_between(0, 5) == pytest.approx(2.0 + 3.0)
        assert profile.work_between(1, 4.5) == pytest.approx(1.0 + 1.5)
        assert profile.work_between(2.5, 3.5) == 0.0
        assert profile.total_work == pytest.approx(5.0)

    def test_energy(self):
        profile = SpeedProfile([SpeedSegment(0, 2, 2.0)])
        # power = 8 for 2 time units
        assert profile.energy(CUBE) == pytest.approx(16.0)

    def test_busy_time_and_max_speed(self):
        profile = SpeedProfile([SpeedSegment(0, 2, 1.0), SpeedSegment(5, 6, 4.0)])
        assert profile.busy_time() == pytest.approx(3.0)
        assert profile.max_speed() == pytest.approx(4.0)

    def test_sample(self):
        profile = SpeedProfile([SpeedSegment(0, 1, 1.0)])
        values = profile.sample([0.0, 0.5, 2.0])
        assert values.tolist() == [1.0, 1.0, 0.0]


class TestProfileFromSchedule:
    def test_roundtrip_energy_and_work(self, fig1, cube):
        sched = Schedule.from_speeds(fig1, cube, [1.0, 2.0, 2.0])
        profile = profile_from_schedule(sched, processor=0)
        assert profile.total_work == pytest.approx(fig1.total_work)
        assert profile.energy(cube) == pytest.approx(sched.energy)
        assert profile.end == pytest.approx(sched.makespan)

    def test_missing_processor(self, fig1, cube):
        sched = Schedule.from_speeds(fig1, cube, [1.0, 2.0, 2.0])
        with pytest.raises(InvalidScheduleError):
            profile_from_schedule(sched, processor=3)

"""Tests for arrival traces: round-trips, malformed files, CLI error paths."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cli import main
from repro.exceptions import InvalidInstanceError, error_code
from repro.sim import (
    TRACE_FAMILIES,
    Trace,
    TraceEvent,
    generate_trace,
    load_trace,
    save_trace,
    trace_from_csv,
    trace_from_jsonl,
    trace_to_csv,
    trace_to_jsonl,
)
from repro.workloads import deadline_instance

from _strategies import hypothesis_settings


def _events_strategy():
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
            st.one_of(
                st.none(),
                st.floats(min_value=1e-3, max_value=20.0, allow_nan=False),
            ),
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    )


def _trace_from_raw(rows) -> Trace:
    events = [
        TraceEvent(
            time=time,
            work=work,
            deadline=None if laxity is None else time + laxity,
            weight=weight,
        )
        for time, work, laxity, weight in rows
    ]
    return Trace(name="hypothesis-trace", events=tuple(events))


class TestTraceModel:
    def test_events_sorted_by_time(self):
        trace = Trace(
            "t",
            (
                TraceEvent(time=5.0, work=1.0),
                TraceEvent(time=0.0, work=2.0),
            ),
        )
        assert [e.time for e in trace.events] == [0.0, 5.0]

    def test_instance_roundtrip_is_exact(self):
        inst = deadline_instance(7, seed=2)
        back = Trace.from_instance(inst).to_instance()
        assert np.array_equal(back.releases, inst.releases)
        assert np.array_equal(back.works, inst.works)
        assert np.array_equal(back.deadlines, inst.deadlines)
        assert back.name == inst.name

    def test_invalid_events_rejected(self):
        with pytest.raises(InvalidInstanceError):
            TraceEvent(time=0.0, work=0.0)
        with pytest.raises(InvalidInstanceError):
            TraceEvent(time=1.0, work=1.0, deadline=1.0)
        with pytest.raises(InvalidInstanceError):
            Trace("empty", ())

    def test_families_generate_deadline_traces(self):
        for family in TRACE_FAMILIES:
            trace = generate_trace(family, 6, 0)
            assert trace.n_events == 6
            assert trace.has_deadlines
            # deterministic from (family, n, seed)
            again = generate_trace(family, 6, 0)
            assert trace == again

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown trace family"):
            generate_trace("tides", 5, 0)


class TestRoundTrips:
    @pytest.mark.parametrize("family", sorted(TRACE_FAMILIES))
    @pytest.mark.parametrize("suffix", [".csv", ".jsonl"])
    def test_family_file_roundtrip_replays_identically(
        self, tmp_path, family, suffix
    ):
        trace = generate_trace(family, 9, 3)
        path = save_trace(trace, tmp_path / f"trace{suffix}")
        back = load_trace(path)
        # byte-identical replay: the instances (and re-exports) are equal
        assert back.events == trace.events
        assert trace_to_csv(back) == trace_to_csv(trace)
        assert trace_to_jsonl(back).splitlines()[1:] == trace_to_jsonl(
            trace
        ).splitlines()[1:]
        inst, inst_back = trace.to_instance(), back.to_instance()
        assert np.array_equal(inst.releases, inst_back.releases)
        assert np.array_equal(inst.works, inst_back.works)
        assert np.array_equal(inst.deadlines, inst_back.deadlines)

    @pytest.mark.slow
    @given(rows=_events_strategy())
    @hypothesis_settings(max_examples=60)
    def test_csv_roundtrip_is_byte_exact(self, rows):
        trace = _trace_from_raw(rows)
        back = trace_from_csv(trace_to_csv(trace), name=trace.name)
        assert back.events == trace.events
        assert trace_to_csv(back) == trace_to_csv(trace)

    @pytest.mark.slow
    @given(rows=_events_strategy())
    @hypothesis_settings(max_examples=60)
    def test_jsonl_roundtrip_is_byte_exact(self, rows):
        trace = _trace_from_raw(rows)
        back = trace_from_jsonl(trace_to_jsonl(trace))
        assert back.name == trace.name
        assert back.events == trace.events
        assert trace_to_jsonl(back) == trace_to_jsonl(trace)


class TestMalformedTraces:
    def test_csv_wrong_header(self):
        with pytest.raises(InvalidInstanceError, match="header"):
            trace_from_csv("time,work\n0,1\n")

    def test_csv_wrong_field_count(self):
        header = "event,time,work,deadline,weight"
        with pytest.raises(InvalidInstanceError, match="5 fields"):
            trace_from_csv(f"{header}\n0,0.0,1.0\n")

    def test_csv_unparsable_field_names_line(self):
        header = "event,time,work,deadline,weight"
        with pytest.raises(InvalidInstanceError, match="line 2"):
            trace_from_csv(f"{header}\n0,zero,1.0,,1.0\n")

    def test_csv_without_events(self):
        with pytest.raises(InvalidInstanceError, match="no events"):
            trace_from_csv("event,time,work,deadline,weight\n")

    def test_jsonl_missing_header(self):
        with pytest.raises(InvalidInstanceError, match="header"):
            trace_from_jsonl('{"time": 0, "work": 1}\n')

    def test_jsonl_event_count_mismatch(self):
        text = (
            '{"kind": "trace", "format": 1, "name": "t", "events": 3}\n'
            '{"time": 0.0, "work": 1.0, "deadline": 2.0, "weight": 1.0}\n'
        )
        with pytest.raises(InvalidInstanceError, match="declares 3 events"):
            trace_from_jsonl(text)

    def test_jsonl_malformed_row(self):
        text = (
            '{"kind": "trace", "format": 1, "name": "t", "events": 1}\n'
            '{"work": 1.0}\n'
        )
        with pytest.raises(InvalidInstanceError, match="line 2"):
            trace_from_jsonl(text)

    def test_errors_carry_the_stable_code(self):
        with pytest.raises(InvalidInstanceError) as excinfo:
            trace_from_csv("nope\n")
        assert error_code(excinfo.value) == "invalid-instance"

    def test_unknown_suffix_rejected(self, tmp_path):
        trace = generate_trace("mmpp", 4, 0)
        with pytest.raises(InvalidInstanceError, match="suffix"):
            save_trace(trace, tmp_path / "trace.xml")
        with pytest.raises(InvalidInstanceError, match="suffix"):
            load_trace(tmp_path / "trace.xml")


class TestSimCliErrorPaths:
    def test_missing_trace_file_exits_2(self, tmp_path, capsys):
        assert main(["sim", "--trace", str(tmp_path / "nope.csv")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_trace_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("this is not a trace\n", encoding="utf-8")
        assert main(["sim", "--trace", str(path)]) == 2
        assert "header" in capsys.readouterr().err

    def test_truncated_jsonl_exits_2(self, tmp_path, capsys):
        trace = generate_trace("day-night", 6, 0)
        path = save_trace(trace, tmp_path / "trace.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
        assert main(["sim", "--trace", str(path)]) == 2
        assert "declares" in capsys.readouterr().err

    def test_unknown_machine_exits_2(self, capsys):
        assert main(["sim", "--family", "mmpp", "--machine", "cray-1"]) == 2
        assert "unknown machine model" in capsys.readouterr().err

    def test_unknown_algorithm_exits_2(self, capsys):
        assert (
            main(["sim", "--family", "mmpp", "--algorithms", "lru"]) == 2
        )
        assert "unknown simulation algorithm" in capsys.readouterr().err

    def test_no_trace_selected_exits_2(self, capsys):
        assert main(["sim"]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_trace_without_deadlines_exits_2(self, tmp_path, capsys):
        path = tmp_path / "open.csv"
        path.write_text(
            "event,time,work,deadline,weight\n0,0.0,1.0,,1.0\n",
            encoding="utf-8",
        )
        assert main(["sim", "--trace", str(path)]) == 2
        assert "deadline" in capsys.readouterr().err

    def test_save_trace_then_replay_matches_generated(self, tmp_path, capsys):
        out = tmp_path / "saved.jsonl"
        assert main(
            ["sim", "--family", "heavy-tail", "--size", "6", "--seed", "1",
             "--save-trace", str(out), "--json"]
        ) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["sim", "--trace", str(out), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["reports"] == first["reports"]

"""Tests for the equal-work multiprocessor front ends (Theorem 10 + Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import InvalidInstanceError
from repro.multi import (
    exact_multiprocessor_makespan,
    flow_for_assignment,
    last_job_speeds,
    multiprocessor_energy_for_makespan_equal_work,
    multiprocessor_flow_equal_work,
    multiprocessor_flow_schedule,
    multiprocessor_makespan_equal_work,
    multiprocessor_makespan_schedule,
)


@pytest.fixture
def inst() -> Instance:
    return Instance.equal_work([0.0, 0.3, 1.0, 2.0, 2.5, 4.0], work=1.0)


class TestMakespanEqualWork:
    def test_matches_exact_assignment_search(self, inst, cube):
        cyclic = multiprocessor_makespan_equal_work(inst, cube, 2, 10.0)
        exact = exact_multiprocessor_makespan(inst, cube, 2, 10.0)
        assert cyclic.makespan == pytest.approx(exact.makespan, rel=1e-7)

    def test_single_processor_case(self, inst, cube):
        from repro.makespan import incmerge

        result = multiprocessor_makespan_equal_work(inst, cube, 1, 10.0)
        assert result.makespan == pytest.approx(incmerge(inst, cube, 10.0).makespan, rel=1e-9)

    def test_server_roundtrip(self, inst, cube):
        laptop = multiprocessor_makespan_equal_work(inst, cube, 3, 9.0)
        energy = multiprocessor_energy_for_makespan_equal_work(inst, cube, 3, laptop.makespan)
        assert energy == pytest.approx(9.0, rel=1e-7)

    def test_schedule_valid(self, inst, cube):
        sched = multiprocessor_makespan_schedule(inst, cube, 2, 10.0)
        sched.validate(energy_budget=10.0 * (1 + 1e-6))
        assert sched.n_processors == 2

    def test_unequal_work_rejected(self, cube):
        inst = Instance.from_arrays([0, 1], [1.0, 2.0])
        with pytest.raises(InvalidInstanceError):
            multiprocessor_makespan_equal_work(inst, cube, 2, 5.0)

    def test_makespan_decreases_with_processors(self, inst, cube):
        values = [
            multiprocessor_makespan_equal_work(inst, cube, m, 8.0).makespan for m in [1, 2, 3]
        ]
        assert values[1] <= values[0] + 1e-9
        assert values[2] <= values[1] + 1e-9


class TestFlowEqualWork:
    def test_last_job_speeds_equal(self, inst, cube):
        result = multiprocessor_flow_equal_work(inst, cube, 2, 10.0)
        speeds = last_job_speeds(result)
        assert speeds[0] == pytest.approx(speeds[1], rel=1e-3)

    def test_cyclic_beats_or_matches_other_assignments(self, inst, cube):
        cyclic = multiprocessor_flow_equal_work(inst, cube, 2, 8.0)
        # a few alternative assignments for comparison
        alternatives = [
            {0: [0, 1, 2], 1: [3, 4, 5]},
            {0: [0, 2, 4, 5], 1: [1, 3]},
            {0: [0], 1: [1, 2, 3, 4, 5]},
        ]
        for assignment in alternatives:
            other = flow_for_assignment(inst, cube, assignment, 8.0)
            assert cyclic.flow <= other.flow * (1 + 1e-4)

    def test_schedule_valid(self, inst, cube):
        sched = multiprocessor_flow_schedule(inst, cube, 3, 9.0)
        sched.validate(energy_budget=9.0 * (1 + 1e-5))

    def test_unequal_work_rejected(self, cube):
        bad = Instance.from_arrays([0, 1], [1.0, 2.0])
        with pytest.raises(InvalidInstanceError):
            multiprocessor_flow_equal_work(bad, cube, 2, 5.0)

    def test_flow_decreases_with_processors(self, inst, cube):
        values = [
            multiprocessor_flow_equal_work(inst, cube, m, 6.0).flow for m in [1, 2, 3]
        ]
        assert values[1] <= values[0] + 1e-6
        assert values[2] <= values[1] + 1e-6

"""Tests for the block machinery of Section 3."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Block,
    BlockConfiguration,
    CUBE,
    Instance,
    blocks_from_speeds,
    evaluate_configuration,
    fixed_block_speed,
)
from repro.exceptions import InvalidInstanceError


class TestBlock:
    def test_derived_quantities(self, cube):
        block = Block(first=0, last=1, start_time=0.0, work=6.0, speed=2.0)
        assert block.n_jobs == 2
        assert block.duration == pytest.approx(3.0)
        assert block.end_time == pytest.approx(3.0)
        assert block.energy(cube) == pytest.approx(6.0 * 4.0)

    def test_invalid(self):
        with pytest.raises(InvalidInstanceError):
            Block(first=2, last=1, start_time=0.0, work=1.0, speed=1.0)
        with pytest.raises(InvalidInstanceError):
            Block(first=0, last=0, start_time=0.0, work=1.0, speed=0.0)


class TestBlockConfiguration:
    def test_ranges(self):
        config = BlockConfiguration(boundaries=(0, 2, 4), n_jobs=5)
        assert config.n_blocks == 3
        assert config.block_ranges() == [(0, 1), (2, 3), (4, 4)]

    def test_invalid_boundaries(self):
        with pytest.raises(InvalidInstanceError):
            BlockConfiguration(boundaries=(1, 2), n_jobs=3)
        with pytest.raises(InvalidInstanceError):
            BlockConfiguration(boundaries=(0, 5), n_jobs=3)
        with pytest.raises(InvalidInstanceError):
            BlockConfiguration(boundaries=(0, 2, 2), n_jobs=3)


class TestFixedBlockSpeed:
    def test_fig1_speeds(self, fig1):
        # block {0}: 5 work over [0, 5] -> speed 1; block {1}: 2 work over [5, 6] -> 2
        assert fixed_block_speed(fig1, 0, 0) == pytest.approx(1.0)
        assert fixed_block_speed(fig1, 1, 1) == pytest.approx(2.0)
        # merged block {0,1}: 7 work over [0, 6]
        assert fixed_block_speed(fig1, 0, 1) == pytest.approx(7.0 / 6.0)

    def test_final_block_rejected(self, fig1):
        with pytest.raises(InvalidInstanceError):
            fixed_block_speed(fig1, 0, 2)

    def test_coincident_releases_give_infinity(self):
        inst = Instance.from_arrays([0, 0, 1], [1, 1, 1])
        assert math.isinf(fixed_block_speed(inst, 0, 0))


class TestEvaluateConfiguration:
    def test_fig1_three_blocks_at_energy_17(self, fig1, cube):
        config = BlockConfiguration(boundaries=(0, 1, 2), n_jobs=3)
        outcome = evaluate_configuration(fig1, cube, config, 17.0)
        assert outcome is not None
        blocks, makespan = outcome
        # fixed blocks use 5 + 8 = 13 energy; last block gets 4 -> speed 2
        assert makespan == pytest.approx(6.5)
        assert blocks[-1].speed == pytest.approx(2.0)

    def test_single_block_configuration(self, fig1, cube):
        config = BlockConfiguration(boundaries=(0,), n_jobs=3)
        outcome = evaluate_configuration(fig1, cube, config, 8.0)
        assert outcome is not None
        blocks, makespan = outcome
        assert len(blocks) == 1
        assert makespan == pytest.approx(8.0)  # 8 work at speed 1

    def test_infeasible_when_budget_below_fixed_energy(self, fig1, cube):
        config = BlockConfiguration(boundaries=(0, 1, 2), n_jobs=3)
        # fixed blocks alone need 13
        assert evaluate_configuration(fig1, cube, config, 12.0) is None

    def test_inconsistent_block_rejected(self, cube):
        # splitting {0} | {1,2} with releases 0, 1, 5: block (1,2) at its fixed
        # speed finishes job 1 well before job 2's release -> not a valid block
        inst = Instance.from_arrays([0.0, 1.0, 5.0], [1.0, 0.1, 1.0])
        config = BlockConfiguration(boundaries=(0, 1), n_jobs=3)
        outcome = evaluate_configuration(inst, cube, config, 100.0)
        assert outcome is None


class TestBlocksFromSpeeds:
    def test_fig1_blocks_at_high_energy(self, fig1):
        # speeds 1, 2, fast: three blocks
        ranges = blocks_from_speeds(fig1, [1.0, 2.0, 4.0])
        assert ranges == [(0, 0), (1, 1), (2, 2)]

    def test_fig1_single_block_at_low_energy(self, fig1):
        ranges = blocks_from_speeds(fig1, [0.9, 0.9, 0.9])
        assert ranges == [(0, 2)]

    def test_wrong_length(self, fig1):
        with pytest.raises(InvalidInstanceError):
            blocks_from_speeds(fig1, [1.0])

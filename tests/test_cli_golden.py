"""Golden CLI tests: the registry-shimmed subcommands are byte-identical.

The files under ``tests/golden/`` were captured from the CLI *before* the
solver-registry redesign (PR 3).  These tests prove the redesigned
subcommands — now thin shims over :data:`repro.api.REGISTRY` — still produce
byte-identical output, and exercise the new generic ``repro solve``
subcommand end to end.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.api import REGISTRY, SolveRequest
from repro.cli import main
from repro.core import CUBE
from repro.io import request_to_dict, save_instance, save_instances
from repro.workloads import equal_work_instance, figure1_instance

GOLDEN = Path(__file__).parent / "golden"

FIG1 = ["--releases", "0,5,6", "--works", "5,2,1"]
EQ = ["--releases", "0,1,2", "--works", "2,2,2"]

GOLDEN_CASES = {
    "laptop_table.txt": ["laptop", *FIG1, "--energy", "17"],
    "laptop.json": ["laptop", *FIG1, "--energy", "17", "--json"],
    "server.json": ["server", *FIG1, "--makespan", "8", "--json"],
    "frontier.json": ["frontier", *FIG1, "--min-energy", "6", "--max-energy", "21",
                      "--points", "5", "--json"],
    "flow.json": ["flow", *EQ, "--energy", "6", "--json"],
    "flow_table.txt": ["flow", *EQ, "--energy", "6"],
    "multi_makespan.json": ["multi", *EQ, "--energy", "8", "--processors", "2",
                            "--metric", "makespan", "--json"],
    "multi_flow.json": ["multi", *EQ, "--energy", "8", "--processors", "2",
                        "--metric", "flow", "--json"],
    "figures.json": ["figures", "--points", "7", "--json"],
    "sim.json": ["sim", "--family", "day-night", "--size", "12", "--seed", "0",
                 "--machine", "athlon64", "--json"],
    "sim_table.txt": ["sim", "--family", "heavy-tail", "--size", "8",
                      "--seed", "1", "--machine", "static-sleep"],
}


class TestGoldenSubcommands:
    @pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
    def test_byte_identical_to_pre_redesign_output(self, name, capsys):
        assert main(GOLDEN_CASES[name]) == 0
        got = capsys.readouterr().out
        want = (GOLDEN / name).read_text(encoding="utf-8")
        assert got == want

    @pytest.mark.slow
    def test_compete_byte_identical(self, capsys):
        argv = ["compete", "--alphas", "2", "--sizes", "5", "--seeds", "2",
                "--families", "deadline,staircase", "--json"]
        assert main(argv) == 0
        got = capsys.readouterr().out
        want = (GOLDEN / "compete.json").read_text(encoding="utf-8")
        assert got == want

    @pytest.mark.slow
    def test_compete_machines_byte_identical(self, capsys):
        argv = ["compete", "--machines", "pure,athlon64",
                "--families", "day-night,mmpp", "--sizes", "6",
                "--seeds", "1", "--algorithms", "oa,avr", "--json"]
        assert main(argv) == 0
        got = capsys.readouterr().out
        want = (GOLDEN / "compete_machines.json").read_text(encoding="utf-8")
        assert got == want

    def test_batch_results_byte_identical(self, tmp_path, capsys):
        # timing fields vary run to run; the results section must not
        path = tmp_path / "batch.json"
        save_instances([equal_work_instance(4, seed=s) for s in range(3)], path)
        assert main(["batch", "--instances", str(path), "--energy", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        got = json.dumps(payload["results"], indent=2, sort_keys=True) + "\n"
        want = (GOLDEN / "batch_results.json").read_text(encoding="utf-8")
        assert got == want


class TestServeGolden:
    def test_serve_transcript_byte_identical(self, monkeypatch, capsys):
        # the serve-protocol golden: two identical requests (miss then hit)
        # plus a malformed line (structured error, loop survives), exactly as
        # tools/regen_golden.py captures it
        line = json.dumps(
            request_to_dict(
                SolveRequest(
                    instance=figure1_instance(), power=CUBE,
                    solver="laptop", budget=17.0,
                )
            )
        )
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(line + "\n" + line + "\n" + "{not json\n")
        )
        assert main(["serve", "--no-timing"]) == 0
        got = capsys.readouterr().out
        want = (GOLDEN / "serve_transcript.txt").read_text(encoding="utf-8")
        assert got == want


class TestSolveSubcommand:
    def test_list_contains_every_registered_solver(self, capsys):
        assert main(["solve", "--list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY.names():
            assert name in out

    def test_solve_by_name_matches_laptop_shim(self, capsys):
        assert main(["solve", "--solver", "laptop", *FIG1, "--budget", "17", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert main(["laptop", *FIG1, "--energy", "17", "--json"]) == 0
        legacy = json.loads(capsys.readouterr().out)
        assert envelope["kind"] == "solve-result"
        assert envelope["status"] == "ok"
        assert envelope["value"] == legacy["makespan"]
        assert envelope["energy"] == legacy["energy"]
        assert envelope["speeds"] == legacy["speeds"]

    def test_solve_by_matrix_cell(self, capsys):
        assert main(["solve", "--objective", "makespan", "--mode", "server",
                     *FIG1, "--budget", "8", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["solver"] == "server"
        assert envelope["value"] == pytest.approx(8.0)

    def test_solve_request_envelope_file(self, tmp_path, capsys):
        from repro.api import SolveRequest
        from repro.core import CUBE

        request = SolveRequest(
            instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
        )
        path = tmp_path / "request.json"
        path.write_text(json.dumps(request_to_dict(request)), encoding="utf-8")
        assert main(["solve", "--request", str(path), "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "ok"
        assert envelope["value"] == pytest.approx(6.5)

    def test_error_is_structured_envelope_in_json_mode(self, capsys):
        assert main(["solve", "--solver", "laptop", *FIG1, "--json"]) == 2
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "error"
        assert envelope["error"]["code"] == "invalid-budget"

    def test_error_exit_code_in_table_mode(self, capsys):
        assert main(["solve", "--solver", "nope", *FIG1, "--budget", "1"]) == 2
        assert "unknown-solver" in capsys.readouterr().err

    def test_missing_selection_is_cli_error(self, capsys):
        assert main(["solve", *FIG1]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_request_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "req.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["solve", "--request", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("field,value", [("processors", None), ("budget", "abc")])
    def test_malformed_request_values_exit_2(self, tmp_path, capsys, field, value):
        # valid JSON whose envelope fields have the wrong type must be a
        # clean CLI error, not a traceback
        from repro.api import SolveRequest
        from repro.core import CUBE

        request = SolveRequest(
            instance=figure1_instance(), power=CUBE, solver="laptop", budget=17.0
        )
        data = request_to_dict(request)
        data[field] = value
        path = tmp_path / "req.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        assert main(["solve", "--request", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_frontier_through_solve(self, tmp_path, capsys):
        path = save_instance(figure1_instance(), tmp_path / "fig1.json")
        assert main([
            "solve", "--solver", "frontier", "--instance", str(path),
            "--options", '{"min_energy": 6, "max_energy": 21, "points": 5}', "--json",
        ]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["extras"]["breakpoints"] == pytest.approx([8.0, 17.0])
        assert len(envelope["extras"]["samples"]) == 5

    def test_multi_through_solve(self, capsys):
        assert main(["solve", "--solver", "multi-makespan", *EQ, "--budget", "8",
                     "--processors", "2", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "ok"
        assert set(envelope["extras"]["assignment"]) == {"0", "1"}

"""Equivalence suite for the structure-of-arrays batched kernel tier.

Every batched kernel in :mod:`repro.core.kernels` is pinned to a loop of its
per-instance counterpart on randomized (Hypothesis) *chunks* of instances —
padded same-shape chunks, mixed job counts via the mask, single-job rows and
degenerate all-equal-deadline chunks.  The pins are bitwise (``==`` on the
float arrays), not approximate: the batched tier is advertised as
byte-identical to the reference path, and the registry / batch-engine tests
below hold the end-to-end dispatch (``SolverRegistry.run_batch``,
``solve_stream(batch_kernel=...)``) to the same standard.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from _strategies import (
    deadline_instance_from,
    hypothesis_settings,
    laxities_strategy,
    releases_strategy,
    works_strategy,
)
from repro.api.registry import REGISTRY, SolverRegistry
from repro.api.types import ProblemSpec, SolveRequest, SolverCapabilities
from repro.batch import solve_many
from repro.core import CUBE, Instance, PolynomialPower
from repro.core.kernels import (
    BatchWorkspace,
    chain_start_times,
    chain_start_times_batched,
    common_release_prefix_speeds,
    common_release_prefix_speeds_batched,
    energy_eval,
    energy_eval_batched,
    interval_work_grid,
    interval_work_grid_batched,
    max_density_interval,
    max_density_interval_batched,
    pack_instances,
    prefix_sums,
    prefix_sums_batched,
)
from repro.core.power import AffinePolynomialPower
from repro.exceptions import InvalidInstanceError
from repro.online.avr import avr_speed_profile, avr_speed_profiles_batch
from repro.online.bkp import bkp_speed_profile
from repro.online.yds import (
    edf_energy_speeds,
    edf_schedule_at_speeds,
    yds_speeds,
    yds_speeds_batch,
)

common_settings = hypothesis_settings(max_examples=25)

POWER = PolynomialPower(3.0)


@st.composite
def instance_chunks(draw):
    """A chunk of 1-5 feasible deadline instances with mixed job counts."""
    count = draw(st.integers(min_value=1, max_value=5))
    return [
        deadline_instance_from(
            draw(releases_strategy), draw(works_strategy), draw(laxities_strategy)
        )
        for _ in range(count)
    ]


def _degenerate_chunks() -> list[list[Instance]]:
    """Hand-picked edge chunks: n=1 rows, equal deadlines, equal releases."""
    single = Instance.from_arrays([0.0], [2.0], deadlines=[1.0])
    equal_deadline = Instance.from_arrays(
        [0.0, 0.0, 0.0], [1.0, 2.0, 0.5], deadlines=[4.0, 4.0, 4.0]
    )
    staggered = Instance.from_arrays(
        [0.0, 1.0, 1.0, 3.0], [1.0, 0.5, 2.0, 1.0], deadlines=[2.0, 2.0, 5.0, 4.0]
    )
    return [
        [single],
        [single, single, single],
        [equal_deadline, equal_deadline],
        [single, equal_deadline, staggered],
        [staggered] * 4,
    ]


# ----------------------------------------------------------------------
# packing + low-level batched kernels vs per-instance loops
# ----------------------------------------------------------------------


@common_settings
@given(instances=instance_chunks())
def test_pack_instances_layout(instances):
    batch = pack_instances(instances)
    assert batch.batch_size == len(instances)
    assert batch.width == max(inst.n_jobs for inst in instances)
    for b, inst in enumerate(instances):
        n = inst.n_jobs
        assert np.array_equal(batch.releases[b, :n], inst.releases)
        assert np.array_equal(batch.deadlines[b, :n], inst.deadlines)
        assert np.array_equal(batch.works[b, :n], inst.works)
        assert batch.mask[b, :n].all()
        assert not batch.mask[b, n:].any()
        assert np.isinf(batch.releases[b, n:]).all()
        assert (batch.works[b, n:] == 0.0).all()


@common_settings
@given(instances=instance_chunks())
def test_prefix_sums_batched_bitwise(instances):
    batch = pack_instances(instances)
    out = prefix_sums_batched(batch.works)
    for b, inst in enumerate(instances):
        n = inst.n_jobs
        assert np.array_equal(out[b, : n + 1], prefix_sums(inst.works))


@common_settings
@given(instances=instance_chunks())
def test_energy_eval_batched_bitwise(instances):
    batch = pack_instances(instances)
    speeds = np.where(batch.mask, batch.works + 1.0, 0.0)  # padded slots unsafe
    for power in (POWER, AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=0.5)):
        out = energy_eval_batched(power, batch.works, speeds, batch.mask)
        assert (out[~batch.mask] == 0.0).all()
        for b, inst in enumerate(instances):
            n = inst.n_jobs
            assert np.array_equal(
                out[b, :n], energy_eval(power, inst.works, speeds[b, :n])
            )


@common_settings
@given(instances=instance_chunks())
def test_chain_start_times_batched_bitwise(instances):
    batch = pack_instances(instances)
    durations = np.where(batch.mask, batch.works, 0.0)
    clock0 = np.array([inst.first_release for inst in instances])
    starts, ends = chain_start_times_batched(
        batch.releases, durations, clock0, batch.mask
    )
    for b, inst in enumerate(instances):
        n = inst.n_jobs
        ref_starts, ref_ends = chain_start_times(
            inst.releases, inst.works, inst.first_release
        )
        assert np.array_equal(starts[b, :n], ref_starts)
        assert np.array_equal(ends[b, :n], ref_ends)


@common_settings
@given(instances=instance_chunks())
def test_interval_work_grid_batched_reads_match_unique_grid(instances):
    """Dup-axis rows answer every searchsorted read like the unique grid.

    This is the exact read pattern :func:`repro.online.bkp.bkp_speed_profile`
    performs against an injected grid row.
    """
    batch = pack_instances(instances)
    grid_r, grid_d, member = interval_work_grid_batched(
        batch.releases, batch.deadlines, batch.works, batch.mask
    )
    for b, inst in enumerate(instances):
        n = inst.n_jobs
        u_r, u_d, u_member = interval_work_grid(
            inst.releases, inst.deadlines, inst.works
        )
        d_r, d_d, d_member = grid_r[b, :n], grid_d[b, :n], member[b, : n + 1, :n]
        queries = np.unique(
            np.concatenate([u_r, u_d, u_r - 1e-12, u_d + 1e-12, [0.0, 1e9]])
        )
        a_u = np.searchsorted(u_r, queries, side="left")
        a_d = np.searchsorted(d_r, queries, side="left")
        for c in np.unique(inst.deadlines):
            b_u = np.searchsorted(u_d, c + 1e-12, side="right") - 1
            b_d = np.searchsorted(d_d, c + 1e-12, side="right") - 1
            assert np.array_equal(u_member[a_u, b_u], d_member[a_d, b_d])


@common_settings
@given(instances=instance_chunks())
def test_max_density_interval_batched_bitwise(instances):
    batch = pack_instances(instances)
    t1, t2, density = max_density_interval_batched(
        batch.releases, batch.deadlines, batch.works
    )
    for b, inst in enumerate(instances):
        found = max_density_interval(inst.releases, inst.deadlines, inst.works)
        assert found is not None
        assert t1[b] == found[0]
        assert t2[b] == found[1]
        assert density[b] == found[2]


def test_max_density_interval_batched_workspace_reuse():
    """A preallocated workspace gives identical answers across repeated calls."""
    instances = _degenerate_chunks()[3] * 8  # mixed shapes, 24 rows
    batch = pack_instances(instances)
    rows, width = batch.releases.shape
    workspace = BatchWorkspace(rows, width)
    plain = max_density_interval_batched(batch.releases, batch.deadlines, batch.works)
    for _ in range(3):  # reuse must not leak state between calls
        with_ws = max_density_interval_batched(
            batch.releases, batch.deadlines, batch.works, workspace=workspace
        )
        for a, c in zip(plain, with_ws):
            assert np.array_equal(a, c)


@common_settings
@given(instances=instance_chunks())
def test_common_release_prefix_speeds_batched_bitwise(instances):
    # all jobs share a row release: sort each instance's deadlines and use
    # t0 = 0 (strictly below every feasible deadline)
    deadline_rows = [np.sort(inst.deadlines) for inst in instances]
    work_rows = [
        inst.works[np.argsort(inst.deadlines, kind="stable")] for inst in instances
    ]
    width = max(len(r) for r in deadline_rows)
    deadlines = np.full((len(instances), width), np.inf)
    works = np.zeros((len(instances), width))
    mask = np.zeros((len(instances), width), dtype=bool)
    for b, (d, w) in enumerate(zip(deadline_rows, work_rows)):
        deadlines[b, : len(d)] = d
        works[b, : len(d)] = w
        mask[b, : len(d)] = True
    speeds = common_release_prefix_speeds_batched(0.0, deadlines, works, mask)
    assert (speeds[~mask] == 0.0).all()
    for b, (d, w) in enumerate(zip(deadline_rows, work_rows)):
        ref = common_release_prefix_speeds(0.0, d, w)
        assert np.array_equal(speeds[b, : len(d)], ref)


def test_common_release_prefix_speeds_batched_rejects_stale_deadline():
    deadlines = np.array([[1.0, 2.0], [0.5, 3.0]])
    works = np.ones((2, 2))
    with pytest.raises(ValueError, match="not after"):
        common_release_prefix_speeds_batched(0.75, deadlines, works)


# ----------------------------------------------------------------------
# solver-layer batched entry points
# ----------------------------------------------------------------------


@common_settings
@given(instances=instance_chunks())
def test_yds_speeds_batch_bitwise(instances):
    planned = yds_speeds_batch(instances)
    for b, inst in enumerate(instances):
        ref = yds_speeds(inst).speeds
        assert np.array_equal(planned[b, : inst.n_jobs], ref)
        assert (planned[b, inst.n_jobs :] == 0.0).all()


def test_yds_speeds_batch_degenerate_chunks_bitwise():
    for instances in _degenerate_chunks():
        planned = yds_speeds_batch(instances)
        for b, inst in enumerate(instances):
            assert np.array_equal(planned[b, : inst.n_jobs], yds_speeds(inst).speeds)


@common_settings
@given(instances=instance_chunks())
def test_edf_energy_speeds_matches_schedule_bitwise(instances):
    for inst in instances:
        speeds = yds_speeds(inst).speeds
        energy, job_speeds = edf_energy_speeds(inst, POWER, speeds)
        sched = edf_schedule_at_speeds(inst, POWER, speeds)
        assert energy == sched.energy
        assert np.array_equal(job_speeds, sched.speeds)


@common_settings
@given(instances=instance_chunks())
def test_avr_profiles_batch_exact(instances):
    profiles = avr_speed_profiles_batch(instances)
    for inst, profile in zip(instances, profiles):
        assert profile == avr_speed_profile(inst)


@common_settings
@given(instances=instance_chunks())
def test_bkp_profile_with_batched_grid_exact(instances):
    batch = pack_instances(instances)
    grid_r, grid_d, member = interval_work_grid_batched(
        batch.releases, batch.deadlines, batch.works, batch.mask
    )
    for b, inst in enumerate(instances):
        n = inst.n_jobs
        injected = bkp_speed_profile(
            inst,
            steps_per_interval=8,
            grid=(grid_r[b, :n], grid_d[b, :n], member[b, : n + 1, :n]),
        )
        assert injected == bkp_speed_profile(inst, steps_per_interval=8)


# ----------------------------------------------------------------------
# registry dispatch: run_batch vs per-request run
# ----------------------------------------------------------------------


def _result_key(result):
    return (
        result.solver,
        result.status,
        result.value,
        result.energy,
        result.speeds.tobytes(),
        dict(result.extras),
    )


@pytest.mark.parametrize("solver", ["yds", "avr", "bkp"])
def test_run_batch_byte_identical_to_run(solver):
    rng = np.random.default_rng(5)
    instances = []
    for n in (1, 3, 8, 8, 16, 5):
        rel = np.sort(rng.uniform(0.0, 10.0, n))
        wk = rng.uniform(0.1, 4.0, n)
        dl = rel + rng.uniform(0.5, 6.0, n)
        instances.append(Instance.from_arrays(rel, wk, deadlines=dl))
    requests = [
        SolveRequest(instance=inst, power=POWER, solver=solver) for inst in instances
    ]
    single = [_result_key(REGISTRY.run(r)) for r in requests]
    batched = [_result_key(r) for r in REGISTRY.run_batch(requests)]
    assert batched == single


def test_run_batch_rejects_mixed_solvers():
    inst = Instance.from_arrays([0.0], [1.0], deadlines=[1.0])
    with pytest.raises(InvalidInstanceError, match="homogeneous"):
        REGISTRY.run_batch(
            [
                SolveRequest(instance=inst, power=POWER, solver="yds"),
                SolveRequest(instance=inst, power=POWER, solver="avr"),
            ]
        )


def test_run_batch_rejects_solver_without_kernel():
    inst = Instance.from_arrays([0.0], [1.0], deadlines=[1.0])
    with pytest.raises(InvalidInstanceError, match="batched kernel"):
        REGISTRY.run_batch([SolveRequest(instance=inst, power=POWER, solver="oa")])


def test_run_batch_empty_chunk():
    assert REGISTRY.run_batch([]) == []


def test_run_batch_validates_each_request():
    # yds needs deadlines on every request of the chunk, not just the first
    good = Instance.from_arrays([0.0], [1.0], deadlines=[1.0])
    bad = Instance.from_arrays([0.0], [1.0])
    with pytest.raises(InvalidInstanceError, match="deadline"):
        REGISTRY.run_batch(
            [
                SolveRequest(instance=good, power=POWER, solver="yds"),
                SolveRequest(instance=bad, power=POWER, solver="yds"),
            ]
        )


def _toy_caps(name, batch_kernel=False):
    return SolverCapabilities(
        name=name,
        spec=ProblemSpec(objective="energy", mode="server"),
        summary="toy",
        budget_kind="none",
        batch_kernel=batch_kernel,
    )


def test_register_requires_flag_and_kernel_to_agree():
    registry = SolverRegistry()
    with pytest.raises(InvalidInstanceError, match="batch_kernel"):
        registry.register(_toy_caps("flagged", batch_kernel=True), lambda req: None)
    with pytest.raises(InvalidInstanceError, match="batch_kernel"):
        registry.register(
            _toy_caps("unflagged"),
            lambda req: None,
            batch_fn=lambda reqs: [],
        )


def test_run_batch_length_mismatch_is_rejected():
    registry = SolverRegistry()
    registry.register(
        _toy_caps("short", batch_kernel=True),
        lambda req: (1.0, 1.0, np.ones(1), {}),
        batch_fn=lambda reqs: [(1.0, 1.0, np.ones(1), {})] * (len(reqs) - 1),
    )
    inst = Instance.from_arrays([0.0], [1.0], deadlines=[1.0])
    requests = [
        SolveRequest(instance=inst, power=POWER, solver="short") for _ in range(3)
    ]
    with pytest.raises(InvalidInstanceError, match="returned 2 results"):
        registry.run_batch(requests)


# ----------------------------------------------------------------------
# batch engine dispatch: solve_stream batch_kernel modes
# ----------------------------------------------------------------------


def _fleet(seed=9, sizes=(8,) * 6 + (1, 3, 8, 16)):
    rng = np.random.default_rng(seed)
    out = []
    for n in sizes:
        rel = np.sort(rng.uniform(0.0, 10.0, n))
        wk = rng.uniform(0.1, 4.0, n)
        dl = rel + rng.uniform(0.5, 6.0, n)
        out.append(Instance.from_arrays(rel, wk, deadlines=dl))
    return out


def _batch_key(results):
    return [
        (r.index, r.solver, r.n_jobs, r.value, r.energy, r.speeds.tobytes())
        for r in results
    ]


@pytest.mark.parametrize("solver", ["yds", "avr", "bkp"])
def test_solve_stream_batch_kernel_modes_byte_identical(solver):
    instances = _fleet()
    baseline = _batch_key(
        solve_many(instances, POWER, 0.0, solver=solver, batch_kernel="off")
    )
    for mode in ("auto", "on"):
        got = _batch_key(
            solve_many(instances, POWER, 0.0, solver=solver, batch_kernel=mode)
        )
        assert got == baseline


def test_solve_stream_batch_kernel_verify_path():
    instances = _fleet(sizes=(4, 4, 4, 4))
    results = solve_many(
        instances, POWER, 0.0, solver="yds", batch_kernel="on", verify=True
    )
    assert all(r.ok for r in results)


def test_solve_stream_batch_kernel_on_needs_capability():
    instances = _fleet(sizes=(4, 4))
    with pytest.raises(InvalidInstanceError, match="registers no batched kernel"):
        list(solve_many(instances, POWER, 100.0, solver="laptop", batch_kernel="on"))


def test_solve_stream_batch_kernel_rejects_unknown_mode():
    instances = _fleet(sizes=(4,))
    with pytest.raises(InvalidInstanceError, match="batch_kernel"):
        list(solve_many(instances, POWER, 0.0, solver="yds", batch_kernel="sometimes"))


def test_solve_stream_batch_kernel_auto_falls_back_without_kernel():
    # laptop registers no batched kernel; "auto" must quietly use the
    # per-instance path instead of raising
    instances = _fleet(sizes=(4, 4, 4))
    results = solve_many(instances, POWER, 100.0, solver="laptop", batch_kernel="auto")
    assert all(r.ok for r in results)

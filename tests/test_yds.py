"""Tests for the Yao-Demers-Shenker substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import InvalidInstanceError
from repro.makespan import minimum_energy_for_makespan
from repro.online import edf_schedule_at_speeds, yds_schedule, yds_speeds
from repro.workloads import deadline_instance


class TestYDSSpeeds:
    def test_single_job(self):
        inst = Instance.from_arrays([0.0], [2.0], deadlines=[4.0])
        result = yds_speeds(inst)
        assert result.speeds[0] == pytest.approx(0.5)
        assert result.critical_intervals[0][:2] == (0.0, 4.0)

    def test_textbook_two_job_example(self):
        # job 0: window [0, 10], work 8; job 1: window [4, 6], work 4
        inst = Instance.from_arrays([0.0, 4.0], [8.0, 4.0], deadlines=[10.0, 6.0])
        result = yds_speeds(inst)
        assert result.speeds[1] == pytest.approx(2.0)  # critical interval [4, 6]
        assert result.speeds[0] == pytest.approx(1.0)  # remaining 8 work over 8 time

    def test_missing_deadlines_rejected(self):
        inst = Instance.from_arrays([0.0], [1.0])
        with pytest.raises(InvalidInstanceError):
            yds_speeds(inst)

    def test_nested_windows(self):
        inst = Instance.from_arrays([0.0, 1.0], [0.3, 3.0], deadlines=[3.0, 2.0])
        result = yds_speeds(inst)
        # the inner job dominates: speed 3 on [1, 2]
        assert result.speeds[1] == pytest.approx(3.0)
        schedule = yds_schedule(inst, CUBE)
        schedule.validate(require_deadlines=True)


class TestYDSSchedule:
    def test_meets_deadlines_on_random_instances(self, cube):
        for seed in range(10):
            inst = deadline_instance(6, seed=seed, laxity=2.5)
            schedule = yds_schedule(inst, cube)
            schedule.validate(require_deadlines=True)

    def test_optimal_for_common_deadline(self, fig1, cube):
        # the makespan server problem is YDS with a common deadline
        for target in [6.5, 7.5, 10.0]:
            schedule = yds_schedule(fig1.with_deadlines(target), cube)
            schedule.validate(require_deadlines=True)
            assert schedule.energy == pytest.approx(
                minimum_energy_for_makespan(fig1, cube, target), rel=1e-9
            )

    def test_energy_below_any_feasible_uniform_speed(self, cube):
        inst = deadline_instance(5, seed=3, laxity=3.0)
        optimal = yds_schedule(inst, cube)
        # a naive feasible alternative: run every job at the speed needed to
        # finish within its own window
        naive_speeds = inst.works / (inst.deadlines - inst.releases)
        # that alternative may be infeasible under EDF contention, so only
        # compare energies when it is feasible
        try:
            naive = edf_schedule_at_speeds(inst, cube, np.maximum(naive_speeds, 1e-9))
            naive.validate(require_deadlines=True)
        except InvalidInstanceError:
            return
        except Exception:
            return
        assert optimal.energy <= naive.energy * (1 + 1e-9)

    def test_intensity_is_max_over_intervals(self):
        inst = Instance.from_arrays([0.0, 4.0], [8.0, 4.0], deadlines=[10.0, 6.0])
        result = yds_speeds(inst)
        t1, t2, intensity = result.critical_intervals[0]
        assert intensity == pytest.approx(2.0)
        assert (t1, t2) == (4.0, 6.0)


class TestEDFAtSpeeds:
    def test_wrong_speed_vector(self):
        inst = Instance.from_arrays([0.0], [1.0], deadlines=[2.0])
        with pytest.raises(InvalidInstanceError):
            edf_schedule_at_speeds(inst, CUBE, np.array([1.0, 1.0]))
        with pytest.raises(InvalidInstanceError):
            edf_schedule_at_speeds(inst, CUBE, np.array([-1.0]))

    def test_work_conservation(self, cube):
        inst = deadline_instance(5, seed=7, laxity=4.0)
        result = yds_speeds(inst)
        schedule = edf_schedule_at_speeds(inst, cube, result.speeds)
        schedule.validate()
        assert schedule.energy > 0

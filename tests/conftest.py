"""Shared fixtures, hypothesis profiles and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import CUBE, Instance, PolynomialPower
from repro.workloads import figure1_instance, theorem8_instance

# ----------------------------------------------------------------------
# deterministic hypothesis profiles
#
# ``ci`` (the default, and what CI pins via HYPOTHESIS_PROFILE=ci) is
# derandomised with a bounded example budget, so the hypothesis-heavy suites
# are deterministic run to run; ``dev`` widens the search for local bug
# hunting (HYPOTHESIS_PROFILE=dev).  Suites that pass explicit per-test
# settings still inherit derandomisation from the loaded profile.
# ----------------------------------------------------------------------

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.register_profile("ci", max_examples=30, derandomize=True, **_COMMON)
settings.register_profile("dev", max_examples=150, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

# ----------------------------------------------------------------------
# suite-wide hang ceiling (pytest-timeout, optional)
#
# The robustness suites deliberately create hung workers and abandoned
# threads; a bug there must fail fast, not stall CI for six hours.  When the
# pytest-timeout plugin is installed (CI does; the ``test`` extra declares
# it) every test that does not set its own timeout gets a generous per-test
# ceiling.  Without the plugin the marker is inert, so local runs in minimal
# environments behave exactly as before.
# ----------------------------------------------------------------------

SUITE_TIMEOUT_SECONDS = 120


def pytest_collection_modifyitems(config, items):
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(SUITE_TIMEOUT_SECONDS))


@pytest.fixture
def cube() -> PolynomialPower:
    """The paper's ``power = speed**3`` function."""
    return CUBE


@pytest.fixture
def fig1() -> Instance:
    """The Figure 1-3 instance: r = (0, 5, 6), w = (5, 2, 1)."""
    return figure1_instance()


@pytest.fixture
def thm8() -> Instance:
    """The Theorem 8 instance: unit-work jobs released at (0, 0, 1)."""
    return theorem8_instance()


def random_instance(
    rng: np.random.Generator,
    n_max: int = 8,
    horizon: float = 10.0,
    equal_work: bool = False,
) -> Instance:
    """A small random instance for cross-checking algorithms against oracles."""
    n = int(rng.integers(1, n_max + 1))
    releases = np.sort(rng.uniform(0.0, horizon, n))
    releases[0] = 0.0
    if equal_work:
        return Instance.equal_work(releases, work=float(rng.uniform(0.5, 2.0)))
    works = rng.uniform(0.2, 3.0, n)
    return Instance.from_arrays(releases, works)

"""Tests for the Theorem 11 Partition reduction."""

from __future__ import annotations

import pytest

from repro.core import CUBE, SQUARE
from repro.exceptions import InvalidInstanceError
from repro.multi import (
    decide_partition_via_scheduling,
    exact_zero_release_makespan,
    has_perfect_partition_dp,
    partition_from_schedule,
    partition_to_scheduling,
)


class TestReductionConstruction:
    def test_instance_shape(self):
        reduction = partition_to_scheduling([3, 1, 2, 2], CUBE)
        assert reduction.instance.n_jobs == 4
        assert reduction.instance.all_released_at_zero()
        assert reduction.total == 8
        assert reduction.makespan_target == 4.0
        # energy to run total work 8 at speed 1 with alpha = 3 is 8
        assert reduction.energy_budget == pytest.approx(8.0)
        assert reduction.n_processors == 2

    def test_alpha_2_energy_budget(self):
        reduction = partition_to_scheduling([1, 1], SQUARE)
        assert reduction.energy_budget == pytest.approx(2.0)

    def test_invalid_elements(self):
        with pytest.raises(InvalidInstanceError):
            partition_to_scheduling([])
        with pytest.raises(InvalidInstanceError):
            partition_to_scheduling([1, -2])


class TestDPOracle:
    def test_yes_instances(self):
        assert has_perfect_partition_dp([3, 1, 1, 2, 2, 1])
        assert has_perfect_partition_dp([2, 2])
        assert has_perfect_partition_dp([1, 2, 3])

    def test_no_instances(self):
        assert not has_perfect_partition_dp([3, 1, 1])
        assert not has_perfect_partition_dp([1, 2, 4])
        assert not has_perfect_partition_dp([7])

    def test_invalid_elements(self):
        with pytest.raises(InvalidInstanceError):
            has_perfect_partition_dp([0, 1])


class TestDecisionViaScheduling:
    @pytest.mark.parametrize(
        "elements",
        [
            [3, 1, 1, 2, 2, 1],
            [2, 2],
            [1, 2, 3],
            [5, 5, 4, 3, 3],
            [3, 1, 1],
            [1, 2, 4],
            [6, 1, 1, 1],
            [10, 1, 2, 3],
        ],
    )
    def test_agrees_with_dp(self, elements):
        assert decide_partition_via_scheduling(elements) == has_perfect_partition_dp(elements)

    def test_makespan_gap_between_yes_and_no(self):
        yes = partition_to_scheduling([3, 1, 2, 2])      # perfect split 4 | 4
        no = partition_to_scheduling([3, 3, 3])          # best split 6 | 3
        yes_result = exact_zero_release_makespan(
            yes.instance, CUBE, 2, yes.energy_budget
        )
        no_result = exact_zero_release_makespan(no.instance, CUBE, 2, no.energy_budget)
        assert yes_result.makespan == pytest.approx(yes.makespan_target, rel=1e-9)
        assert no_result.makespan > no.makespan_target * (1 + 1e-6)


class TestPartitionExtraction:
    def test_extracts_balanced_sides(self):
        reduction = partition_to_scheduling([3, 1, 2, 2])
        result = exact_zero_release_makespan(
            reduction.instance, CUBE, 2, reduction.energy_budget
        )
        schedule = result.schedule(reduction.instance, CUBE)
        sides = partition_from_schedule(reduction, schedule)
        assert sides is not None
        first, second = sides
        assert sum(reduction.elements[i] for i in first) == pytest.approx(4.0)
        assert sorted(first + second) == [0, 1, 2, 3]

    def test_returns_none_for_unbalanced_schedule(self):
        reduction = partition_to_scheduling([3, 3, 3])
        result = exact_zero_release_makespan(
            reduction.instance, CUBE, 2, reduction.energy_budget
        )
        schedule = result.schedule(reduction.instance, CUBE)
        assert partition_from_schedule(reduction, schedule) is None

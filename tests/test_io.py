"""Tests for JSON/CSV serialisation of instances and schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, AffinePolynomialPower, Instance, PolynomialPower, TabulatedConvexPower
from repro.exceptions import InvalidInstanceError, InvalidScheduleError
from repro.io import (
    instance_from_csv,
    instance_from_dict,
    instance_to_csv,
    instance_to_dict,
    load_instance,
    load_schedule,
    machine_model_from_dict,
    machine_model_to_dict,
    power_from_dict,
    power_to_dict,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    speed_levels_from_dict,
    speed_levels_to_dict,
)
from repro.makespan import incmerge
from repro.workloads import deadline_instance, figure1_instance


class TestInstanceSerialisation:
    def test_roundtrip_dict(self):
        inst = deadline_instance(5, seed=1)
        back = instance_from_dict(instance_to_dict(inst))
        assert np.allclose(back.releases, inst.releases)
        assert np.allclose(back.works, inst.works)
        assert np.allclose(back.deadlines, inst.deadlines)
        assert back.name == inst.name

    def test_roundtrip_file(self, tmp_path):
        inst = figure1_instance()
        path = save_instance(inst, tmp_path / "fig1.json")
        back = load_instance(path)
        assert np.allclose(back.releases, [0, 5, 6])
        assert np.allclose(back.works, [5, 2, 1])

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"kind": "schedule"})

    def test_csv_export(self):
        text = instance_to_csv(figure1_instance())
        lines = text.strip().splitlines()
        assert lines[0] == "job,release,work,deadline,weight"
        assert len(lines) == 4


class TestCsvRoundTrip:
    def test_roundtrip_without_deadlines(self):
        inst = figure1_instance()
        back = instance_from_csv(instance_to_csv(inst))
        assert np.allclose(back.releases, inst.releases)
        assert np.allclose(back.works, inst.works)
        assert np.allclose(back.weights, inst.weights)
        assert all(job.deadline is None for job in back.jobs)

    def test_roundtrip_with_deadlines_and_weights(self):
        inst = deadline_instance(6, seed=3)
        back = instance_from_csv(instance_to_csv(inst), name=inst.name)
        assert np.allclose(back.releases, inst.releases)
        assert np.allclose(back.works, inst.works)
        assert np.allclose(back.deadlines, inst.deadlines)
        assert np.allclose(back.weights, inst.weights)
        assert back.name == inst.name

    def test_roundtrip_is_exact_not_approximate(self):
        # the exporter writes repr() precisely so the parse is lossless
        inst = deadline_instance(5, seed=9)
        back = instance_from_csv(instance_to_csv(inst))
        assert instance_to_csv(back) == instance_to_csv(inst)

    def test_wrong_header_rejected(self):
        with pytest.raises(InvalidInstanceError, match="header"):
            instance_from_csv("release,work\n0,1\n")

    def test_malformed_row_rejected(self):
        header = "job,release,work,deadline,weight"
        with pytest.raises(InvalidInstanceError, match="line 2"):
            instance_from_csv(f"{header}\n0,zero,1,,1\n")
        with pytest.raises(InvalidInstanceError, match="5 fields"):
            instance_from_csv(f"{header}\n0,0,1\n")


class TestPowerSerialisation:
    def test_polynomial_roundtrip(self):
        power = power_from_dict(power_to_dict(PolynomialPower(2.5)))
        assert isinstance(power, PolynomialPower)
        assert power.alpha == 2.5

    def test_affine_roundtrip(self):
        original = AffinePolynomialPower(exponent=3.0, coefficient=2.0, static=0.5)
        back = power_from_dict(power_to_dict(original))
        assert isinstance(back, AffinePolynomialPower)
        assert back.static == 0.5

    def test_unserialisable_power_rejected(self):
        with pytest.raises(InvalidScheduleError):
            power_to_dict(TabulatedConvexPower(lambda s: s**3))

    def test_unknown_type_rejected(self):
        with pytest.raises(InvalidScheduleError):
            power_from_dict({"type": "mystery"})


class TestSpeedLevelsSerialisation:
    def test_roundtrip(self):
        from repro.discrete import ATHLON64

        back = speed_levels_from_dict(speed_levels_to_dict(ATHLON64))
        assert back == ATHLON64
        assert back.name == ATHLON64.name
        assert back.levels == ATHLON64.levels

    def test_json_safe(self):
        import json

        from repro.discrete import geometric_levels

        levels = geometric_levels(4, max_speed=2.0, ratio=0.5)
        data = json.loads(json.dumps(speed_levels_to_dict(levels)))
        assert speed_levels_from_dict(data) == levels

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidInstanceError):
            speed_levels_from_dict({"kind": "instance"})
        with pytest.raises(InvalidInstanceError, match="levels"):
            speed_levels_from_dict({"kind": "speed-levels", "levels": []})

    def test_invalid_levels_keep_their_specific_error(self):
        # a structurally valid payload with bad values surfaces the
        # SpeedLevels validation error, not a generic parse failure
        with pytest.raises(InvalidInstanceError, match="positive"):
            speed_levels_from_dict(
                {"kind": "speed-levels", "name": "x", "levels": [0.0, 1.0]}
            )


class TestMachineModelSerialisation:
    @pytest.mark.parametrize(
        "preset", ["pure", "static-sleep", "athlon64", "athlon64-nearest"]
    )
    def test_preset_roundtrip(self, preset):
        from repro.sim import machine_model

        machine = machine_model(preset, alpha=2.5)
        back = machine_model_from_dict(machine_model_to_dict(machine))
        assert back == machine

    def test_file_roundtrip_feeds_the_cli(self, tmp_path):
        import json

        from repro.cli import main
        from repro.sim import machine_model

        machine = machine_model("static-sleep")
        path = tmp_path / "machine.json"
        path.write_text(
            json.dumps(machine_model_to_dict(machine)), encoding="utf-8"
        )
        assert main(
            ["sim", "--family", "mmpp", "--size", "5", "--machine", str(path),
             "--algorithms", "oa", "--json"]
        ) == 0

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidInstanceError):
            machine_model_from_dict({"kind": "speed-levels"})
        with pytest.raises(InvalidInstanceError, match="power"):
            machine_model_from_dict({"kind": "machine-model", "name": "m"})


class TestScheduleSerialisation:
    def test_roundtrip_preserves_metrics(self, tmp_path):
        inst = figure1_instance()
        schedule = incmerge(inst, CUBE, 17.0).schedule()
        path = save_schedule(schedule, tmp_path / "sched.json")
        back = load_schedule(path)
        assert back.makespan == pytest.approx(schedule.makespan)
        assert back.energy == pytest.approx(schedule.energy)
        assert back.total_flow == pytest.approx(schedule.total_flow)
        back.validate(energy_budget=17.0 * (1 + 1e-9))

    def test_dict_contains_summary(self):
        inst = figure1_instance()
        schedule = incmerge(inst, CUBE, 12.0).schedule()
        data = schedule_to_dict(schedule)
        assert data["summary"]["energy"] == pytest.approx(12.0)
        assert len(data["pieces"]) == 3

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict({"kind": "instance"})

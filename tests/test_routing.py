"""SLA-aware routing: cost models, the route() policy, and the serve wiring.

Covers the pieces the conformance suite exercises only end to end:

* :class:`repro.api.CostModel` prediction semantics and the unfitted priors
  (approximate variants priced cheaper by construction);
* the committed ``cost_models.json`` fit staying in sync with the committed
  bench trajectories (the ``tools/fit_cost_models.py --check`` contract);
* every branch of :meth:`repro.api.SolverRegistry.route` — exact-required,
  exact-fits, latency, overload, no-candidate, and the ``min_accuracy``
  floor;
* the PTAS epsilon boundary (structured :class:`InvalidInstanceError`) and
  the smallest-epsilon regression: with the accuracy knob tight enough that
  every job lands in the exhaustive phase, the PTAS must agree with the
  exact solver to machine precision;
* the serve loops' ``routing`` modes: ``off`` dispatches verbatim, ``sla``
  stamps ``routed_solver`` / ``epsilon`` / ``certificate`` into the serve
  metadata and counts reroutes.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import io
import json
import math
from pathlib import Path

import pytest

from repro.api import REGISTRY, CostModel, SolveRequest
from repro.api import verify as api_verify
from repro.core import CUBE, Instance
from repro.exceptions import InvalidInstanceError
from repro.io import request_to_dict
from repro.multi.exact import exact_zero_release_makespan
from repro.multi.ptas import ptas_zero_release_makespan
from repro.service import ROUTING_MODES, AsyncServeLoop, ServeStats, handle_request_line, serve_stream

_FIT_SCRIPT = Path(__file__).parent.parent / "tools" / "fit_cost_models.py"


def _zero_release(n: int = 10) -> Instance:
    works = [5.0, 3.0, 2.0, 2.0, 1.0, 4.0, 2.5, 1.5, 3.5, 1.0]
    return Instance.from_arrays([0.0] * n, works[:n], name="routing-test")


def _request(accuracy=None, latency_budget_ms=None, n=10,
             solver="multi-makespan-exact") -> SolveRequest:
    return SolveRequest(
        instance=_zero_release(n), power=CUBE, solver=solver, budget=80.0,
        processors=3, accuracy=accuracy, latency_budget_ms=latency_budget_ms,
    )


# ----------------------------------------------------------------------
# cost models
# ----------------------------------------------------------------------

def test_cost_model_predicts_the_power_law():
    model = CostModel(solver="x", log_a=math.log(1e-4), exponent=1.5)
    assert model.predict_ms(1) == pytest.approx(0.1)
    assert model.predict_ms(100) == pytest.approx(1e-4 * 1000 * 1e3)
    # degenerate sizes clamp to n=1 instead of predicting zero/negative work
    assert model.predict_ms(0) == model.predict_ms(1)


def test_unfitted_prior_prices_approximate_variants_cheaper():
    # solvers without a committed fit fall back to the prior; the approximate
    # prior must be strictly cheaper than the exact one at every size
    exact = CostModel(solver="e", log_a=math.log(1e-4), exponent=1.5)
    fresh = REGISTRY.cost_model("multi-flow")  # no trajectory committed
    assert fresh.source == "default"
    assert fresh.predict_ms(10) == pytest.approx(exact.predict_ms(10))


def test_fitted_models_load_from_the_committed_file():
    model = REGISTRY.cost_model("multi-makespan-exact")
    assert model.source != "default", (
        "src/repro/api/cost_models.json should carry a fitted row for "
        "multi-makespan-exact (run benchmarks/bench_routing.py then "
        "tools/fit_cost_models.py)"
    )
    # the exhaustive solver's fitted cost must dwarf the PTAS's at n=10 —
    # this gap is what makes the router shed to the variant under pressure
    ptas = REGISTRY.cost_model("multi-makespan-ptas")
    assert model.predict_ms(10) > 5 * ptas.predict_ms(10)


def test_committed_cost_models_match_the_committed_trajectories():
    """tools/fit_cost_models.py --check: the fit cannot silently drift."""
    spec = importlib.util.spec_from_file_location("fit_cost_models", _FIT_SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--check"]) == 0


def test_fit_power_law_recovers_a_planted_law():
    spec = importlib.util.spec_from_file_location("fit_cost_models", _FIT_SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # t = 2e-4 * n^2 seconds, expressed in the ms cells the bench writes
    cells = [(n, 2e-4 * n**2 * 1e3, "BENCH_test.json") for n in (4, 8, 16, 32)]
    fit = module.fit_power_law(cells)
    assert fit["exponent"] == pytest.approx(2.0, abs=1e-6)
    assert math.exp(fit["log_a"]) == pytest.approx(2e-4, rel=1e-6)
    # single-cell fallback anchors the default exponent through the point
    single = module.fit_power_law(cells[:1])
    assert single["exponent"] == module.DEFAULT_EXPONENT
    t4 = math.exp(single["log_a"]) * 4**single["exponent"]
    assert t4 == pytest.approx(2e-4 * 16, rel=1e-6)


# ----------------------------------------------------------------------
# route() policy
# ----------------------------------------------------------------------

def test_route_without_accuracy_is_exact_required():
    decision = REGISTRY.route(_request())
    assert decision.solver == "multi-makespan-exact"
    assert decision.reason == "exact-required"
    assert decision.exact


def test_route_prefers_exact_when_it_fits_the_budget():
    generous = REGISTRY.cost_model("multi-makespan-exact").predict_ms(10) * 10
    decision = REGISTRY.route(_request(accuracy=0.5, latency_budget_ms=generous))
    assert decision.solver == "multi-makespan-exact"
    assert decision.reason == "exact-fits"


def test_route_degrades_to_the_variant_under_a_tight_budget():
    exact_ms = REGISTRY.cost_model("multi-makespan-exact").predict_ms(10)
    ptas_ms = REGISTRY.cost_model("multi-makespan-ptas").predict_ms(10)
    assert ptas_ms < exact_ms
    budget = (ptas_ms + exact_ms) / 2  # fits the ptas, not the exact
    decision = REGISTRY.route(_request(accuracy=0.5, latency_budget_ms=budget))
    assert decision.solver == "multi-makespan-ptas"
    assert decision.reason == "latency"
    assert not decision.exact


def test_route_overload_picks_the_cheapest_candidate():
    decision = REGISTRY.route(_request(accuracy=0.5, latency_budget_ms=1e-9))
    assert decision.reason == "overload"
    assert decision.solver == "multi-makespan-ptas"


def test_route_respects_the_min_accuracy_floor():
    floor = REGISTRY.capabilities("multi-makespan-ptas").min_accuracy
    decision = REGISTRY.route(
        _request(accuracy=floor / 2, latency_budget_ms=1e-9)
    )
    # the only variant is filtered out; the exact solver survives as the
    # lone candidate even though nothing fits the budget
    assert decision.solver == "multi-makespan-exact"
    assert decision.exact


def test_route_budget_argument_overrides_the_request_field():
    request = _request(accuracy=0.5, latency_budget_ms=1e6)
    decision = REGISTRY.route(request, latency_budget_ms=1e-9)
    assert decision.reason == "overload"
    assert decision.solver == "multi-makespan-ptas"


def test_routed_answer_verifies_against_the_original_request():
    request = _request(accuracy=0.5, latency_budget_ms=1e-9)
    decision = REGISTRY.route(request)
    result = REGISTRY.run(dataclasses.replace(request, solver=decision.solver))
    assert result.approximation is not None
    assert result.approximation["epsilon"] <= 0.5
    report = api_verify(request, result)
    assert report.ok, [f"{f.check}:{f.code}" for f in report.errors]


# ----------------------------------------------------------------------
# PTAS epsilon boundary + smallest-epsilon regression (satellite b)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("epsilon", [0.0, -0.1, 1.5, float("nan"), float("inf")])
def test_ptas_rejects_out_of_range_epsilon(epsilon):
    with pytest.raises(InvalidInstanceError):
        ptas_zero_release_makespan(
            _zero_release(5), CUBE, n_processors=2, energy_budget=20.0,
            epsilon=epsilon,
        )


def test_ptas_at_smallest_epsilon_agrees_with_the_exact_solver():
    """Accuracy so tight every job is assigned exhaustively -> exact answer.

    ``k = min(n, max_exact_jobs, ceil(m / epsilon))``: epsilon small enough
    pushes k to n, phase 2 places nothing greedily, and the PTAS value must
    match ``exact_zero_release_makespan`` to machine precision — pinning the
    smallest-epsilon boundary against regression.
    """
    instance = _zero_release(7)
    exact = exact_zero_release_makespan(
        instance, CUBE, n_processors=3, energy_budget=60.0
    )
    approx = ptas_zero_release_makespan(
        instance, CUBE, n_processors=3, energy_budget=60.0,
        epsilon=1e-6, max_exact_jobs=instance.n_jobs,
    )
    assert approx.n_exact_jobs == instance.n_jobs
    assert approx.makespan == pytest.approx(exact.makespan, rel=1e-12)


# ----------------------------------------------------------------------
# serve wiring
# ----------------------------------------------------------------------

def _line(request: SolveRequest, request_id: str = "t1") -> str:
    return json.dumps({**request_to_dict(request), "id": request_id})


def test_handle_request_line_rejects_unknown_routing_mode():
    with pytest.raises(InvalidInstanceError):
        handle_request_line("{}", routing="bogus")
    with pytest.raises(InvalidInstanceError):
        AsyncServeLoop(routing="bogus")
    assert ROUTING_MODES == ("off", "sla")


def test_off_mode_never_routes_and_stamps_no_routing_metadata():
    stats = ServeStats()
    response = handle_request_line(
        _line(_request(accuracy=0.5, latency_budget_ms=1e-9)),
        timing=False, stats=stats, routing="off",
    )
    assert response["result"]["solver"] == "multi-makespan-exact"
    assert "routed_solver" not in response["serve"]
    assert stats.routed == 0


def test_sla_mode_routes_and_stamps_certificate_metadata():
    stats = ServeStats()
    response = handle_request_line(
        _line(_request(accuracy=0.5, latency_budget_ms=1e-9)),
        timing=False, stats=stats, routing="sla",
    )
    assert response["result"]["solver"] == "multi-makespan-ptas"
    serve = response["serve"]
    assert serve["routed_solver"] == "multi-makespan-ptas"
    assert serve["certificate"] == "error-bound"
    assert 0.0 <= serve["epsilon"] <= 0.5
    assert stats.routed == 1
    assert "1 routed" in stats.summary()


def test_sla_mode_leaves_accuracy_free_requests_alone():
    stats = ServeStats()
    response = handle_request_line(
        _line(_request()), timing=False, stats=stats, routing="sla",
    )
    assert response["result"]["solver"] == "multi-makespan-exact"
    assert "routed_solver" not in response["serve"]
    assert stats.routed == 0


def test_sla_mode_verifies_and_caches_under_the_routed_request():
    from repro.cache import ResultCache

    cache = ResultCache()
    stats = ServeStats()
    line = _line(_request(accuracy=0.5, latency_budget_ms=1e-9))
    first = handle_request_line(
        line, cache=cache, verify=True, timing=False, stats=stats, routing="sla",
    )
    assert first["serve"]["verified"] is True
    assert first["serve"]["cache"] == "miss"
    second = handle_request_line(
        line, cache=cache, verify=True, timing=False, stats=stats, routing="sla",
    )
    assert second["serve"]["cache"] == "hit"
    # a cache hit is still a routed response: the metadata survives
    assert second["serve"]["routed_solver"] == "multi-makespan-ptas"
    assert second["result"] == first["result"]


def test_serve_stream_matches_the_routed_golden():
    golden = Path(__file__).parent / "golden" / "serve_routed_transcript.txt"
    instance = Instance.from_arrays(
        [0.0] * 10,
        [5.0, 3.0, 2.0, 2.0, 1.0, 4.0, 2.5, 1.5, 3.5, 1.0],
        name="routed-golden",
    )
    routed = json.dumps(request_to_dict(SolveRequest(
        instance=instance, power=CUBE, solver="multi-makespan-exact",
        budget=80.0, processors=3, accuracy=0.5, latency_budget_ms=1.0,
    )))
    exact = json.dumps(request_to_dict(SolveRequest(
        instance=instance, power=CUBE, solver="multi-makespan-exact",
        budget=80.0, processors=3,
    )))
    from repro.cache import ResultCache

    out = io.StringIO()
    serve_stream(
        iter([routed + "\n", exact + "\n", "{not json\n"]),
        out, cache=ResultCache(), timing=False, routing="sla",
    )
    assert out.getvalue() == golden.read_text(encoding="utf-8")


def test_async_loop_routes_under_queue_pressure():
    import asyncio

    loop = AsyncServeLoop(cache=None, timing=False, routing="sla")
    lines = [
        _line(_request(accuracy=0.5, latency_budget_ms=1e-9), f"q{i}") + "\n"
        for i in range(3)
    ]
    out = io.StringIO()
    asyncio.run(loop.run_stream(iter(lines), out))
    responses = [json.loads(l) for l in out.getvalue().splitlines()]
    assert [r["result"]["solver"] for r in responses] == ["multi-makespan-ptas"] * 3
    assert all(r["serve"]["certificate"] == "error-bound" for r in responses)
    snap = loop.stats_snapshot()
    assert snap["routed"] == 3


def test_truncated_compete_sweep_declares_its_stride():
    from repro.online.compete import competitive_sweep

    kwargs = dict(
        algorithms=["avr"], alphas=[2.0], families=["deadline"],
        sizes=[5], seeds=4,
    )
    full = competitive_sweep(**kwargs)
    trunc = competitive_sweep(**kwargs, stride=2)
    # the full grid's payload shape is untouched (byte-pinned goldens)
    assert "stride" not in full["parameters"]
    # truncation keeps every stride-th cell and says so, never silently
    assert trunc["parameters"]["stride"] == 2
    assert trunc["parameters"]["grid_cells"] == 2
    assert trunc["parameters"]["full_grid_cells"] == 4
    assert [c["seed"] for c in trunc["cells"]] == [0, 2]
    # surviving cells are bitwise the full sweep's: same instances, same math
    full_by_seed = {c["seed"]: c for c in full["cells"]}
    for cell in trunc["cells"]:
        assert cell == full_by_seed[cell["seed"]]
    with pytest.raises(InvalidInstanceError):
        competitive_sweep(**kwargs, stride=0)


def test_async_loop_snapshot_hides_routed_in_off_mode():
    import asyncio

    loop = AsyncServeLoop(cache=None, timing=False, routing="off")
    out = io.StringIO()
    asyncio.run(loop.run_stream(iter([_line(_request()) + "\n"]), out))
    assert "routed" not in loop.stats_snapshot()

"""Tests for the convex flow solver (laptop and server forms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance, PolynomialPower
from repro.exceptions import BudgetError, InfeasibleError
from repro.flow import convex_flow_laptop, convex_flow_server


class TestConvexFlowLaptop:
    def test_energy_budget_respected_and_spent(self, cube):
        inst = Instance.equal_work([0.0, 1.0, 3.0], work=1.0)
        for energy in [1.0, 4.0, 12.0]:
            result = convex_flow_laptop(inst, cube, energy)
            assert result.energy <= energy * (1 + 1e-6)
            # the optimum always uses (essentially) all the energy
            assert result.energy == pytest.approx(energy, rel=1e-4)

    def test_flow_decreasing_in_energy(self, cube):
        inst = Instance.equal_work([0.0, 0.5, 1.5, 4.0], work=1.0)
        budgets = np.linspace(0.5, 20.0, 12)
        flows = [convex_flow_laptop(inst, cube, float(e)).flow for e in budgets]
        assert all(b <= a + 1e-6 for a, b in zip(flows, flows[1:]))

    def test_single_job_closed_form(self, cube):
        inst = Instance.from_arrays([0.0], [2.0])
        result = convex_flow_laptop(inst, cube, 8.0)
        # single job: all energy on it -> speed 2, flow 1
        assert result.flow == pytest.approx(1.0, rel=1e-6)
        assert result.speeds[0] == pytest.approx(2.0, rel=1e-6)

    def test_two_identical_jobs_zero_release(self, cube):
        # symmetric instance with a known optimality condition: speeds satisfy
        # sigma_1^3 = 2 * sigma_2^3 (Theorem 1 with n = 2)
        inst = Instance.equal_work([0.0, 0.0], work=1.0)
        result = convex_flow_laptop(inst, cube, 5.0)
        s1, s2 = result.speeds
        assert s1**3 == pytest.approx(2 * s2**3, rel=1e-3)
        assert result.energy == pytest.approx(5.0, rel=1e-6)

    def test_schedule_valid(self, cube):
        inst = Instance.equal_work([0.0, 0.5, 2.0], work=1.0)
        result = convex_flow_laptop(inst, cube, 6.0)
        sched = result.schedule(inst, cube)
        sched.validate(energy_budget=6.0 * (1 + 1e-5))
        assert sched.total_flow == pytest.approx(result.flow, rel=1e-6)

    def test_unequal_work_release_order(self, cube):
        inst = Instance.from_arrays([0.0, 1.0, 2.0], [2.0, 1.0, 0.5])
        result = convex_flow_laptop(inst, cube, 10.0)
        assert result.energy <= 10.0 * (1 + 1e-6)
        sched = result.schedule(inst, cube)
        sched.validate()

    def test_other_alpha(self):
        power = PolynomialPower(2.0)
        inst = Instance.equal_work([0.0, 1.0], work=1.0)
        result = convex_flow_laptop(inst, power, 4.0)
        assert result.energy == pytest.approx(4.0, rel=1e-5)

    def test_invalid_budget(self, cube):
        inst = Instance.equal_work([0.0, 1.0], work=1.0)
        with pytest.raises(BudgetError):
            convex_flow_laptop(inst, cube, 0.0)


class TestConvexFlowServer:
    def test_roundtrip(self, cube):
        inst = Instance.equal_work([0.0, 1.0, 2.5], work=1.0)
        laptop = convex_flow_laptop(inst, cube, 5.0)
        server = convex_flow_server(inst, cube, laptop.flow * 1.0000001)
        assert server.energy == pytest.approx(5.0, rel=1e-3)

    def test_infeasible_flow_target(self, cube):
        inst = Instance.equal_work([0.0, 1.0], work=1.0)
        with pytest.raises(InfeasibleError):
            convex_flow_server(inst, cube, 0.0)

    def test_energy_increases_as_target_tightens(self, cube):
        inst = Instance.equal_work([0.0, 0.5, 1.5], work=1.0)
        targets = [8.0, 5.0, 3.0]
        energies = [convex_flow_server(inst, cube, t).energy for t in targets]
        assert energies[0] < energies[1] < energies[2]

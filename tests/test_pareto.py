"""Tests for the generic trade-off curve representation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CurveSegment, TradeoffCurve
from repro.exceptions import BudgetError, InfeasibleError, InvalidInstanceError


def make_curve() -> TradeoffCurve:
    """A simple two-segment curve: value = 10/E for E in [1, 5], 2 + 40/E**2 ... kept monotone."""
    seg1 = CurveSegment(
        energy_lo=1.0,
        energy_hi=5.0,
        value=lambda e: 10.0 / e,
        derivative=lambda e: -10.0 / e**2,
        second_derivative=lambda e: 20.0 / e**3,
        label="cheap",
    )
    seg2 = CurveSegment(
        energy_lo=5.0,
        energy_hi=math.inf,
        value=lambda e: 1.0 + 5.0 / e,
        label="expensive",
    )
    return TradeoffCurve([seg1, seg2], metric_name="demo")


class TestCurveSegment:
    def test_contains(self):
        seg = CurveSegment(1.0, 2.0, value=lambda e: 1.0 / e)
        assert seg.contains(1.5)
        assert not seg.contains(3.0)

    def test_empty_range_rejected(self):
        with pytest.raises(InvalidInstanceError):
            CurveSegment(2.0, 2.0, value=lambda e: e)

    def test_numeric_derivative_fallback(self):
        seg = CurveSegment(1.0, 10.0, value=lambda e: 10.0 / e)
        assert seg.derivative_at(2.0) == pytest.approx(-2.5, rel=1e-4)
        assert seg.second_derivative_at(2.0) == pytest.approx(2.5, rel=1e-2)

    def test_analytic_derivative_used(self):
        seg = CurveSegment(
            1.0, 10.0, value=lambda e: 10.0 / e, derivative=lambda e: -10.0 / e**2
        )
        assert seg.derivative_at(2.0) == pytest.approx(-2.5, rel=1e-12)


class TestTradeoffCurve:
    def test_basic_queries(self):
        curve = make_curve()
        assert curve.min_energy == 1.0
        assert math.isinf(curve.max_energy)
        assert curve.breakpoints == [5.0]
        assert curve.value(2.0) == pytest.approx(5.0)
        assert curve.value(10.0) == pytest.approx(1.5)

    def test_segments_must_tile(self):
        seg1 = CurveSegment(1.0, 2.0, value=lambda e: 1.0 / e)
        seg2 = CurveSegment(3.0, 4.0, value=lambda e: 0.1 / e)
        with pytest.raises(InvalidInstanceError):
            TradeoffCurve([seg1, seg2])

    def test_non_monotone_rejected(self):
        rising = CurveSegment(1.0, 2.0, value=lambda e: e)
        with pytest.raises(InvalidInstanceError):
            TradeoffCurve([rising])

    def test_out_of_range_budget(self):
        curve = make_curve()
        with pytest.raises(BudgetError):
            curve.value(0.5)

    def test_sampling(self):
        curve = make_curve()
        grid = np.array([1.5, 2.5, 6.0])
        values = curve.sample(grid)
        assert values.shape == (3,)
        assert np.all(np.diff(values) < 0)
        d = curve.sample_derivative(np.array([2.0, 3.0]))
        assert np.all(d < 0)
        dd = curve.sample_second_derivative(np.array([2.0, 3.0]))
        assert np.all(dd > 0)

    def test_energy_grid(self):
        curve = make_curve()
        grid = curve.energy_grid(10, max_energy=20.0)
        assert grid.shape == (10,)
        assert grid[0] >= curve.min_energy
        assert grid[-1] == pytest.approx(20.0)

    def test_energy_for_value_inverts(self):
        curve = make_curve()
        for energy in [1.5, 3.0, 8.0]:
            value = curve.value(energy)
            recovered = curve.energy_for_value(value)
            assert recovered == pytest.approx(energy, rel=1e-9)

    def test_energy_for_value_infeasible(self):
        curve = TradeoffCurve(
            [CurveSegment(1.0, 5.0, value=lambda e: 10.0 / e)], metric_name="m"
        )
        with pytest.raises(InfeasibleError):
            curve.energy_for_value(0.1)

    def test_energy_for_easy_target_returns_min_energy(self):
        curve = make_curve()
        assert curve.energy_for_value(1000.0) == pytest.approx(curve.min_energy)

    def test_dominates_point(self):
        curve = make_curve()
        assert curve.dominates_point(2.0, 6.0)       # curve achieves 5.0 at E=2
        assert not curve.dominates_point(2.0, 4.0)   # better than the optimum: not dominated
        assert not curve.dominates_point(0.5, 100.0)  # below the curve's energy range

    def test_is_convex(self):
        curve = make_curve()
        assert curve.is_convex()

"""Registry-driven conformance suite: every registered solver is born tested.

This suite never names a solver explicitly.  It iterates the central registry
(:data:`repro.api.REGISTRY`), derives a hypothesis request strategy for each
solver *from its own capability metadata* (machine model, budget kind,
equal-work / deadline preconditions), runs solve -> verify end to end, and
requires the verification report — structural checks plus the solver's
declared optimality certificates — to pass on every generated instance.

Completeness is enforced alongside:

* every registered solver must declare at least one certificate kind, and
  every declared kind must have a checker in :data:`repro.verify.CHECKERS`
  (deregistering certificate support for any solver fails here);
* the strategy derivation must cover every registered solver's capability
  shape, so a newly registered solver either inherits conformance coverage
  automatically or fails the suite until its metadata is derivable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import REGISTRY, SolveRequest, SolverCapabilities
from repro.api import verify as api_verify
from repro.core import Instance, PolynomialPower, Schedule
from repro.verify import CHECKERS

pytestmark = pytest.mark.slow

#: Capability axes the strategy derivation below understands.  A solver whose
#: metadata steps outside these shapes fails test_strategy_covers_every_solver
#: until the derivation (and hence its conformance coverage) is extended.
_KNOWN_BUDGET_KINDS = {"energy", "metric", "none"}
_KNOWN_OBJECTIVES = {"makespan", "flow", "energy"}


def _derive_instance(draw, caps: SolverCapabilities) -> Instance:
    """An instance satisfying the solver's declared preconditions."""
    n = draw(st.integers(min_value=1, max_value=6))
    if caps.needs_zero_release:
        releases = [0.0] * n
    else:
        releases = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=8.0),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        releases[0] = 0.0
    if caps.needs_equal_work:
        works = [draw(st.floats(min_value=0.5, max_value=2.0))] * n
    else:
        works = draw(
            st.lists(
                st.floats(min_value=0.2, max_value=2.5), min_size=n, max_size=n
            )
        )
    deadlines = None
    if caps.needs_deadlines:
        laxities = draw(
            st.lists(
                st.floats(min_value=0.5, max_value=5.0), min_size=n, max_size=n
            )
        )
        deadlines = [r + l for r, l in zip(releases, laxities)]
    return Instance.from_arrays(releases, works, deadlines=deadlines)


def _derive_budget(draw, caps: SolverCapabilities, instance, power) -> float | None:
    """A feasible budget for the solver's declared budget kind."""
    if caps.budget_kind == "none":
        return None
    if caps.budget_kind == "energy":
        # any positive energy budget is feasible (speeds scale down freely)
        return draw(st.floats(min_value=1.0, max_value=30.0))
    # metric target: anchor on the always-achievable unit-speed schedule
    unit = Schedule.from_speeds(instance, power, np.ones(instance.n_jobs))
    if caps.objective == "makespan":
        # stay strictly above the last release, where every target is feasible
        last = instance.last_release
        slack = max(unit.makespan - last, 1e-2)
        return last + slack * draw(st.floats(min_value=0.4, max_value=2.0))
    return unit.total_flow * draw(st.floats(min_value=0.5, max_value=2.0))


def _derive_options(caps: SolverCapabilities, instance, power) -> dict:
    if caps.mode != "frontier":
        return {}
    unit_energy = power.power(1.0) * instance.total_work
    return {
        "min_energy": unit_energy,
        "max_energy": 3.0 * unit_energy,
        "points": 6,
    }


@st.composite
def conformance_requests(draw, caps: SolverCapabilities) -> SolveRequest:
    """A solve request derived purely from the solver's capability metadata."""
    if caps.budget_kind not in _KNOWN_BUDGET_KINDS:
        raise NotImplementedError(
            f"no strategy derivation for budget kind {caps.budget_kind!r}"
        )
    if caps.objective not in _KNOWN_OBJECTIVES:
        raise NotImplementedError(
            f"no strategy derivation for objective {caps.objective!r}"
        )
    power = PolynomialPower(draw(st.floats(min_value=1.5, max_value=3.5)))
    instance = _derive_instance(draw, caps)
    budget = _derive_budget(draw, caps, instance, power)
    processors = (
        draw(st.integers(min_value=2, max_value=3)) if caps.multiprocessor else 1
    )
    return SolveRequest(
        instance=instance,
        power=power,
        solver=caps.name,
        budget=budget,
        processors=processors,
        options=_derive_options(caps, instance, power),
        # SLA knobs: accuracy loose enough that every approximate variant can
        # either certify within it or escalate to its exact path
        accuracy=draw(
            st.one_of(st.none(), st.floats(min_value=0.5, max_value=1.0))
        ),
        latency_budget_ms=draw(
            st.one_of(st.none(), st.floats(min_value=50.0, max_value=500.0))
        ),
    )


# ----------------------------------------------------------------------
# completeness: the registry, the certificate catalogue and the strategy
# derivation must stay mutually closed
# ----------------------------------------------------------------------

def test_registry_has_the_full_solver_matrix():
    assert len(REGISTRY) >= 15


@pytest.mark.parametrize("name", REGISTRY.names())
def test_every_solver_declares_known_certificates(name):
    caps = REGISTRY.capabilities(name)
    assert caps.certificates, (
        f"solver {name!r} registers no certificate kinds; every solver must "
        "declare how its results are verified (see repro.verify.CHECKERS)"
    )
    unknown = set(caps.certificates) - set(CHECKERS)
    assert not unknown, (
        f"solver {name!r} declares certificate kinds {sorted(unknown)} that "
        "have no registered checker"
    )


def test_every_certificate_kind_is_used_by_some_solver():
    declared = {
        kind for _, caps in REGISTRY.items() for kind in caps.certificates
    }
    unused = set(CHECKERS) - declared
    assert not unused, f"certificate checkers nobody declares: {sorted(unused)}"


@pytest.mark.parametrize("name", REGISTRY.names())
@settings(max_examples=1, deadline=None)
@given(data=st.data())
def test_strategy_covers_every_solver(name, data):
    # raises NotImplementedError for capability shapes the derivation cannot
    # handle — the "solver lacks conformance coverage" failure mode
    request = data.draw(conformance_requests(REGISTRY.capabilities(name)))
    assert request.solver == name


# ----------------------------------------------------------------------
# the conformance run itself: solve -> verify for every registered solver
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", REGISTRY.names())
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_solve_then_verify_conformance(name, data):
    caps = REGISTRY.capabilities(name)
    request = data.draw(conformance_requests(caps))
    result = repro.solve(request)
    assert result.ok, (
        f"solver {name!r} failed on a request derived from its own "
        f"capability metadata: [{result.error_code}] {result.error_message}"
    )
    report = api_verify(request, result)
    assert report.ok, (
        f"solver {name!r} produced a result that fails verification: "
        + "; ".join(f"{f.check}:{f.code}: {f.message}" for f in report.errors)
    )
    # the semantic certificates the solver declared must actually have run
    assert set(caps.certificates) <= set(report.checks)


# ----------------------------------------------------------------------
# SLA routing conformance: routed answers are exact or certified
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", REGISTRY.names())
@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_route_answers_are_exact_or_certified(name, data):
    """route() never trades accuracy away silently.

    Whatever solver the router picks, the answer must verify against the
    *original* request — including the ``error-bound`` certificate and the
    requested-accuracy check when the answer is approximate.
    """
    import dataclasses

    caps = REGISTRY.capabilities(name)
    request = data.draw(conformance_requests(caps))
    decision = REGISTRY.route(request)
    if request.accuracy is None:
        # exact-by-default: no accuracy knob means no rerouting at all, even
        # when the request names an approximate solver explicitly
        assert decision.solver == name
        assert decision.reason == "exact-required"
        assert decision.exact == (not caps.approximate)
        return
    routed = dataclasses.replace(request, solver=decision.solver)
    result = repro.solve(routed)
    assert result.ok, (
        f"routed solver {decision.solver!r} (for {name!r}) failed: "
        f"[{result.error_code}] {result.error_message}"
    )
    if not decision.exact:
        assert result.approximation is not None, (
            f"approximate routed solver {decision.solver!r} returned no "
            "approximation metadata"
        )
    report = api_verify(request, result)
    assert report.ok, (
        f"routed answer from {decision.solver!r} fails verification against "
        f"the original {name!r} request: "
        + "; ".join(f"{f.check}:{f.code}: {f.message}" for f in report.errors)
    )


def test_route_falls_back_to_exact_below_min_accuracy():
    """An accuracy tighter than every variant's floor keeps the exact solver."""
    instance = Instance.from_arrays([0.0] * 5, [5.0, 3.0, 2.0, 2.0, 1.0])
    request = SolveRequest(
        instance=instance,
        power=PolynomialPower(3.0),
        solver="multi-makespan-exact",
        budget=20.0,
        processors=2,
        accuracy=0.01,  # below multi-makespan-ptas's min_accuracy
        latency_budget_ms=0.001,  # pressure that would otherwise shed to ptas
    )
    decision = REGISTRY.route(request)
    assert decision.solver == "multi-makespan-exact"
    assert decision.exact

"""Tests for the convex-programming makespan reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import BudgetError
from repro.makespan import convex_laptop_makespan, incmerge


class TestConvexReference:
    def test_fig1_agreement(self, fig1, cube):
        for energy in [3.0, 6.0, 8.0, 12.0, 17.0, 21.0, 40.0]:
            reference = convex_laptop_makespan(fig1, cube, energy)
            assert reference.makespan == pytest.approx(
                incmerge(fig1, cube, energy).makespan, rel=1e-5
            )
            assert reference.energy <= energy * (1 + 1e-6)

    def test_random_agreement(self, cube):
        rng = np.random.default_rng(13)
        for _ in range(8):
            n = int(rng.integers(2, 7))
            releases = np.sort(rng.uniform(0, 8, n))
            releases[0] = 0.0
            works = rng.uniform(0.3, 2.5, n)
            inst = Instance.from_arrays(releases, works)
            energy = float(rng.uniform(1.0, 30.0))
            reference = convex_laptop_makespan(inst, cube, energy)
            assert reference.makespan == pytest.approx(
                incmerge(inst, cube, energy).makespan, rel=1e-4
            )

    def test_schedule_feasible(self, fig1, cube):
        reference = convex_laptop_makespan(fig1, cube, 12.0)
        sched = reference.schedule(fig1, cube)
        sched.validate(energy_budget=12.0 * (1 + 1e-5))

    def test_speeds_and_durations_consistent(self, fig1, cube):
        reference = convex_laptop_makespan(fig1, cube, 17.0)
        assert np.allclose(reference.speeds * reference.durations, fig1.works)

    def test_invalid_budget(self, fig1, cube):
        with pytest.raises(BudgetError):
            convex_laptop_makespan(fig1, cube, 0.0)

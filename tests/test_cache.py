"""Tests for the content-addressed result cache (:mod:`repro.cache`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import REGISTRY, SolveRequest, SolverCapabilities, ProblemSpec
from repro.api import solve as api_solve
from repro.api import verify as api_verify
from repro.api.registry import SolverRegistry
from repro.cache import (
    ResultCache,
    capability_fingerprint,
    instance_digest,
    request_cache_key,
)
from repro.core import CUBE, Instance, PolynomialPower, Schedule
from repro.workloads import poisson_instance

BATCHABLE = REGISTRY.find(batchable=True)


def _request_for(name: str) -> SolveRequest:
    """A deterministic feasible request for any batchable registry solver."""
    caps = REGISTRY.capabilities(name)
    releases = [0.0, 0.5, 1.5, 2.0]
    works = [1.0] * 4 if caps.needs_equal_work else [1.2, 0.7, 1.0, 0.9]
    deadlines = [r + 2.0 for r in releases] if caps.needs_deadlines else None
    instance = Instance.from_arrays(releases, works, deadlines=deadlines)
    power = PolynomialPower(3.0)
    if caps.budget_kind == "energy":
        budget = 20.0
    elif caps.budget_kind == "metric":
        unit = Schedule.from_speeds(instance, power, np.ones(instance.n_jobs))
        budget = (
            unit.makespan * 1.5
            if caps.objective == "makespan"
            else unit.total_flow * 1.5
        )
    else:
        budget = None
    return SolveRequest(instance=instance, power=power, solver=name, budget=budget)


class TestCacheKey:
    def test_name_independent_content_addressing(self):
        a = poisson_instance(6, seed=0, name="alpha")
        b = poisson_instance(6, seed=0, name="beta")
        assert instance_digest(a) == instance_digest(b)
        key_a = request_cache_key(
            SolveRequest(instance=a, power=CUBE, solver="laptop", budget=10.0)
        )
        key_b = request_cache_key(
            SolveRequest(instance=b, power=CUBE, solver="laptop", budget=10.0)
        )
        assert key_a == key_b

    @pytest.mark.parametrize(
        "mutation",
        [
            dict(budget=11.0),
            dict(solver="server"),
            dict(power=PolynomialPower(2.0)),
            dict(options={"x": 1}),
        ],
    )
    def test_any_request_field_changes_the_key(self, mutation):
        base = dict(
            instance=poisson_instance(6, seed=0), power=CUBE,
            solver="laptop", budget=10.0,
        )
        key = request_cache_key(SolveRequest(**base))
        assert request_cache_key(SolveRequest(**{**base, **mutation})) != key

    def test_instance_content_changes_the_key(self):
        base = poisson_instance(6, seed=0)
        other = poisson_instance(6, seed=1)
        req = lambda inst: SolveRequest(
            instance=inst, power=CUBE, solver="laptop", budget=10.0
        )
        assert request_cache_key(req(base)) != request_cache_key(req(other))

    def test_spec_requests_resolve_to_the_same_key_as_named(self):
        inst = poisson_instance(6, seed=0)
        named = SolveRequest(instance=inst, power=CUBE, solver="laptop", budget=10.0)
        by_spec = SolveRequest(
            instance=inst, power=CUBE,
            spec=ProblemSpec(objective="makespan", mode="laptop"), budget=10.0,
        )
        assert request_cache_key(named) == request_cache_key(by_spec)


class TestHitsAreByteIdentical:
    @pytest.mark.parametrize("name", BATCHABLE)
    def test_hit_equals_fresh_solve_for_every_batchable_solver(self, name, tmp_path):
        request = _request_for(name)
        fresh = api_solve(request)
        assert fresh.ok, f"{name}: [{fresh.error_code}] {fresh.error_message}"

        cache = ResultCache(directory=tmp_path / "store")
        assert cache.get(request) is None
        cache.put(request, fresh)
        hit = cache.get(request)
        assert hit is not None
        assert hit.solver == fresh.solver
        assert hit.value == fresh.value
        assert hit.energy == fresh.energy
        assert hit.speeds.tobytes() == fresh.speeds.tobytes()

        # a disk-only reader (fresh cache over the same store) is identical too
        cold = ResultCache(directory=tmp_path / "store")
        disk_hit = cold.get(request)
        assert disk_hit is not None
        assert disk_hit.value == fresh.value
        assert disk_hit.speeds.tobytes() == fresh.speeds.tobytes()
        assert cold.stats().disk_hits == 1

    @pytest.mark.parametrize("name", BATCHABLE)
    def test_hit_still_passes_verification_as_data(self, name):
        # PR 4's premise: a cached envelope is certificate-checkable
        request = _request_for(name)
        cache = ResultCache()
        cache.put(request, api_solve(request))
        hit = cache.get(request)
        report = api_verify(request, hit)
        assert report.ok, report.error_summary()


class TestStatsAndLru:
    def test_miss_then_hit_stats(self):
        request = _request_for("laptop")
        cache = ResultCache()
        assert cache.get(request) is None
        cache.put(request, api_solve(request))
        assert cache.get(request) is not None
        s = cache.stats()
        assert (s.gets, s.misses, s.hits, s.memory_hits, s.puts) == (2, 1, 1, 1, 1)
        assert s.hit_rate == pytest.approx(0.5)

    def test_error_results_are_never_cached(self):
        request = SolveRequest(
            instance=poisson_instance(4, seed=0), power=CUBE, solver="laptop"
        )  # no budget -> structured error result
        result = api_solve(request)
        assert not result.ok
        cache = ResultCache()
        assert cache.put(request, result) is None
        assert cache.stats().puts == 0

    def test_unknown_solver_is_an_uncacheable_miss_not_a_crash(self):
        request = SolveRequest(
            instance=poisson_instance(4, seed=0), power=CUBE,
            solver="not-a-solver", budget=5.0,
        )
        cache = ResultCache()
        assert cache.get(request) is None
        assert cache.stats().uncacheable == 1

    def test_lru_front_is_bounded_and_evicts_oldest(self, tmp_path):
        cache = ResultCache(directory=tmp_path, max_memory_entries=2)
        requests = []
        for budget in (10.0, 11.0, 12.0):
            request = SolveRequest(
                instance=poisson_instance(4, seed=0), power=CUBE,
                solver="laptop", budget=budget,
            )
            cache.put(request, api_solve(request))
            requests.append(request)
        assert len(cache) == 2
        # the evicted entry is still served from disk, then re-promoted
        assert cache.get(requests[0]) is not None
        assert cache.stats().disk_hits == 1


class TestInvalidation:
    def _registry_with_fake(self, certificates=("budget-tightness",)):
        registry = SolverRegistry()
        caps = SolverCapabilities(
            name="fake",
            spec=ProblemSpec(objective="makespan", mode="laptop"),
            summary="test solver",
            budget_kind="energy",
            batchable=True,
            certificates=certificates,
        )
        registry.register(caps, lambda request: (1.0, 2.0, None, {}))
        return registry

    def test_capability_fingerprint_change_invalidates(self, tmp_path):
        request = SolveRequest(
            instance=poisson_instance(4, seed=0), power=CUBE,
            solver="fake", budget=5.0,
        )
        before = self._registry_with_fake()
        cache = ResultCache(directory=tmp_path, registry=before)
        cache.put(request, before.run(request))
        assert cache.get(request) is not None

        after = self._registry_with_fake(certificates=("optimal-structure",))
        assert capability_fingerprint(
            before.capabilities("fake")
        ) != capability_fingerprint(after.capabilities("fake"))
        recached = ResultCache(directory=tmp_path, registry=after)
        # same request, same store — but the re-registered solver's entries
        # are unreachable under the new fingerprint
        assert recached.get(request) is None

    def test_explicit_invalidate_all_and_per_solver(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        laptop = _request_for("laptop")
        server = _request_for("server")
        cache.put(laptop, api_solve(laptop))
        cache.put(server, api_solve(server))
        # one distinct entry dropped (memory + disk copies count once)
        assert cache.invalidate(solver="laptop") == 1
        assert cache.get(laptop) is None
        assert cache.get(server) is not None
        assert cache.invalidate() == 1
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get(server) is None


class TestSweepCacheReuse:
    def test_repeated_competitive_sweeps_hit_the_cache_and_match(self):
        from repro.online.compete import competitive_sweep

        cache = ResultCache()
        kwargs = dict(
            algorithms=["oa"], alphas=[2.0], families=["deadline"],
            sizes=[5], seeds=1,
        )
        cold = competitive_sweep(cache=cache, **kwargs)
        after_cold = cache.stats()
        # one grid cell, solved by yds (the baseline) and oa
        assert after_cold.puts == 2
        assert after_cold.hits == 0
        warm = competitive_sweep(cache=cache, **kwargs)
        assert cache.stats().hits - after_cold.hits == 2
        # instances are regenerated per call, so hits prove the keying is
        # content-addressed; payloads must match byte for byte
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


class TestCorruption:
    def _single_entry_path(self, cache, request):
        key = cache.key_for(request)
        return cache.directory / key[:2] / f"{key}.json"

    @pytest.mark.parametrize(
        "garbage",
        [
            "{not json",
            json.dumps({"kind": "something-else"}),
            json.dumps({"kind": "cache-entry", "key": "wrong", "result": {}}),
            json.dumps(["a", "bare", "list"]),
        ],
    )
    def test_corrupted_disk_entry_is_a_miss_not_a_crash(self, tmp_path, garbage):
        request = _request_for("laptop")
        cache = ResultCache(directory=tmp_path, max_memory_entries=0)
        cache.put(request, api_solve(request))
        path = self._single_entry_path(cache, request)
        assert path.exists()
        path.write_text(garbage, encoding="utf-8")
        assert cache.get(request) is None
        stats = cache.stats()
        assert stats.corrupt_entries == 1
        assert stats.misses == 1
        # overwriting repairs the entry
        cache.put(request, api_solve(request))
        assert cache.get(request) is not None


class TestDiskDegradation:
    """Satellite: a failing disk store degrades to memory-only, never crashes."""

    def _plan(self, *indices):
        from repro.faults import CACHE_WRITE, FaultPlan, FaultRule

        return FaultPlan(
            rules=(FaultRule(site=CACHE_WRITE, indices=frozenset(indices),
                             message="disk full"),)
        )

    def test_enospc_degrades_to_memory_only_with_one_warning(self, tmp_path):
        cache = ResultCache(directory=tmp_path, fault_plan=self._plan(0, 1, 2))
        requests = [_request_for("laptop"), _request_for("yds")]
        with pytest.warns(RuntimeWarning, match="disk"):
            cache.put(requests[0], api_solve(requests[0]))
        # further writes are silent (the warning fired once) and keep working
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put(requests[1], api_solve(requests[1]))
        # both entries are served from the memory front
        assert cache.get(requests[0]) is not None
        assert cache.get(requests[1]) is not None
        stats = cache.stats()
        assert stats.disk_errors == 1
        assert stats.memory_hits == 2 and stats.disk_hits == 0

    def test_no_disk_files_after_degradation(self, tmp_path):
        cache = ResultCache(directory=tmp_path, fault_plan=self._plan(0))
        request = _request_for("laptop")
        with pytest.warns(RuntimeWarning):
            cache.put(request, api_solve(request))
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []

    def test_existing_disk_entries_stay_readable(self, tmp_path):
        warm = ResultCache(directory=tmp_path)
        request = _request_for("laptop")
        warm.put(request, api_solve(request))
        # a later failing write must not disable reads of what is on disk
        cache = ResultCache(directory=tmp_path, max_memory_entries=0,
                            fault_plan=self._plan(0))
        other = _request_for("yds")
        with pytest.warns(RuntimeWarning):
            cache.put(other, api_solve(other))
        assert cache.get(request) is not None
        assert cache.stats().disk_hits == 1

    def test_real_unwritable_directory_degrades_the_same_way(self, tmp_path):
        import os
        import sys

        if os.geteuid() == 0:
            pytest.skip("chmod 0 is not an obstacle for root")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        cache = ResultCache(directory=blocked)
        blocked.chmod(0o500)  # no write permission -> EACCES on tmp file
        try:
            request = _request_for("laptop")
            with pytest.warns(RuntimeWarning, match="disk"):
                cache.put(request, api_solve(request))
            assert cache.get(request) is not None
            assert cache.stats().disk_errors == 1
        finally:
            blocked.chmod(0o700)

"""Tests for cyclic assignment and its preconditions (Theorem 10)."""

from __future__ import annotations

import pytest

from repro.core import Instance, MAKESPAN, TOTAL_FLOW, TOTAL_WEIGHTED_FLOW
from repro.exceptions import InvalidInstanceError
from repro.multi import assignment_to_subinstances, check_cyclic_preconditions, cyclic_assignment


class TestCyclicAssignment:
    def test_round_robin(self):
        assignment = cyclic_assignment(7, 3)
        assert assignment == {0: [0, 3, 6], 1: [1, 4], 2: [2, 5]}

    def test_single_processor(self):
        assert cyclic_assignment(4, 1) == {0: [0, 1, 2, 3]}

    def test_more_processors_than_jobs(self):
        assignment = cyclic_assignment(2, 4)
        assert assignment[0] == [0]
        assert assignment[1] == [1]
        assert assignment[2] == []
        assert assignment[3] == []

    def test_invalid_arguments(self):
        with pytest.raises(InvalidInstanceError):
            cyclic_assignment(0, 2)
        with pytest.raises(InvalidInstanceError):
            cyclic_assignment(3, 0)


class TestAssignmentToSubinstances:
    def test_slicing(self):
        inst = Instance.equal_work([0, 1, 2, 3, 4], work=1.0)
        subs = assignment_to_subinstances(inst, cyclic_assignment(5, 2))
        assert subs[0].n_jobs == 3
        assert subs[1].n_jobs == 2
        assert list(subs[0].releases) == [0, 2, 4]
        assert list(subs[1].releases) == [1, 3]

    def test_empty_processor_omitted(self):
        inst = Instance.equal_work([0, 1], work=1.0)
        subs = assignment_to_subinstances(inst, {0: [0, 1], 1: []})
        assert set(subs) == {0}

    def test_duplicate_assignment_rejected(self):
        inst = Instance.equal_work([0, 1], work=1.0)
        with pytest.raises(InvalidInstanceError):
            assignment_to_subinstances(inst, {0: [0, 1], 1: [1]})

    def test_missing_job_rejected(self):
        inst = Instance.equal_work([0, 1], work=1.0)
        with pytest.raises(InvalidInstanceError):
            assignment_to_subinstances(inst, {0: [0]})


class TestPreconditions:
    def test_equal_work_symmetric_metric_accepted(self):
        inst = Instance.equal_work([0, 1, 2], work=1.0)
        check_cyclic_preconditions(inst, MAKESPAN)
        check_cyclic_preconditions(inst, TOTAL_FLOW)

    def test_unequal_work_rejected(self):
        inst = Instance.from_arrays([0, 1], [1.0, 2.0])
        with pytest.raises(InvalidInstanceError):
            check_cyclic_preconditions(inst, MAKESPAN)

    def test_non_symmetric_metric_rejected(self):
        inst = Instance.equal_work([0, 1], work=1.0)
        with pytest.raises(InvalidInstanceError):
            check_cyclic_preconditions(inst, TOTAL_WEIGHTED_FLOW)

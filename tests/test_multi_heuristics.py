"""Tests for the LPT/greedy heuristics and the PTAS-style scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import InvalidInstanceError
from repro.multi import (
    exact_zero_release_makespan,
    greedy_release_assignment,
    heuristic_multiprocessor_makespan,
    lpt_assignment,
    ptas_zero_release_makespan,
)
from repro.workloads import zero_release_instance


class TestAssignments:
    def test_lpt_covers_all_jobs(self):
        inst = Instance.from_arrays([0] * 6, [5, 3, 3, 2, 2, 1])
        assignment = lpt_assignment(inst, 2)
        assigned = sorted(j for jobs in assignment.values() for j in jobs)
        assert assigned == list(range(6))

    def test_lpt_balances_loads(self):
        inst = Instance.from_arrays([0] * 4, [4.0, 3.0, 2.0, 1.0])
        assignment = lpt_assignment(inst, 2)
        loads = {p: sum(inst.works[j] for j in jobs) for p, jobs in assignment.items()}
        assert sorted(loads.values()) == [5.0, 5.0]

    def test_greedy_release_covers_all_jobs(self):
        inst = Instance.from_arrays([0, 1, 2, 3], [1, 2, 1, 2])
        assignment = greedy_release_assignment(inst, 3)
        assigned = sorted(j for jobs in assignment.values() for j in jobs)
        assert assigned == list(range(4))

    def test_invalid_processor_count(self):
        inst = Instance.from_arrays([0], [1.0])
        with pytest.raises(InvalidInstanceError):
            lpt_assignment(inst, 0)
        with pytest.raises(InvalidInstanceError):
            greedy_release_assignment(inst, 0)


class TestHeuristicMakespan:
    def test_never_beats_exact(self, cube):
        rng = np.random.default_rng(31)
        for seed in range(4):
            inst = zero_release_instance(7, seed=seed, mean_work=1.0)
            energy = float(rng.uniform(3.0, 15.0))
            exact = exact_zero_release_makespan(inst, cube, 2, energy)
            for strategy in ("lpt", "greedy-release"):
                heuristic = heuristic_multiprocessor_makespan(inst, cube, 2, energy, strategy)
                assert heuristic.makespan >= exact.makespan * (1 - 1e-9)

    def test_lpt_close_to_exact_on_zero_release(self, cube):
        inst = zero_release_instance(8, seed=5, mean_work=1.0)
        exact = exact_zero_release_makespan(inst, cube, 2, 10.0)
        lpt = heuristic_multiprocessor_makespan(inst, cube, 2, 10.0, "lpt")
        assert lpt.makespan <= exact.makespan * 1.25

    def test_callable_strategy(self, cube):
        inst = zero_release_instance(5, seed=1)
        result = heuristic_multiprocessor_makespan(
            inst, cube, 2, 6.0, strategy=lambda i, m: lpt_assignment(i, m)
        )
        assert result.makespan > 0

    def test_unknown_strategy(self, cube):
        inst = zero_release_instance(5, seed=1)
        with pytest.raises(InvalidInstanceError):
            heuristic_multiprocessor_makespan(inst, cube, 2, 6.0, "nonsense")


class TestPTAS:
    def test_exact_when_all_jobs_in_exhaustive_phase(self, cube):
        inst = zero_release_instance(8, seed=9)
        exact = exact_zero_release_makespan(inst, cube, 2, 12.0)
        ptas = ptas_zero_release_makespan(inst, cube, 2, 12.0, epsilon=0.01, max_exact_jobs=8)
        assert ptas.makespan == pytest.approx(exact.makespan, rel=1e-9)

    def test_never_beats_exact(self, cube):
        for seed in range(3):
            inst = zero_release_instance(9, seed=seed)
            exact = exact_zero_release_makespan(inst, cube, 3, 10.0)
            ptas = ptas_zero_release_makespan(inst, cube, 3, 10.0, epsilon=0.5, max_exact_jobs=5)
            assert ptas.makespan >= exact.makespan * (1 - 1e-9)

    def test_smaller_epsilon_does_not_hurt(self, cube):
        inst = zero_release_instance(10, seed=12)
        loose = ptas_zero_release_makespan(inst, cube, 2, 10.0, epsilon=1.0, max_exact_jobs=10)
        tight = ptas_zero_release_makespan(inst, cube, 2, 10.0, epsilon=0.2, max_exact_jobs=10)
        assert tight.makespan <= loose.makespan * (1 + 1e-9)
        assert tight.n_exact_jobs >= loose.n_exact_jobs

    def test_result_conversion_and_validity(self, cube):
        inst = zero_release_instance(6, seed=2)
        ptas = ptas_zero_release_makespan(inst, cube, 2, 8.0, epsilon=0.3)
        assigned = ptas.as_assigned_result(inst, cube, 8.0)
        sched = assigned.schedule(inst, cube)
        sched.validate(energy_budget=8.0 * (1 + 1e-6))
        assert assigned.makespan == pytest.approx(ptas.makespan)

    def test_requires_zero_releases(self, cube):
        inst = Instance.from_arrays([0, 1], [1.0, 1.0])
        with pytest.raises(InvalidInstanceError):
            ptas_zero_release_makespan(inst, cube, 2, 5.0)

    def test_invalid_epsilon(self, cube):
        inst = zero_release_instance(4, seed=3)
        with pytest.raises(InvalidInstanceError):
            ptas_zero_release_makespan(inst, cube, 2, 5.0, epsilon=0.0)

"""Tests for the batch solving engine (:mod:`repro.batch`) and its CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.batch import SOLVERS, solve_many
from repro.cli import main
from repro.core import CUBE, Instance
from repro.exceptions import InvalidInstanceError
from repro.io import load_instances, save_instances
from repro.makespan import incmerge, minimum_energy_for_makespan
from repro.workloads import deadline_instance, equal_work_instance, poisson_instance


@pytest.fixture(scope="module")
def instances() -> list[Instance]:
    return [poisson_instance(20, seed=s, arrival_rate=1.0) for s in range(8)]


class TestSolveMany:
    def test_serial_matches_direct_calls(self, instances):
        results = solve_many(instances, CUBE, 50.0, solver="laptop")
        assert [r.index for r in results] == list(range(len(instances)))
        for r, inst in zip(results, instances):
            direct = incmerge(inst, CUBE, 50.0)
            assert r.value == direct.makespan
            assert np.array_equal(r.speeds, direct.speeds)

    def test_workers_are_deterministic_and_byte_identical(self, instances):
        serial = solve_many(instances, CUBE, 50.0, solver="laptop", workers=1)
        parallel = solve_many(instances, CUBE, 50.0, solver="laptop", workers=4)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.index == b.index
            assert a.value == b.value
            assert a.energy == b.energy
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_parallel_chunking_preserves_order(self, instances):
        parallel = solve_many(
            instances, CUBE, 50.0, solver="laptop", workers=3, chunk_size=1
        )
        assert [r.index for r in parallel] == list(range(len(instances)))

    def test_per_instance_budgets(self, instances):
        budgets = [40.0 + i for i in range(len(instances))]
        results = solve_many(instances, CUBE, budgets, solver="laptop")
        for r, inst, budget in zip(results, instances, budgets):
            assert r.energy == pytest.approx(budget, rel=1e-8)

    def test_server_solver_inverts_laptop(self, instances):
        inst = instances[0]
        laptop = incmerge(inst, CUBE, 50.0)
        results = solve_many([inst], CUBE, laptop.makespan, solver="server")
        assert results[0].value == pytest.approx(
            minimum_energy_for_makespan(inst, CUBE, laptop.makespan), rel=1e-9
        )
        assert results[0].value == pytest.approx(50.0, rel=1e-6)

    def test_yds_solver(self):
        insts = [deadline_instance(8, seed=s, laxity=3.0) for s in range(3)]
        results = solve_many(insts, CUBE, 0.0, solver="yds")
        assert all(r.value > 0 for r in results)
        assert all(r.value == pytest.approx(r.energy) for r in results)

    def test_flow_solver(self):
        insts = [equal_work_instance(5, seed=s) for s in range(2)]
        results = solve_many(insts, CUBE, 20.0, solver="flow")
        assert all(r.value > 0 for r in results)
        assert all(r.energy <= 20.0 * (1 + 1e-5) for r in results)

    def test_validation_errors(self, instances):
        with pytest.raises(InvalidInstanceError):
            solve_many(instances, CUBE, 50.0, solver="nope")
        with pytest.raises(InvalidInstanceError):
            solve_many(instances, CUBE, [1.0, 2.0], solver="laptop")
        assert solve_many([], CUBE, 50.0) == []


class TestInstanceBatchIO:
    def test_roundtrip(self, tmp_path, instances):
        path = tmp_path / "batch.json"
        save_instances(instances, path)
        loaded = load_instances(path)
        assert len(loaded) == len(instances)
        for a, b in zip(loaded, instances):
            assert np.array_equal(a.releases, b.releases)
            assert np.array_equal(a.works, b.works)

    def test_single_instance_payload_accepted(self, tmp_path, instances):
        from repro.io import save_instance

        path = tmp_path / "one.json"
        save_instance(instances[0], path)
        loaded = load_instances(path)
        assert len(loaded) == 1

    def test_bare_list_accepted(self, tmp_path, instances):
        from repro.io import instance_to_dict

        path = tmp_path / "list.json"
        path.write_text(json.dumps([instance_to_dict(i) for i in instances[:2]]))
        assert len(load_instances(path)) == 2


class TestBatchCLI:
    def test_table_output(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        code = main(["batch", "--instances", str(path), "--energy", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch of 3 instances" in out
        assert "instances/s" in out

    def test_json_output_matches_library(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        code = main(
            ["batch", "--instances", str(path), "--energy", "50", "--json",
             "--workers", "2"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 2
        expected = solve_many(instances[:3], CUBE, 50.0)
        assert len(payload["results"]) == 3
        for row, r in zip(payload["results"], expected):
            assert row["value"] == pytest.approx(r.value, rel=1e-12)

    def test_budget_count_mismatch_is_cli_error(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        code = main(["batch", "--instances", str(path), "--energy", "50,60"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

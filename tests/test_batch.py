"""Tests for the batch solving engine (:mod:`repro.batch`) and its CLI."""

from __future__ import annotations

import json
import types

import numpy as np
import pytest

import repro.batch as batch_module
from repro.batch import SOLVERS, solve_many, solve_stream
from repro.cache import ResultCache
from repro.cli import main
from repro.core import CUBE, Instance
from repro.exceptions import InvalidInstanceError, VerificationError
from repro.io import load_instances, save_instances
from repro.makespan import incmerge, minimum_energy_for_makespan
from repro.workloads import deadline_instance, equal_work_instance, poisson_instance


@pytest.fixture(scope="module")
def instances() -> list[Instance]:
    return [poisson_instance(20, seed=s, arrival_rate=1.0) for s in range(8)]


class TestSolveMany:
    def test_serial_matches_direct_calls(self, instances):
        results = solve_many(instances, CUBE, 50.0, solver="laptop")
        assert [r.index for r in results] == list(range(len(instances)))
        for r, inst in zip(results, instances):
            direct = incmerge(inst, CUBE, 50.0)
            assert r.value == direct.makespan
            assert np.array_equal(r.speeds, direct.speeds)

    def test_workers_are_deterministic_and_byte_identical(self, instances):
        serial = solve_many(instances, CUBE, 50.0, solver="laptop", workers=1)
        parallel = solve_many(instances, CUBE, 50.0, solver="laptop", workers=4)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.index == b.index
            assert a.value == b.value
            assert a.energy == b.energy
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_parallel_chunking_preserves_order(self, instances):
        parallel = solve_many(
            instances, CUBE, 50.0, solver="laptop", workers=3, chunk_size=1
        )
        assert [r.index for r in parallel] == list(range(len(instances)))

    def test_per_instance_budgets(self, instances):
        budgets = [40.0 + i for i in range(len(instances))]
        results = solve_many(instances, CUBE, budgets, solver="laptop")
        for r, inst, budget in zip(results, instances, budgets):
            assert r.energy == pytest.approx(budget, rel=1e-8)

    def test_server_solver_inverts_laptop(self, instances):
        inst = instances[0]
        laptop = incmerge(inst, CUBE, 50.0)
        results = solve_many([inst], CUBE, laptop.makespan, solver="server")
        assert results[0].value == pytest.approx(
            minimum_energy_for_makespan(inst, CUBE, laptop.makespan), rel=1e-9
        )
        assert results[0].value == pytest.approx(50.0, rel=1e-6)

    def test_yds_solver(self):
        insts = [deadline_instance(8, seed=s, laxity=3.0) for s in range(3)]
        results = solve_many(insts, CUBE, 0.0, solver="yds")
        assert all(r.value > 0 for r in results)
        assert all(r.value == pytest.approx(r.energy) for r in results)

    def test_flow_solver(self):
        insts = [equal_work_instance(5, seed=s) for s in range(2)]
        results = solve_many(insts, CUBE, 20.0, solver="flow")
        assert all(r.value > 0 for r in results)
        assert all(r.energy <= 20.0 * (1 + 1e-5) for r in results)

    def test_validation_errors(self, instances):
        with pytest.raises(InvalidInstanceError):
            solve_many(instances, CUBE, 50.0, solver="nope")
        with pytest.raises(InvalidInstanceError):
            solve_many(instances, CUBE, [1.0, 2.0], solver="laptop")
        assert solve_many([], CUBE, 50.0) == []

    @pytest.mark.parametrize(
        "budget",
        [50.0, np.float64(50.0), np.asarray(50.0)],
        ids=["python-float", "numpy-scalar", "zero-d-array"],
    )
    def test_scalar_budgets_broadcast_in_every_form(self, instances, budget):
        # regression: np.isscalar(np.asarray(50.0)) is False, so a 0-d array
        # budget used to hit the per-instance branch and die with a raw
        # "iteration over a 0-d array" TypeError
        results = solve_many(instances[:3], CUBE, budget, solver="laptop")
        expected = solve_many(instances[:3], CUBE, 50.0, solver="laptop")
        for r, e in zip(results, expected):
            assert r.value == e.value
            assert r.speeds.tobytes() == e.speeds.tobytes()


def _counting_solve_chunk(monkeypatch):
    """Wrap the worker entry point with call/item counters (serial path)."""
    counter = types.SimpleNamespace(calls=0, items=0)
    original = batch_module._solve_chunk

    def wrapper(payload):
        counter.calls += 1
        counter.items += len(payload[2])
        return original(payload)

    monkeypatch.setattr(batch_module, "_solve_chunk", wrapper)
    return counter


class TestSolveStream:
    def test_materialised_stream_matches_solve_many_byte_identically(self, instances):
        streamed = list(solve_stream(instances, CUBE, 50.0, solver="laptop"))
        materialised = solve_many(instances, CUBE, 50.0, solver="laptop")
        assert [r.index for r in streamed] == [r.index for r in materialised]
        for a, b in zip(streamed, materialised):
            assert a.value == b.value
            assert a.energy == b.energy
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_results_stream_chunk_by_chunk(self, instances, monkeypatch):
        counter = _counting_solve_chunk(monkeypatch)
        stream = solve_stream(instances, CUBE, 50.0, solver="laptop", chunk_size=2)
        first = next(stream)
        # only the first chunk has been solved when the first result arrives
        assert first.index == 0
        assert counter.calls == 1
        assert counter.items == 2
        rest = list(stream)
        assert [r.index for r in rest] == list(range(1, len(instances)))
        assert counter.items == len(instances)

    def test_validation_is_eager_not_deferred_to_first_next(self, instances):
        with pytest.raises(InvalidInstanceError):
            solve_stream(instances, CUBE, [1.0, 2.0], solver="laptop")

    def test_parallel_stream_is_byte_identical_to_serial(self, instances):
        serial = list(solve_stream(instances, CUBE, 50.0, solver="laptop"))
        parallel = list(
            solve_stream(instances, CUBE, 50.0, solver="laptop", workers=3,
                         chunk_size=1)
        )
        assert [r.index for r in parallel] == [r.index for r in serial]
        for a, b in zip(parallel, serial):
            assert a.value == b.value
            assert a.speeds.tobytes() == b.speeds.tobytes()


class TestBatchCache:
    def test_warm_run_skips_the_solver_and_is_byte_identical(
        self, instances, monkeypatch
    ):
        cache = ResultCache()
        cold = solve_many(instances, CUBE, 50.0, solver="laptop", cache=cache)
        counter = _counting_solve_chunk(monkeypatch)
        warm = solve_many(instances, CUBE, 50.0, solver="laptop", cache=cache)
        assert counter.items == 0  # every item was a cache hit
        for a, b in zip(cold, warm):
            assert a.index == b.index
            assert a.n_jobs == b.n_jobs
            assert a.value == b.value
            assert a.energy == b.energy
            assert a.speeds.tobytes() == b.speeds.tobytes()
        stats = cache.stats()
        assert stats.hits == len(instances)
        assert stats.puts == len(instances)

    def test_cache_is_keyed_per_budget(self, instances):
        cache = ResultCache()
        solve_many(instances[:2], CUBE, 50.0, solver="laptop", cache=cache)
        solve_many(instances[:2], CUBE, 60.0, solver="laptop", cache=cache)
        assert cache.stats().hits == 0

    def test_verify_checks_cache_hits_too(self, instances, tmp_path):
        # a disk entry that parses fine but carries a tampered energy must be
        # caught by verify=True even though it skips the solver
        store = tmp_path / "cache"
        cache = ResultCache(directory=store)
        solve_many(instances[:1], CUBE, 50.0, solver="laptop", cache=cache)
        entry_files = list(store.glob("*/*.json"))
        assert len(entry_files) == 1
        entry = json.loads(entry_files[0].read_text())
        entry["result"]["energy"] = entry["result"]["energy"] * 2.0
        entry_files[0].write_text(json.dumps(entry))
        tampered = ResultCache(directory=store)
        # without verify the tampered hit flows through...
        bad = solve_many(instances[:1], CUBE, 50.0, solver="laptop", cache=tampered)
        assert bad[0].energy == pytest.approx(100.0, rel=1e-6)
        # ...with verify it is rejected
        with pytest.raises(VerificationError, match="cached"):
            solve_many(
                instances[:1], CUBE, 50.0, solver="laptop",
                cache=ResultCache(directory=store), verify=True,
            )

    def test_verify_checks_journal_replays_too(self, instances, tmp_path):
        run_dir = tmp_path / "run"
        solve_many(instances[:2], CUBE, 50.0, solver="laptop", run_dir=run_dir)
        journal_path = run_dir / "journal.jsonl"
        rows = [json.loads(line) for line in journal_path.read_text().splitlines()]
        rows[0]["energy"] = rows[0]["energy"] * 2.0
        journal_path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        with pytest.raises(VerificationError, match="journal-replayed"):
            solve_many(
                instances[:2], CUBE, 50.0, solver="laptop",
                run_dir=run_dir, verify=True,
            )

    def test_disk_cache_survives_processes(self, instances, tmp_path, monkeypatch):
        store = tmp_path / "cache"
        cold = solve_many(
            instances[:3], CUBE, 50.0, solver="laptop",
            cache=ResultCache(directory=store),
        )
        counter = _counting_solve_chunk(monkeypatch)
        warm = solve_many(
            instances[:3], CUBE, 50.0, solver="laptop",
            cache=ResultCache(directory=store),
        )
        assert counter.items == 0
        for a, b in zip(cold, warm):
            assert a.speeds.tobytes() == b.speeds.tobytes()


class TestWireCodec:
    """The write-behind envelope codec changes bytes on the wire, nothing else."""

    def test_binary_wire_is_byte_identical_to_json(self, instances, tmp_path):
        runs = {}
        for codec in ("json", "binary"):
            cache = ResultCache(directory=tmp_path / codec)
            runs[codec] = (
                solve_many(
                    instances[:4], CUBE, 50.0, solver="laptop", workers=2,
                    chunk_size=1, cache=cache, wire_codec=codec,
                ),
                cache,
            )
        for a, b in zip(runs["json"][0], runs["binary"][0]):
            assert a.index == b.index
            assert a.value == b.value
            assert a.speeds.tobytes() == b.speeds.tobytes()
        # the persisted cache entries are the same bytes too: the wire codec
        # never leaks into the store format
        json_files = sorted((tmp_path / "json").rglob("*.json"))
        binary_files = sorted((tmp_path / "binary").rglob("*.json"))
        assert [p.name for p in json_files] == [p.name for p in binary_files]
        for a, b in zip(json_files, binary_files):
            assert a.read_bytes() == b.read_bytes()

    def test_binary_wire_warm_hits_the_cache(self, instances):
        cache = ResultCache()
        solve_many(instances[:3], CUBE, 50.0, solver="laptop", workers=2,
                   cache=cache, wire_codec="binary")
        solve_many(instances[:3], CUBE, 50.0, solver="laptop", workers=2,
                   cache=cache, wire_codec="binary")
        stats = cache.stats()
        assert stats.puts == 3 and stats.hits == 3

    def test_unknown_wire_codec_rejected_eagerly(self, instances):
        with pytest.raises(InvalidInstanceError, match="wire_codec"):
            solve_many(instances[:1], CUBE, 50.0, wire_codec="msgpack")

    def test_cli_flag_capture_matches_json(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        argv = ["batch", "--instances", str(path), "--energy", "50", "--json",
                "--workers", "2", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        via_json = json.loads(capsys.readouterr().out)
        assert main([*argv, "--wire-codec", "binary"]) == 0
        via_binary = json.loads(capsys.readouterr().out)
        assert (
            json.dumps(via_binary["results"], sort_keys=True)
            == json.dumps(via_json["results"], sort_keys=True)
        )


class TestRunDir:
    def test_killed_run_resumes_and_matches_uninterrupted_bytes(
        self, instances, tmp_path, monkeypatch
    ):
        run_dir = tmp_path / "run"
        uninterrupted = solve_many(instances, CUBE, 50.0, solver="laptop")

        # simulate a kill: consume three results, then drop the generator
        stream = solve_stream(
            instances, CUBE, 50.0, solver="laptop", chunk_size=1, run_dir=run_dir
        )
        for _ in range(3):
            next(stream)
        stream.close()
        journal = (run_dir / "journal.jsonl").read_text().splitlines()
        assert len(journal) == 3

        counter = _counting_solve_chunk(monkeypatch)
        resumed = solve_many(
            instances, CUBE, 50.0, solver="laptop", chunk_size=1, run_dir=run_dir
        )
        assert counter.items == len(instances) - 3  # finished work is skipped
        assert [r.index for r in resumed] == list(range(len(instances)))
        for a, b in zip(resumed, uninterrupted):
            assert a.value == b.value
            assert a.energy == b.energy
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_completed_run_dir_replays_without_solving(
        self, instances, tmp_path, monkeypatch
    ):
        run_dir = tmp_path / "run"
        first = solve_many(instances, CUBE, 50.0, solver="laptop", run_dir=run_dir)
        counter = _counting_solve_chunk(monkeypatch)
        replayed = solve_many(instances, CUBE, 50.0, solver="laptop", run_dir=run_dir)
        assert counter.items == 0
        for a, b in zip(first, replayed):
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_torn_journal_tail_is_truncated_not_poisoned(
        self, instances, tmp_path, monkeypatch
    ):
        run_dir = tmp_path / "run"
        stream = solve_stream(
            instances, CUBE, 50.0, solver="laptop", chunk_size=1, run_dir=run_dir
        )
        next(stream)
        next(stream)
        stream.close()
        journal_path = run_dir / "journal.jsonl"
        with journal_path.open("a") as fh:
            fh.write('{"index": 2, "name": "torn')  # killed mid-write
        resumed = solve_many(
            instances, CUBE, 50.0, solver="laptop", run_dir=run_dir
        )
        expected = solve_many(instances, CUBE, 50.0, solver="laptop")
        for a, b in zip(resumed, expected):
            assert a.speeds.tobytes() == b.speeds.tobytes()
        # the torn fragment was truncated, not appended onto: the journal is
        # fully parseable again and a third run replays it without solving
        rows = journal_path.read_text().splitlines()
        assert len(rows) == len(instances)
        assert all(json.loads(row) for row in rows)
        counter = _counting_solve_chunk(monkeypatch)
        solve_many(instances, CUBE, 50.0, solver="laptop", run_dir=run_dir)
        assert counter.items == 0

    def test_run_dir_rejects_different_inputs(self, instances, tmp_path):
        run_dir = tmp_path / "run"
        solve_many(instances[:3], CUBE, 50.0, solver="laptop", run_dir=run_dir)
        with pytest.raises(InvalidInstanceError, match="different batch"):
            solve_many(instances[:3], CUBE, 60.0, solver="laptop", run_dir=run_dir)
        with pytest.raises(InvalidInstanceError, match="different batch"):
            solve_many(instances[:4], CUBE, 50.0, solver="laptop", run_dir=run_dir)
        # the fingerprint guard also covers empty batches, both directions
        with pytest.raises(InvalidInstanceError, match="different batch"):
            solve_many([], CUBE, 50.0, solver="laptop", run_dir=run_dir)
        empty_dir = tmp_path / "empty"
        assert solve_many([], CUBE, 50.0, solver="laptop", run_dir=empty_dir) == []
        assert (empty_dir / "manifest.json").exists()
        with pytest.raises(InvalidInstanceError, match="different batch"):
            solve_many(instances[:3], CUBE, 50.0, solver="laptop", run_dir=empty_dir)


class TestInstanceBatchIO:
    def test_roundtrip(self, tmp_path, instances):
        path = tmp_path / "batch.json"
        save_instances(instances, path)
        loaded = load_instances(path)
        assert len(loaded) == len(instances)
        for a, b in zip(loaded, instances):
            assert np.array_equal(a.releases, b.releases)
            assert np.array_equal(a.works, b.works)

    def test_single_instance_payload_accepted(self, tmp_path, instances):
        from repro.io import save_instance

        path = tmp_path / "one.json"
        save_instance(instances[0], path)
        loaded = load_instances(path)
        assert len(loaded) == 1

    def test_bare_list_accepted(self, tmp_path, instances):
        from repro.io import instance_to_dict

        path = tmp_path / "list.json"
        path.write_text(json.dumps([instance_to_dict(i) for i in instances[:2]]))
        assert len(load_instances(path)) == 2


class TestBatchCLI:
    def test_table_output(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        code = main(["batch", "--instances", str(path), "--energy", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch of 3 instances" in out
        assert "instances/s" in out

    def test_json_output_matches_library(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        code = main(
            ["batch", "--instances", str(path), "--energy", "50", "--json",
             "--workers", "2"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 2
        expected = solve_many(instances[:3], CUBE, 50.0)
        assert len(payload["results"]) == 3
        for row, r in zip(payload["results"], expected):
            assert row["value"] == pytest.approx(r.value, rel=1e-12)

    def test_run_dir_resume_produces_byte_identical_capture(
        self, tmp_path, instances, capsys
    ):
        path = tmp_path / "batch.json"
        save_instances(instances, path)
        run_dir = tmp_path / "run"
        # simulate a killed run: a few results already journalled
        stream = solve_stream(
            instances, CUBE, 50.0, solver="laptop", chunk_size=1, run_dir=run_dir
        )
        for _ in range(4):
            next(stream)
        stream.close()
        argv = ["batch", "--instances", str(path), "--energy", "50", "--json"]
        assert main([*argv, "--run-dir", str(run_dir)]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        fresh = json.loads(capsys.readouterr().out)
        assert (
            json.dumps(resumed["results"], sort_keys=True)
            == json.dumps(fresh["results"], sort_keys=True)
        )

    def test_cache_dir_warm_capture_is_byte_identical(
        self, tmp_path, instances, capsys
    ):
        path = tmp_path / "batch.json"
        save_instances(instances[:4], path)
        argv = ["batch", "--instances", str(path), "--energy", "50", "--json",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert (
            json.dumps(warm["results"], sort_keys=True)
            == json.dumps(cold["results"], sort_keys=True)
        )

    def test_budget_count_mismatch_is_cli_error(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:3], path)
        code = main(["batch", "--instances", str(path), "--energy", "50,60"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBatchRobustness:
    """Tentpole/satellites: pool recovery, atomic manifest, torn journal."""

    def test_chunk_timeout_fails_chunk_not_stream(self, tmp_path):
        from repro.faults import WORKER_HANG, FaultPlan, FaultRule

        insts = [poisson_instance(10, seed=s, arrival_rate=1.0) for s in range(6)]
        run_dir = tmp_path / "run"
        plan = FaultPlan(
            rules=(FaultRule(site=WORKER_HANG, indices=frozenset({2}), delay=30.0),)
        )
        rows = solve_many(
            insts, CUBE, 50.0, solver="laptop", workers=2, chunk_size=2,
            chunk_timeout=1.5, fault_plan=plan, run_dir=run_dir,
        )
        assert [r.index for r in rows] == list(range(6))
        bad = [r for r in rows if not r.ok]
        assert [r.index for r in bad] == [2, 3]  # the hung chunk, nothing else
        assert all(r.error_code == "worker-timeout" for r in bad)
        assert all(np.isnan(r.value) and np.isnan(r.energy) for r in bad)
        # error rows are never journalled: a resumed run retries exactly them
        journal = (run_dir / "journal.jsonl").read_text().splitlines()
        assert len(journal) == 4
        resumed = solve_many(
            insts, CUBE, 50.0, solver="laptop", workers=2, chunk_size=2,
            run_dir=run_dir,
        )
        expected = solve_many(insts, CUBE, 50.0, solver="laptop")
        assert all(r.ok for r in resumed)
        for a, b in zip(resumed, expected):
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_worker_exception_still_propagates(self, instances):
        from repro.faults import WORKER_EXCEPTION, FaultPlan, FaultRule, InjectedFault

        plan = FaultPlan(
            rules=(FaultRule(site=WORKER_EXCEPTION, indices=frozenset({1}),
                             message="crashed worker"),)
        )
        with pytest.raises(InjectedFault, match="crashed worker"):
            solve_many(instances, CUBE, 50.0, solver="laptop", fault_plan=plan)

    def test_manifest_is_complete_json_after_first_yield(self, instances, tmp_path):
        run_dir = tmp_path / "run"
        stream = solve_stream(
            instances, CUBE, 50.0, solver="laptop", chunk_size=1, run_dir=run_dir
        )
        next(stream)
        # temp+rename: the manifest is never observable half-written
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["kind"] == "batch-run"
        leftovers = [p.name for p in run_dir.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []
        stream.close()

    def test_kill_during_manifest_write_leaves_no_manifest(
        self, instances, tmp_path, monkeypatch
    ):
        import os as os_module

        run_dir = tmp_path / "run"
        real_replace = os_module.replace

        def killed(src, dst, *args, **kwargs):
            if str(dst).endswith("manifest.json"):
                raise KeyboardInterrupt("killed mid-manifest")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr("os.replace", killed)
        with pytest.raises(KeyboardInterrupt):
            list(
                solve_stream(
                    instances, CUBE, 50.0, solver="laptop", run_dir=run_dir
                )
            )
        monkeypatch.undo()
        # no half-written manifest: the next run starts from a clean slate
        assert not (run_dir / "manifest.json").exists()
        rerun = solve_many(instances, CUBE, 50.0, solver="laptop", run_dir=run_dir)
        expected = solve_many(instances, CUBE, 50.0, solver="laptop")
        for a, b in zip(rerun, expected):
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_journal_torn_injector_resumes_byte_identical(self, instances, tmp_path):
        from repro.faults import JOURNAL_TORN, FaultPlan, FaultRule, InjectedFault

        run_dir = tmp_path / "run"
        plan = FaultPlan(
            rules=(FaultRule(site=JOURNAL_TORN, indices=frozenset({2})),)
        )
        with pytest.raises(InjectedFault):
            list(
                solve_stream(
                    instances, CUBE, 50.0, solver="laptop", chunk_size=1,
                    run_dir=run_dir, fault_plan=plan,
                )
            )
        lines = (run_dir / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 3  # two complete rows plus the torn half-line
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[-1])
        resumed = solve_many(instances, CUBE, 50.0, solver="laptop", run_dir=run_dir)
        expected = solve_many(instances, CUBE, 50.0, solver="laptop")
        for a, b in zip(resumed, expected):
            assert a.speeds.tobytes() == b.speeds.tobytes()

    def test_error_rows_round_trip_through_io(self):
        from repro.batch import BatchResult
        from repro.io import batch_result_from_dict, batch_result_to_dict

        row = BatchResult(
            index=3, solver="laptop", n_jobs=5, value=float("nan"),
            energy=float("nan"), speeds=np.zeros(0),
            error_code="worker-timeout", error_message="chunk timed out",
        )
        data = batch_result_to_dict(row, name="inst-3")
        # strict JSON: NaN never reaches the wire
        assert data["value"] is None and data["energy"] is None
        assert data["error"] == {"code": "worker-timeout",
                                 "message": "chunk timed out"}
        json.dumps(data)  # must be serialisable without allow_nan abuse
        back = batch_result_from_dict(data, solver="laptop")
        assert not back.ok and back.error_code == "worker-timeout"
        assert np.isnan(back.value) and np.isnan(back.energy)

    def test_cli_chunk_timeout_flag(self, tmp_path, instances, capsys):
        path = tmp_path / "batch.json"
        save_instances(instances[:2], path)
        code = main(
            ["batch", "--instances", str(path), "--energy", "50",
             "--workers", "2", "--chunk-timeout", "30", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all("error" not in row for row in payload["results"])

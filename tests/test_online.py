"""Tests for the online algorithms (AVR, OA, BKP) against the YDS optimum."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CUBE, Instance, PolynomialPower
from repro.exceptions import InvalidInstanceError
from repro.online import (
    avr_schedule,
    avr_speed_profile,
    bkp_schedule,
    bkp_speed_at,
    execute_profile_edf,
    oa_schedule,
    yds_schedule,
)
from repro.workloads import deadline_instance


class TestAVR:
    def test_profile_is_sum_of_active_rates(self):
        inst = Instance.from_arrays([0.0, 1.0], [2.0, 2.0], deadlines=[4.0, 3.0])
        profile = avr_speed_profile(inst)
        # between t=1 and t=3 both jobs are active: rate 0.5 + 1.0
        middle = [seg for seg in profile if seg[0] == 1.0][0]
        assert middle[2] == pytest.approx(1.5)

    def test_meets_deadlines(self, cube):
        for seed in range(8):
            inst = deadline_instance(6, seed=seed, laxity=2.0)
            schedule = avr_schedule(inst, cube)
            schedule.validate(require_deadlines=True)

    def test_energy_at_least_optimal_and_within_bound(self, cube):
        alpha = cube.alpha
        bound = 2 ** (alpha - 1) * alpha**alpha
        for seed in range(6):
            inst = deadline_instance(5, seed=seed, laxity=3.0)
            avr_energy = avr_schedule(inst, cube).energy
            opt_energy = yds_schedule(inst, cube).energy
            assert avr_energy >= opt_energy * (1 - 1e-9)
            assert avr_energy <= bound * opt_energy * (1 + 1e-9)

    def test_requires_deadlines(self, cube):
        inst = Instance.from_arrays([0.0], [1.0])
        with pytest.raises(InvalidInstanceError):
            avr_speed_profile(inst)


class TestOA:
    def test_meets_deadlines(self, cube):
        for seed in range(8):
            inst = deadline_instance(6, seed=seed, laxity=2.0)
            schedule = oa_schedule(inst, cube)
            schedule.validate(require_deadlines=True)

    def test_energy_at_least_optimal_and_within_bound(self, cube):
        alpha = cube.alpha
        bound = alpha**alpha
        for seed in range(6):
            inst = deadline_instance(5, seed=seed, laxity=3.0)
            oa_energy = oa_schedule(inst, cube).energy
            opt_energy = yds_schedule(inst, cube).energy
            assert oa_energy >= opt_energy * (1 - 1e-9)
            assert oa_energy <= bound * opt_energy * (1 + 1e-9)

    def test_single_release_matches_yds(self, cube):
        # with all jobs released together OA's first plan is final, so OA = YDS
        inst = Instance.from_arrays([0.0, 0.0, 0.0], [1.0, 2.0, 1.0], deadlines=[2.0, 5.0, 9.0])
        assert oa_schedule(inst, cube).energy == pytest.approx(
            yds_schedule(inst, cube).energy, rel=1e-9
        )

    def test_alpha_2(self):
        power = PolynomialPower(2.0)
        inst = deadline_instance(5, seed=11, laxity=2.5)
        oa_energy = oa_schedule(inst, power).energy
        opt = yds_schedule(inst, power).energy
        assert opt <= oa_energy <= 4.0 * opt * (1 + 1e-9)


class TestBKP:
    def test_speed_lower_bounds_essential_intensity(self):
        # single job: at its release the BKP speed is at least e * w / (d - r) / e = w/(d-r)
        inst = Instance.from_arrays([0.0], [2.0], deadlines=[2.0])
        speed = bkp_speed_at(inst, 0.0)
        assert speed >= 1.0 - 1e-12
        assert speed == pytest.approx(math.e * 2.0 / 2.0, rel=1e-12)

    def test_completes_all_work(self, cube):
        for seed in range(4):
            inst = deadline_instance(4, seed=seed, laxity=2.5)
            schedule = bkp_schedule(inst, cube, steps_per_interval=48)
            schedule.validate()  # work conservation + release times

    def test_energy_at_least_optimal(self, cube):
        inst = deadline_instance(5, seed=2, laxity=2.5)
        bkp_energy = bkp_schedule(inst, cube, steps_per_interval=32).energy
        opt_energy = yds_schedule(inst, cube).energy
        assert bkp_energy >= opt_energy * (1 - 1e-6)

    def test_requires_deadlines(self, cube):
        inst = Instance.from_arrays([0.0], [1.0])
        with pytest.raises(InvalidInstanceError):
            bkp_schedule(inst, cube)


class TestProfileExecutor:
    def test_insufficient_profile_raises(self, cube):
        inst = Instance.from_arrays([0.0], [5.0], deadlines=[10.0])
        with pytest.raises(Exception):
            execute_profile_edf(inst, cube, [(0.0, 1.0, 0.1)])

    def test_overlapping_segments_rejected(self, cube):
        inst = Instance.from_arrays([0.0], [1.0], deadlines=[10.0])
        with pytest.raises(InvalidInstanceError):
            execute_profile_edf(inst, cube, [(0.0, 2.0, 1.0), (1.0, 3.0, 1.0)])

    def test_executes_simple_profile(self, cube):
        inst = Instance.from_arrays([0.0, 1.0], [1.0, 1.0], deadlines=[5.0, 4.0])
        schedule = execute_profile_edf(inst, cube, [(0.0, 10.0, 1.0)])
        schedule.validate(require_deadlines=True)
        assert schedule.makespan == pytest.approx(2.0)

"""Tests for the metric registry and its structural properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CUBE,
    Instance,
    MAKESPAN,
    MAX_FLOW,
    METRICS,
    Schedule,
    TOTAL_FLOW,
    TOTAL_WEIGHTED_FLOW,
    evaluate,
)
from repro.core.metrics import makespan, max_flow, total_flow, total_weighted_flow
from repro.exceptions import InvalidInstanceError


@pytest.fixture
def inst():
    return Instance.from_arrays([0.0, 1.0, 2.0], [1.0, 1.0, 1.0], weights=[1.0, 2.0, 3.0])


class TestMetricValues:
    def test_makespan(self, inst):
        assert makespan(np.array([3.0, 4.0, 5.0]), inst) == 5.0

    def test_total_flow(self, inst):
        assert total_flow(np.array([1.0, 3.0, 6.0]), inst) == pytest.approx(1 + 2 + 4)

    def test_weighted_flow(self, inst):
        value = total_weighted_flow(np.array([1.0, 3.0, 6.0]), inst)
        assert value == pytest.approx(1 * 1 + 2 * 2 + 3 * 4)

    def test_max_flow(self, inst):
        assert max_flow(np.array([1.0, 3.0, 6.0]), inst) == pytest.approx(4.0)

    def test_shape_check(self, inst):
        with pytest.raises(InvalidInstanceError):
            makespan(np.array([1.0, 2.0]), inst)


class TestMetricProperties:
    def test_cyclic_theorem_preconditions(self):
        assert MAKESPAN.supports_cyclic_theorem()
        assert TOTAL_FLOW.supports_cyclic_theorem()
        assert not TOTAL_WEIGHTED_FLOW.supports_cyclic_theorem()
        assert not MAX_FLOW.supports_cyclic_theorem()

    def test_symmetry_of_makespan_and_flow(self, inst):
        completions = np.array([2.0, 4.0, 7.0])
        permuted = np.array([7.0, 2.0, 4.0])
        assert makespan(completions, inst) == makespan(permuted, inst)
        assert total_flow(completions, inst) == pytest.approx(total_flow(permuted, inst))

    def test_weighted_flow_not_symmetric(self, inst):
        completions = np.array([2.0, 4.0, 7.0])
        permuted = np.array([7.0, 2.0, 4.0])
        assert total_weighted_flow(completions, inst) != pytest.approx(
            total_weighted_flow(permuted, inst)
        )

    def test_non_decreasing(self, inst):
        completions = np.array([2.0, 4.0, 7.0])
        for metric in METRICS.values():
            bumped = completions.copy()
            bumped[1] += 1.0
            assert metric.from_completions(bumped, inst) >= metric.from_completions(
                completions, inst
            )

    def test_registry_contains_all(self):
        assert set(METRICS) == {"makespan", "total_flow", "total_weighted_flow", "max_flow"}


class TestEvaluate:
    def test_evaluate_by_name_and_object(self, inst):
        sched = Schedule.from_speeds(inst, CUBE, [1.0, 1.0, 1.0])
        assert evaluate("makespan", sched) == pytest.approx(sched.makespan)
        assert evaluate(TOTAL_FLOW, sched) == pytest.approx(sched.total_flow)

    def test_unknown_metric(self, inst):
        sched = Schedule.from_speeds(inst, CUBE, [1.0, 1.0, 1.0])
        with pytest.raises(InvalidInstanceError):
            evaluate("no-such-metric", sched)


class TestEvaluateBatch:
    """`evaluate_batch` vs per-row `from_completions` on the same vectors."""

    def _batch(self):
        rng = np.random.default_rng(5)
        return rng.uniform(1.0, 9.0, size=(6, 3))

    def test_matches_per_row_evaluation_for_all_builtins(self, inst):
        from repro.core.metrics import evaluate_batch

        batch = self._batch()
        for name, metric in METRICS.items():
            fast = evaluate_batch(name, batch, inst)
            slow = np.array([metric.from_completions(row, inst) for row in batch])
            assert np.allclose(fast, slow, rtol=1e-12), name

    def test_custom_metric_falls_back_to_per_row(self, inst):
        from repro.core.metrics import Metric, evaluate_batch

        second_completion = Metric(
            "second_completion",
            symmetric=False,
            non_decreasing=True,
            from_completions=lambda completions, _inst: float(np.sort(completions)[1]),
        )
        batch = self._batch()
        fast = evaluate_batch(second_completion, batch, inst)
        assert np.allclose(fast, np.sort(batch, axis=1)[:, 1], rtol=1e-12)

    def test_shape_and_name_validation(self, inst):
        from repro.core.metrics import evaluate_batch

        with pytest.raises(InvalidInstanceError):
            evaluate_batch("makespan", np.zeros((2, 5)), inst)  # wrong n_jobs
        with pytest.raises(InvalidInstanceError):
            evaluate_batch("makespan", np.zeros(3), inst)  # not 2-D
        with pytest.raises(InvalidInstanceError):
            evaluate_batch("no-such-metric", self._batch(), inst)

"""Tests for the IncMerge laptop-problem solver (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance, PolynomialPower, check_optimal_structure
from repro.exceptions import BudgetError
from repro.makespan import brute_force_laptop, incmerge, incmerge_speeds


class TestFigure1Instance:
    """Values derived by hand from the paper's Figure 1 instance."""

    def test_energy_17_three_blocks(self, fig1, cube):
        result = incmerge(fig1, cube, 17.0)
        assert result.n_blocks == 3
        assert result.makespan == pytest.approx(6.5)
        assert np.allclose(result.speeds, [1.0, 2.0, 2.0])
        assert result.energy == pytest.approx(17.0)

    def test_energy_21_final_job_faster(self, fig1, cube):
        result = incmerge(fig1, cube, 21.0)
        assert result.makespan == pytest.approx(6.0 + 1.0 / np.sqrt(8.0))
        assert result.speeds[2] == pytest.approx(np.sqrt(8.0))

    def test_energy_12_two_blocks(self, fig1, cube):
        # between the breakpoints 8 and 17 the last two jobs form one block
        result = incmerge(fig1, cube, 12.0)
        assert result.n_blocks == 2
        assert result.speeds[1] == pytest.approx(result.speeds[2])
        # block {1,2}: 3 work, energy 12 - 5 = 7 -> speed sqrt(7/3)
        assert result.speeds[1] == pytest.approx(np.sqrt(7.0 / 3.0))
        assert result.makespan == pytest.approx(5.0 + 3.0 / np.sqrt(7.0 / 3.0))

    def test_energy_8_single_block_boundary(self, fig1, cube):
        result = incmerge(fig1, cube, 8.0)
        assert result.makespan == pytest.approx(8.0)

    def test_energy_6_single_block(self, fig1, cube):
        result = incmerge(fig1, cube, 6.0)
        assert result.n_blocks == 1
        # 8 work at speed sqrt(6/8)
        assert result.makespan == pytest.approx(8.0 / np.sqrt(6.0 / 8.0))

    def test_energy_exhausted_exactly(self, fig1, cube):
        for energy in [3.0, 7.5, 13.0, 25.0]:
            result = incmerge(fig1, cube, energy)
            assert result.energy == pytest.approx(energy, rel=1e-9)

    def test_schedule_is_valid_and_structured(self, fig1, cube):
        for energy in [4.0, 8.0, 12.0, 17.0, 30.0]:
            sched = incmerge(fig1, cube, energy).schedule()
            sched.validate(energy_budget=energy * (1 + 1e-9))
            assert check_optimal_structure(sched).satisfies_all


class TestGeneralBehaviour:
    def test_single_job(self, cube):
        inst = Instance.from_arrays([2.0], [3.0])
        result = incmerge(inst, cube, 12.0)
        # speed = sqrt(12/3) = 2 -> makespan = 2 + 1.5
        assert result.makespan == pytest.approx(3.5)
        assert result.n_blocks == 1

    def test_more_energy_never_hurts(self, cube):
        inst = Instance.from_arrays([0, 1, 3, 3.5, 9], [2, 1, 4, 1, 2])
        budgets = np.linspace(1.0, 60.0, 25)
        makespans = [incmerge(inst, cube, float(e)).makespan for e in budgets]
        assert all(b <= a + 1e-9 for a, b in zip(makespans, makespans[1:]))

    def test_block_speeds_non_decreasing(self, cube):
        inst = Instance.from_arrays([0, 1, 3, 3.5, 9], [2, 1, 4, 1, 2])
        for energy in [2.0, 10.0, 40.0]:
            result = incmerge(inst, cube, energy)
            speeds = [b.speed for b in result.blocks]
            assert all(s2 >= s1 * (1 - 1e-12) for s1, s2 in zip(speeds, speeds[1:]))

    def test_coincident_releases_merge(self, cube):
        inst = Instance.from_arrays([0, 0, 0, 2], [1, 1, 1, 1])
        result = incmerge(inst, cube, 10.0)
        sched = result.schedule()
        sched.validate(energy_budget=10.0 * (1 + 1e-9))
        # the three simultaneous jobs cannot each form a fixed block
        assert result.n_blocks <= 2

    def test_matches_brute_force_on_random_instances(self, cube):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(1, 8))
            releases = np.sort(rng.uniform(0, 8, n))
            releases[0] = 0.0
            works = rng.uniform(0.3, 2.5, n)
            inst = Instance.from_arrays(releases, works)
            energy = float(rng.uniform(0.5, 40.0))
            fast = incmerge(inst, cube, energy)
            slow = brute_force_laptop(inst, cube, energy)
            assert fast.makespan == pytest.approx(slow.makespan, rel=1e-9)

    def test_other_alpha_values(self):
        inst = Instance.from_arrays([0, 2, 5], [2, 2, 2])
        for alpha in [1.5, 2.0, 2.5, 4.0]:
            power = PolynomialPower(alpha)
            result = incmerge(inst, power, 9.0)
            assert result.energy == pytest.approx(9.0, rel=1e-9)
            fast = brute_force_laptop(inst, power, 9.0)
            assert result.makespan == pytest.approx(fast.makespan, rel=1e-9)

    def test_invalid_budget(self, fig1, cube):
        with pytest.raises(BudgetError):
            incmerge(fig1, cube, 0.0)
        with pytest.raises(BudgetError):
            incmerge(fig1, cube, -1.0)
        with pytest.raises(BudgetError):
            incmerge(fig1, cube, float("nan"))

    def test_incmerge_speeds_helper(self, fig1, cube):
        speeds = incmerge_speeds(fig1, cube, 17.0)
        assert np.allclose(speeds, [1.0, 2.0, 2.0])

"""Tests for the job / instance model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Instance, Job
from repro.exceptions import InvalidInstanceError


class TestJob:
    def test_basic_construction(self):
        job = Job(index=0, release=1.5, work=2.0)
        assert job.release == 1.5
        assert job.work == 2.0
        assert job.deadline is None
        assert not job.has_deadline

    def test_negative_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(index=0, release=-1.0, work=1.0)

    def test_non_finite_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(index=0, release=math.inf, work=1.0)

    def test_zero_work_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(index=0, release=0.0, work=0.0)

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(index=0, release=0.0, work=-2.0)

    def test_deadline_must_exceed_release(self):
        with pytest.raises(InvalidInstanceError):
            Job(index=0, release=2.0, work=1.0, deadline=2.0)

    def test_valid_deadline(self):
        job = Job(index=0, release=2.0, work=1.0, deadline=5.0)
        assert job.has_deadline
        assert job.deadline == 5.0

    def test_with_deadline_returns_copy(self):
        job = Job(index=3, release=1.0, work=1.0)
        other = job.with_deadline(4.0)
        assert other.deadline == 4.0
        assert job.deadline is None
        assert other.index == 3

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(index=0, release=0.0, work=1.0, weight=0.0)


class TestInstance:
    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([])

    def test_jobs_sorted_and_reindexed(self):
        jobs = [
            Job(index=0, release=5.0, work=1.0),
            Job(index=1, release=1.0, work=2.0),
            Job(index=2, release=3.0, work=3.0),
        ]
        inst = Instance(jobs)
        assert [j.release for j in inst] == [1.0, 3.0, 5.0]
        assert [j.index for j in inst] == [0, 1, 2]
        assert [j.work for j in inst] == [2.0, 3.0, 1.0]

    def test_from_arrays_mismatched_lengths(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_arrays([0, 1], [1.0])

    def test_from_arrays_deadline_length_check(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_arrays([0, 1], [1, 1], deadlines=[5])

    def test_equal_work_constructor(self):
        inst = Instance.equal_work([0, 1, 2], work=2.5)
        assert inst.is_equal_work()
        assert inst.total_work == pytest.approx(7.5)

    def test_derived_arrays(self):
        inst = Instance.from_arrays([0, 2, 5], [1, 2, 3])
        assert np.allclose(inst.releases, [0, 2, 5])
        assert np.allclose(inst.works, [1, 2, 3])
        assert inst.n_jobs == 3
        assert inst.first_release == 0
        assert inst.last_release == 5
        assert inst.total_work == 6

    def test_deadlines_default_to_inf(self):
        inst = Instance.from_arrays([0, 1], [1, 1])
        assert np.all(np.isinf(inst.deadlines))
        assert not inst.has_deadlines()

    def test_with_deadlines_scalar(self):
        inst = Instance.from_arrays([0, 1], [1, 1]).with_deadlines(10.0)
        assert inst.has_deadlines()
        assert np.allclose(inst.deadlines, [10.0, 10.0])

    def test_with_deadlines_vector(self):
        inst = Instance.from_arrays([0, 1], [1, 1]).with_deadlines([5.0, 7.0])
        assert np.allclose(inst.deadlines, [5.0, 7.0])

    def test_with_deadlines_wrong_length(self):
        inst = Instance.from_arrays([0, 1], [1, 1])
        with pytest.raises(InvalidInstanceError):
            inst.with_deadlines([5.0])

    def test_is_equal_work_false(self):
        inst = Instance.from_arrays([0, 1], [1, 2])
        assert not inst.is_equal_work()

    def test_all_released_at_zero(self):
        assert Instance.from_arrays([0, 0], [1, 1]).all_released_at_zero()
        assert not Instance.from_arrays([0, 1], [1, 1]).all_released_at_zero()

    def test_subset(self):
        inst = Instance.from_arrays([0, 2, 5, 7], [1, 2, 3, 4])
        sub = inst.subset([1, 3])
        assert sub.n_jobs == 2
        assert np.allclose(sub.releases, [2, 7])
        assert np.allclose(sub.works, [2, 4])

    def test_subset_out_of_range(self):
        inst = Instance.from_arrays([0, 1], [1, 1])
        with pytest.raises(InvalidInstanceError):
            inst.subset([0, 5])

    def test_subset_empty(self):
        inst = Instance.from_arrays([0, 1], [1, 1])
        with pytest.raises(InvalidInstanceError):
            inst.subset([])

    def test_shifted(self):
        inst = Instance.from_arrays([0, 1], [1, 1], deadlines=[2, 3]).shifted(10.0)
        assert np.allclose(inst.releases, [10, 11])
        assert np.allclose(inst.deadlines, [12, 13])

    def test_container_protocol(self):
        inst = Instance.from_arrays([0, 1, 2], [1, 1, 1])
        assert len(inst) == 3
        assert inst[1].release == 1
        assert [j.index for j in inst] == [0, 1, 2]

    def test_release_tie_preserves_original_order(self):
        inst = Instance.from_arrays([0, 0], [5.0, 7.0])
        assert inst[0].work == 5.0
        assert inst[1].work == 7.0

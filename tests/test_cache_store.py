"""Tests for the pluggable cache-store backends (:mod:`repro.cache_store`)
and the cache race fixes that make sharing one store safe.

Three backend implementations of one contract, plus the regression pins for
the satellite bugfixes: the pid-only temp-path collision, resurrection of
invalidated entries by a racing lock-free store read, and the permanent
disk-degradation latch.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import warnings
from pathlib import Path

import pytest

from repro.api import REGISTRY, SolveRequest
from repro.api import solve as api_solve
from repro.cache import ResultCache
from repro.cache_store import (
    ENTRY_KIND,
    STORE_BACKENDS,
    DiskJSONStore,
    MemoryStore,
    SqliteStore,
    open_store,
)
from repro.core import CUBE
from repro.faults import CACHE_WRITE, FaultPlan, FaultRule
from repro.workloads import poisson_instance

from test_cache import _request_for


def _make_store(backend: str, tmp_path: Path):
    if backend == "memory":
        return MemoryStore()
    if backend == "disk-json":
        return DiskJSONStore(tmp_path / "store")
    return SqliteStore(tmp_path / "cache.sqlite3")


def _entry(key: str, solver: str = "laptop", energy: float = 12.5) -> dict:
    return {
        "kind": ENTRY_KIND,
        "key": key,
        "solver": solver,
        "result": {
            "format": 1,
            "kind": "solve-result",
            "solver": solver,
            "status": "ok",
            "value": 3.25,
            "energy": energy,
            "speeds": [1.0, 0.5, 0.25],
            "extras": {},
            "error": None,
        },
    }


KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


class TestStoreContract:
    """Every backend honours the same read/write/purge semantics."""

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_round_trip_and_miss(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        assert store.read(KEY_A) == (None, False)
        entry = _entry(KEY_A)
        store.write(KEY_A, entry)
        got, corrupt = store.read(KEY_A)
        assert not corrupt
        assert got == entry
        assert list(store.keys()) == [KEY_A]
        store.close()

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_overwrite_is_last_writer_wins(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        store.write(KEY_A, _entry(KEY_A, energy=1.0))
        store.write(KEY_A, _entry(KEY_A, energy=2.0))
        got, _ = store.read(KEY_A)
        assert got["result"]["energy"] == 2.0
        store.close()

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_purge_all_and_by_solver(self, backend, tmp_path):
        store = _make_store(backend, tmp_path)
        store.write(KEY_A, _entry(KEY_A, solver="laptop"))
        store.write(KEY_B, _entry(KEY_B, solver="yds"))
        assert store.purge("yds") == {KEY_B}
        assert store.read(KEY_A)[0] is not None
        assert store.read(KEY_B) == (None, False)
        assert store.purge() == {KEY_A}
        assert list(store.keys()) == []
        store.close()

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_result_cache_rides_any_backend(self, backend, tmp_path):
        request = _request_for("laptop")
        fresh = api_solve(request)
        cache = ResultCache(store=_make_store(backend, tmp_path))
        assert cache.get(request) is None
        cache.put(request, fresh)
        # force the store path: a second cache over the same store
        other = ResultCache(store=cache.store)
        hit = other.get(request)
        assert hit is not None
        assert hit.speeds.tobytes() == fresh.speeds.tobytes()
        assert other.stats().disk_hits == 1

    def test_open_store_by_name(self, tmp_path):
        assert open_store("memory").backend == "memory"
        assert open_store("disk-json", tmp_path / "d").backend == "disk-json"
        sqlite_store = open_store("sqlite", tmp_path / "s")
        assert sqlite_store.backend == "sqlite"
        assert sqlite_store.path == tmp_path / "s" / "cache.sqlite3"
        direct = open_store("sqlite", tmp_path / "own.sqlite3")
        assert direct.path == tmp_path / "own.sqlite3"
        with pytest.raises(ValueError, match="unknown cache backend"):
            open_store("redis", tmp_path)
        with pytest.raises(ValueError, match="needs a directory"):
            open_store("sqlite")

    def test_directory_and_store_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ResultCache(directory=tmp_path, store=MemoryStore())


class TestDiskJSONFormatPinned:
    """The extracted backend writes the exact bytes ResultCache always wrote."""

    def test_on_disk_bytes_unchanged(self, tmp_path):
        request = _request_for("laptop")
        result = api_solve(request)
        cache = ResultCache(directory=tmp_path / "via_dir")
        key = cache.put(request, result)
        path = tmp_path / "via_dir" / key[:2] / f"{key}.json"
        assert path.exists()
        entry = {
            "kind": ENTRY_KIND,
            "key": key,
            "solver": "laptop",
            "result": json.loads(path.read_text())["result"],
        }
        # the file is exactly json.dumps(entry, sort_keys=True) — the format
        # every pre-refactor store on disk already has
        assert path.read_text(encoding="utf-8") == json.dumps(entry, sort_keys=True)

    def test_pre_refactor_layout_reads_back(self, tmp_path):
        # simulate an old store: a file written by the historical code path
        request = _request_for("laptop")
        result = api_solve(request)
        seed = ResultCache(directory=tmp_path)
        seed.put(request, result)
        # an explicit DiskJSONStore over the same directory serves it
        cache = ResultCache(store=DiskJSONStore(tmp_path), max_memory_entries=0)
        hit = cache.get(request)
        assert hit is not None and hit.energy == result.energy


class TestTempPathRace:
    """Satellite bugfix: temp names were pid-only, so concurrent writers of
    one key shared a temp file and could degrade a healthy cache."""

    def test_temp_paths_are_unique_per_call_and_thread(self, tmp_path):
        store = DiskJSONStore(tmp_path)
        target = store._entry_path(KEY_A)
        paths, lock = [], threading.Lock()

        def grab():
            mine = [store._temp_path(target) for _ in range(8)]
            with lock:
                paths.extend(mine)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # pre-fix every one of these was `.{name}.{pid}.tmp` — one single
        # path for all 32 writers; now each write gets its own temp file
        assert len(set(paths)) == len(paths) == 32

    def test_concurrent_same_key_puts_never_degrade(self, tmp_path):
        request = _request_for("laptop")
        result = api_solve(request)
        cache = ResultCache(directory=tmp_path, max_memory_entries=0)
        barrier = threading.Barrier(8)
        errors = []

        def hammer():
            barrier.wait()
            try:
                for _ in range(10):
                    cache.put(request, result)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # degradation would warn -> fail
            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        stats = cache.stats()
        assert stats.disk_errors == 0 and not stats.disk_degraded
        assert cache.get(request) is not None  # the entry survived intact


class _InvalidateDuringRead(DiskJSONStore):
    """A store whose read triggers a concurrent invalidate() — the exact
    interleaving of the resurrection bug, made deterministic."""

    def __init__(self, directory):
        super().__init__(directory)
        self.cache: ResultCache | None = None
        self.armed = False

    def read(self, key):
        entry, corrupt = super().read(key)
        if self.armed:
            self.armed = False
            # runs between the cache's lock-free read and its re-lock —
            # exactly where a concurrent invalidator can land
            self.cache.invalidate()
        return entry, corrupt


class TestInvalidateResurrectionRace:
    """Satellite bugfix: a lock-free disk read racing invalidate() must not
    resurrect the just-invalidated entry into the memory tier."""

    def test_racing_read_does_not_resurrect(self, tmp_path):
        store = _InvalidateDuringRead(tmp_path)
        cache = ResultCache(store=store)
        store.cache = cache
        request = _request_for("laptop")
        cache.put(request, api_solve(request))
        cache._memory.clear()  # force the next get through the store

        store.armed = True
        # pre-fix: the entry read before the invalidate was _remember()ed
        # afterwards and returned — resurrecting what was just dropped
        assert cache.get(request) is None
        # and nothing leaked back into the memory front
        assert len(cache) == 0
        assert cache.get(request) is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.invalidated == 1

    def test_unraced_reads_still_promote_to_memory(self, tmp_path):
        store = _InvalidateDuringRead(tmp_path)  # never armed
        cache = ResultCache(store=store)
        store.cache = cache
        request = _request_for("laptop")
        cache.put(request, api_solve(request))
        cache._memory.clear()
        assert cache.get(request) is not None
        assert cache.stats().disk_hits == 1
        assert cache.get(request) is not None
        assert cache.stats().memory_hits == 1


class TestDiskWriteReprobe:
    """Satellite bugfix: the degradation latch re-probes instead of being
    permanent, so a transient ENOSPC no longer disables persistence forever."""

    def _requests(self, n):
        base = _request_for("laptop")
        return [
            SolveRequest(
                instance=base.instance, power=base.power,
                solver="laptop", budget=20.0 + i,
            )
            for i in range(n)
        ]

    def _plan(self, *indices):
        return FaultPlan(
            rules=(FaultRule(site=CACHE_WRITE, indices=frozenset(indices),
                             message="disk full"),)
        )

    def test_transient_failure_recovers_after_probe(self, tmp_path):
        cache = ResultCache(
            directory=tmp_path, fault_plan=self._plan(0), disk_probe_interval=4
        )
        requests = self._requests(6)
        with pytest.warns(RuntimeWarning, match="disk"):
            cache.put(requests[0], api_solve(requests[0]))  # fails, latches
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for request in requests[1:4]:  # skipped puts (latched, no probe)
                cache.put(request, api_solve(request))
            cache.put(requests[4], api_solve(requests[4]))  # the probe: succeeds
            cache.put(requests[5], api_solve(requests[5]))  # back to normal
        stats = cache.stats()
        assert stats.disk_errors == 1
        assert stats.disk_probes == 1
        assert stats.disk_recoveries == 1
        assert not stats.disk_degraded
        on_disk = {p.stem for p in tmp_path.rglob("*.json")}
        # pre-fix the latch was permanent: nothing ever reached disk again;
        # now the probe put and every later put persist
        assert cache.key_for(requests[4]) in on_disk
        assert cache.key_for(requests[5]) in on_disk
        assert cache.key_for(requests[1]) not in on_disk  # skipped while latched

    def test_persistent_failure_keeps_degraded_without_new_warnings(self, tmp_path):
        cache = ResultCache(
            directory=tmp_path, fault_plan=self._plan(0, 1, 2),
            disk_probe_interval=4,
        )
        requests = self._requests(10)
        with pytest.warns(RuntimeWarning):
            cache.put(requests[0], api_solve(requests[0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # re-probes must not re-warn
            for request in requests[1:10]:
                cache.put(request, api_solve(request))
        stats = cache.stats()
        # puts 4 and 8 probed (ordinals 1 and 2 -> both injected failures)
        assert stats.disk_probes == 2
        assert stats.disk_errors == 3
        assert stats.disk_recoveries == 0
        assert stats.disk_degraded
        assert list(tmp_path.rglob("*.json")) == []

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="disk_probe_interval"):
            ResultCache(directory=tmp_path, disk_probe_interval=0)


class TestSqliteSharedTier:
    """The cross-process story: one WAL database, many caches."""

    def test_two_caches_share_one_store(self, tmp_path):
        store = SqliteStore(tmp_path / "cache.sqlite3")
        cache_a = ResultCache(store=store)
        cache_b = ResultCache(store=store)
        request = _request_for("laptop")
        fresh = api_solve(request)
        cache_a.put(request, fresh)
        hit = cache_b.get(request)
        assert hit is not None
        assert hit.speeds.tobytes() == fresh.speeds.tobytes()
        assert cache_b.stats().disk_hits == 1

    def test_two_stores_on_one_database_file(self, tmp_path):
        # separate SqliteStore instances = separate connections, like two
        # serve processes pointing --cache-dir at the same location
        path = tmp_path / "cache.sqlite3"
        cache_a = ResultCache(store=SqliteStore(path))
        cache_b = ResultCache(store=SqliteStore(path), max_memory_entries=0)
        request = _request_for("yds")
        cache_a.put(request, api_solve(request))
        assert cache_b.get(request) is not None
        assert cache_b.stats().disk_hits == 1

    def test_concurrent_writers_on_separate_connections(self, tmp_path):
        path = tmp_path / "cache.sqlite3"
        requests = [
            SolveRequest(
                instance=poisson_instance(5, seed=i), power=CUBE,
                solver="laptop", budget=25.0,
            )
            for i in range(12)
        ]
        results = [api_solve(r) for r in requests]
        caches = [ResultCache(store=SqliteStore(path)) for _ in range(4)]
        barrier = threading.Barrier(4)
        failures = []

        def writer(cache, chunk):
            barrier.wait()
            try:
                for request, result in chunk:
                    cache.put(request, result)
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        pairs = list(zip(requests, results))
        threads = [
            threading.Thread(target=writer, args=(caches[i], pairs[i::4]))
            for i in range(4)
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert failures == []
        for cache in caches:
            assert cache.stats().disk_errors == 0
        reader = ResultCache(store=SqliteStore(path), max_memory_entries=0)
        for request in requests:
            assert reader.get(request) is not None
        assert reader.stats().disk_hits == len(requests)

    def test_true_cross_process_read(self, tmp_path):
        path = tmp_path / "cache.sqlite3"
        store = SqliteStore(path)
        store.write(KEY_A, _entry(KEY_A, energy=42.5))
        store.close()
        script = (
            "import sys; sys.path.insert(0, sys.argv[2]);"
            "from repro.cache_store import SqliteStore;"
            "entry, corrupt = SqliteStore(sys.argv[1]).read(sys.argv[3]);"
            "assert not corrupt and entry is not None;"
            "print(entry['result']['energy'])"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path), src, KEY_A],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "42.5"

    def test_corrupted_database_degrades_not_crashes(self, tmp_path):
        path = tmp_path / "cache.sqlite3"
        path.write_bytes(b"this is not a sqlite database, not even close\x00" * 8)
        cache = ResultCache(store=SqliteStore(path))
        request = _request_for("laptop")
        # reads are corrupt-misses, writes degrade with the one-time warning
        assert cache.get(request) is None
        assert cache.stats().corrupt_entries == 1
        with pytest.warns(RuntimeWarning, match="disk"):
            cache.put(request, api_solve(request))
        assert cache.stats().disk_degraded
        # the memory front still serves
        assert cache.get(request) is not None

    def test_binary_row_codec_round_trips(self, tmp_path):
        path = tmp_path / "cache.sqlite3"
        request = _request_for("yds")
        fresh = api_solve(request)
        writer = ResultCache(store=SqliteStore(path, codec="binary"))
        writer.put(request, fresh)
        # a JSON-codec store on the same file reads the binary row (codec is
        # recorded per row) and the payload is bit-identical
        reader = ResultCache(store=SqliteStore(path, codec="json"),
                             max_memory_entries=0)
        hit = reader.get(request)
        assert hit is not None
        assert hit.speeds.tobytes() == fresh.speeds.tobytes()

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown envelope codec"):
            SqliteStore(tmp_path / "x.sqlite3", codec="msgpack")

    def test_invalidate_spans_both_caches(self, tmp_path):
        store = SqliteStore(tmp_path / "cache.sqlite3")
        cache_a = ResultCache(store=store)
        cache_b = ResultCache(store=store, max_memory_entries=0)
        request_l = _request_for("laptop")
        request_y = _request_for("yds")
        cache_a.put(request_l, api_solve(request_l))
        cache_a.put(request_y, api_solve(request_y))
        assert cache_a.invalidate(solver="yds") == 1
        assert cache_b.get(request_y) is None
        assert cache_b.get(request_l) is not None

"""Shared Hypothesis strategies and instance builders for the test suites.

``test_kernels.py``, ``test_online_equivalence.py`` and
``test_online_properties.py`` all randomize over the same instance space;
keeping the strategies (and the raw-list -> :class:`Instance` builders) in
one module guarantees the equivalence and property suites keep testing the
same inputs when the bounds evolve.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.core import Instance

__all__ = [
    "hypothesis_settings",
    "releases_strategy",
    "works_strategy",
    "laxities_strategy",
    "energy_strategy",
    "alpha_strategy",
    "deadline_instance_from",
    "plain_instance_from",
]


def hypothesis_settings(max_examples: int = 40) -> settings:
    """The suites' common profile: no deadline, tolerant health checks."""
    return settings(
        max_examples=max_examples,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )


releases_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)
works_strategy = st.lists(
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)
laxities_strategy = st.lists(
    st.floats(min_value=0.3, max_value=5.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)
energy_strategy = st.floats(min_value=0.2, max_value=50.0, allow_nan=False)
alpha_strategy = st.floats(min_value=1.3, max_value=4.0, allow_nan=False)


def deadline_instance_from(releases, works, laxities) -> Instance:
    """Feasible deadline instance from three (possibly unequal) raw lists."""
    n = min(len(releases), len(works), len(laxities))
    rel = sorted(releases[:n])
    rel[0] = 0.0
    deadlines = [r + l for r, l in zip(rel, laxities[:n])]
    return Instance.from_arrays(rel, works[:n], deadlines=deadlines)


def plain_instance_from(releases, works) -> Instance:
    """Deadline-free instance from two (possibly unequal) raw lists."""
    n = min(len(releases), len(works))
    rel = sorted(releases[:n])
    rel[0] = 0.0
    return Instance.from_arrays(rel, works[:n])

"""Tests for the trace-replay engine, machine models and the scenario matrix."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.batch import solve_many
from repro.core import PolynomialPower
from repro.exceptions import InvalidInstanceError
from repro.sim import (
    MACHINE_MODEL_NAMES,
    SIM_ALGORITHMS,
    MachineModel,
    SleepState,
    Trace,
    TraceEvent,
    generate_trace,
    machine_model,
    scenario_matrix,
    sim_report_from_dict,
    sim_report_to_dict,
    simulate,
)


def _gap_trace() -> Trace:
    """Two unit jobs separated by a long idle gap (forces the sleep decision)."""
    return Trace(
        "gap",
        (
            TraceEvent(time=0.0, work=1.0, deadline=1.0),
            TraceEvent(time=10.0, work=1.0, deadline=11.0),
        ),
    )


class TestMachineModel:
    def test_presets_cover_the_scenario_axes(self):
        assert set(MACHINE_MODEL_NAMES) == {
            "pure", "static-sleep", "athlon64", "athlon64-nearest",
        }
        pure = machine_model("pure", alpha=2.0)
        assert pure.alpha == 2.0
        assert pure.static_power == 0.0
        assert pure.sleep is None and pure.levels is None
        athlon = machine_model("athlon64")
        assert athlon.levels is not None
        assert athlon.quantization == "two-level"
        assert machine_model("athlon64-nearest").quantization == "nearest"

    def test_unknown_preset_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown machine model"):
            machine_model("cray-1")

    def test_break_even_time(self):
        machine = MachineModel(
            name="m",
            power=PolynomialPower(3.0),
            static_power=0.05,
            sleep=SleepState(power=0.005, wake_latency=0.2, transition_energy=0.02),
        )
        assert machine.break_even_time == pytest.approx(0.02 / 0.045)
        assert machine.should_sleep(1.0)
        assert not machine.should_sleep(0.1)

    def test_never_sleeps_without_saving(self):
        # sleeping at or above static power can't pay back the transition
        machine = MachineModel(
            name="m",
            power=PolynomialPower(3.0),
            static_power=0.01,
            sleep=SleepState(power=0.01, transition_energy=0.02),
        )
        assert machine.break_even_time == math.inf
        assert not machine.should_sleep(1e9)

    def test_wake_latency_bounds_the_sleep_decision(self):
        machine = MachineModel(
            name="m",
            power=PolynomialPower(3.0),
            static_power=1.0,
            sleep=SleepState(wake_latency=5.0, transition_energy=0.1),
        )
        # break-even is 0.1 but the machine can't wake in time for short gaps
        assert not machine.should_sleep(1.0)
        assert machine.should_sleep(5.0)

    def test_invalid_models_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MachineModel(name="m", power=PolynomialPower(3.0), static_power=-1.0)
        with pytest.raises(InvalidInstanceError):
            MachineModel(
                name="m", power=PolynomialPower(3.0), quantization="stochastic"
            )
        with pytest.raises(InvalidInstanceError):
            SleepState(power=-0.1)

    def test_busy_power_adds_static(self):
        machine = machine_model("static-sleep")
        assert machine.busy_power(2.0) == pytest.approx(8.0 + 0.05)


class TestContinuousMatch:
    """On the pure machine the replay equals the registry solvers exactly."""

    @pytest.mark.parametrize("family", ["day-night", "heavy-tail", "mmpp"])
    @pytest.mark.parametrize("algorithm", SIM_ALGORITHMS)
    def test_energy_matches_the_competitive_pipeline(self, family, algorithm):
        trace = generate_trace(family, 10, 0)
        machine = machine_model("pure", alpha=3.0)
        result = simulate(trace, machine, algorithm)
        power = PolynomialPower(3.0)
        rows = solve_many(
            [trace.to_instance()], power, 0.0, solver=algorithm
        )
        assert result.report.dynamic_energy == rows[0].energy
        assert result.report.energy == rows[0].energy
        bound = solve_many([trace.to_instance()], power, 0.0, solver="yds")
        assert result.report.yds_bound == bound[0].energy
        assert result.report.energy_ratio == pytest.approx(
            rows[0].energy / bound[0].energy, rel=1e-12
        )
        assert result.report.deadline_misses == 0
        assert result.report.sleep_transitions == 0
        assert result.report.static_energy == 0.0

    def test_injected_bound_short_circuits_yds(self):
        trace = generate_trace("mmpp", 8, 1)
        machine = machine_model("pure")
        full = simulate(trace, machine, "oa")
        injected = simulate(trace, machine, "oa", yds_bound=full.report.yds_bound)
        assert injected.report == full.report


class TestSimulate:
    def test_deterministic_replay(self):
        trace = generate_trace("heavy-tail", 9, 4)
        machine = machine_model("athlon64")
        first = simulate(trace, machine, "avr")
        second = simulate(trace, machine, "avr")
        assert first.report == second.report
        assert first.events == second.events
        assert sim_report_to_dict(first.report) == sim_report_to_dict(second.report)

    def test_report_dict_roundtrip(self):
        trace = generate_trace("day-night", 8, 2)
        report = simulate(trace, machine_model("static-sleep"), "oa").report
        assert sim_report_from_dict(sim_report_to_dict(report)) == report
        with pytest.raises(InvalidInstanceError):
            sim_report_from_dict({"kind": "sim"})

    def test_sleep_accounting_on_a_long_gap(self):
        machine = machine_model("static-sleep")
        result = simulate(_gap_trace(), machine, "oa")
        report = result.report
        assert report.sleep_transitions == 1
        assert report.sleep_time == pytest.approx(9.0, abs=1e-6)
        assert report.idle_time == pytest.approx(0.0, abs=1e-6)
        assert report.sleep_energy == pytest.approx(
            machine.sleep.power * report.sleep_time
        )
        assert report.transition_energy == pytest.approx(
            machine.sleep.transition_energy
        )
        assert report.static_energy == pytest.approx(
            machine.static_power * (report.busy_time + report.idle_time)
        )
        assert report.energy == pytest.approx(
            report.dynamic_energy
            + report.static_energy
            + report.sleep_energy
            + report.transition_energy
        )
        kinds = [e.kind for e in result.events]
        assert kinds.count("sleep") == 1 and kinds.count("wake") == 1

    def test_short_gap_idles_instead_of_sleeping(self):
        trace = Trace(
            "short-gap",
            (
                TraceEvent(time=0.0, work=1.0, deadline=1.0),
                TraceEvent(time=1.2, work=1.0, deadline=2.2),
            ),
        )
        report = simulate(trace, machine_model("static-sleep"), "oa").report
        assert report.sleep_transitions == 0
        assert report.idle_time > 0.0
        assert report.sleep_time == 0.0

    def test_quantized_speeds_come_from_the_ladder(self):
        machine = machine_model("athlon64")
        levels = machine.levels.levels
        for algorithm in SIM_ALGORITHMS:
            result = simulate(generate_trace("day-night", 10, 1), machine, algorithm)
            for piece in result.schedule.pieces:
                assert any(
                    math.isclose(piece.speed, level, rel_tol=1e-9)
                    for level in levels
                ), f"{algorithm} ran at off-ladder speed {piece.speed}"

    def test_nearest_policy_records_misses_instead_of_raising(self):
        # nearest rounding may under-provision; the replay must complete and
        # report the misses rather than raise InfeasibleError
        machine = machine_model("athlon64-nearest")
        for seed in range(3):
            trace = generate_trace("heavy-tail", 10, seed)
            report = simulate(trace, machine, "avr").report
            assert report.deadline_misses >= 0
            assert report.energy > 0.0
            if report.deadline_misses:
                assert report.max_lateness > 0.0

    def test_event_stream_is_sorted_and_complete(self):
        trace = generate_trace("mmpp", 8, 0)
        result = simulate(trace, machine_model("athlon64"), "oa")
        times = [e.time for e in result.events]
        assert times == sorted(times)
        kinds = [e.kind for e in result.events]
        assert kinds.count("arrival") == trace.n_events
        assert kinds.count("completion") == trace.n_events
        assert result.report.replans == len(
            {e.time for e in trace.events}
        )
        assert result.report.n_events == len(result.events)

    def test_instance_input_and_missing_deadlines(self):
        inst = generate_trace("day-night", 6, 0).to_instance()
        assert simulate(inst, machine_model("pure"), "oa").report.n_jobs == 6
        open_trace = Trace("open", (TraceEvent(time=0.0, work=1.0),))
        with pytest.raises(InvalidInstanceError, match="deadline"):
            simulate(open_trace, machine_model("pure"), "oa")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown simulation"):
            simulate(_gap_trace(), machine_model("pure"), "lru")


class TestScenarioMatrix:
    def test_small_grid_shape_and_determinism(self, tmp_path):
        kwargs = dict(
            algorithms=("oa", "avr"),
            machines=("pure", "athlon64"),
            families=("day-night",),
            sizes=(6,),
            seeds=2,
            alpha=3.0,
        )
        first = scenario_matrix(**kwargs)
        second = scenario_matrix(**kwargs)
        assert first == second
        assert first["kind"] == "sim-matrix"
        assert len(first["cells"]) == 2 * 2 * 1 * 1 * 2
        assert len(first["summary"]) == 2 * 2 * 1
        for row in first["summary"]:
            assert row["cells"] == 2
            assert row["mean_ratio"] <= row["max_ratio"] + 1e-12

    def test_pure_rows_match_the_registry(self):
        payload = scenario_matrix(
            algorithms=("oa",),
            machines=("pure",),
            families=("mmpp",),
            sizes=(8,),
            seeds=1,
            alpha=3.0,
        )
        (cell,) = payload["cells"]
        trace = generate_trace("mmpp", 8, 0)
        rows = solve_many(
            [trace.to_instance()], PolynomialPower(3.0), 0.0, solver="oa"
        )
        assert cell["energy"] == rows[0].energy
        assert cell["family"] == "mmpp" and cell["seed"] == 0

    def test_cache_is_reused_for_bounds(self, tmp_path):
        from repro.cache import ResultCache

        cache = ResultCache(directory=tmp_path / "cache")
        kwargs = dict(
            algorithms=("oa",),
            machines=("pure",),
            families=("day-night",),
            sizes=(6,),
            seeds=1,
            alpha=3.0,
            cache=cache,
        )
        cold = scenario_matrix(**kwargs)
        misses = cache.stats().misses
        warm = scenario_matrix(**kwargs)
        assert warm == cold
        assert cache.stats().misses == misses  # second run hit every bound
        assert cache.stats().hits > 0

    def test_invalid_grids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            scenario_matrix(algorithms=("lru",))
        with pytest.raises(InvalidInstanceError):
            scenario_matrix(families=("tides",))
        with pytest.raises(InvalidInstanceError):
            scenario_matrix(machines=("cray-1",))
        with pytest.raises(InvalidInstanceError):
            scenario_matrix(seeds=0)
        with pytest.raises(InvalidInstanceError):
            scenario_matrix(sizes=())

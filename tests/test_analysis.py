"""Tests for the analysis helpers (derivatives, breakpoints, tables, plots)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ascii_plot,
    detect_breakpoints,
    find_crossover,
    finite_difference,
    format_table,
    relative_error_summary,
    sample_function,
    second_finite_difference,
    to_csv,
    write_csv,
)
from repro.core import CUBE
from repro.exceptions import InvalidInstanceError
from repro.makespan import makespan_frontier
from repro.workloads import figure1_instance


class TestDerivatives:
    def test_finite_difference_on_quadratic(self):
        grid = np.linspace(0, 5, 200)
        values = grid**2
        deriv = finite_difference(grid, values)
        assert np.allclose(deriv[1:-1], 2 * grid[1:-1], atol=1e-3)

    def test_second_difference_on_cubic(self):
        grid = np.linspace(1, 3, 400)
        second = second_finite_difference(grid, grid**3)
        assert np.allclose(second[5:-5], 6 * grid[5:-5], rtol=1e-2)

    def test_numeric_matches_analytic_frontier_derivatives(self):
        inst = figure1_instance()
        curve = makespan_frontier(inst, CUBE)
        grid = np.linspace(9.0, 16.0, 400)  # inside one configuration
        values = curve.sample(grid)
        numeric = finite_difference(grid, values)
        analytic = curve.sample_derivative(grid)
        assert np.allclose(numeric[2:-2], analytic[2:-2], rtol=1e-3)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            finite_difference(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))

    def test_sample_function(self):
        values = sample_function(lambda x: 2 * x, [1, 2, 3])
        assert values.tolist() == [2.0, 4.0, 6.0]


class TestBreakpointDetection:
    def test_recovers_figure1_breakpoints(self):
        inst = figure1_instance()
        curve = makespan_frontier(inst, CUBE)
        grid = np.linspace(6.0, 21.0, 1500)
        second = curve.sample_second_derivative(grid)
        found = detect_breakpoints(grid, second)
        assert len(found) >= 2
        assert min(abs(b - 8.0) for b in found) < 0.1
        assert min(abs(b - 17.0) for b in found) < 0.1

    def test_no_breakpoints_on_smooth_curve(self):
        grid = np.linspace(1, 10, 300)
        second = 1.0 / grid  # smooth
        assert detect_breakpoints(grid, second) == []


class TestCrossover:
    def test_linear_crossover(self):
        grid = np.linspace(0, 10, 101)
        a = 10 - grid
        b = grid
        crossover = find_crossover(grid, a, b)
        assert crossover == pytest.approx(5.0, abs=1e-9)

    def test_no_crossover(self):
        grid = np.linspace(0, 10, 11)
        assert find_crossover(grid, grid + 5, grid) is None


class TestErrorSummary:
    def test_summary(self):
        grid = np.array([1.0, 2.0, 3.0])
        reference = np.array([1.0, 2.0, 4.0])
        candidate = np.array([1.0, 2.2, 4.0])
        summary = relative_error_summary(grid, reference, candidate)
        assert summary.max_relative_error == pytest.approx(0.1)
        assert summary.argmax == 2.0


class TestTablesAndPlots:
    def test_format_table(self):
        text = format_table(["x", "value"], [[1, 2.5], [10, 3.25]], title="demo")
        assert "demo" in text
        assert "value" in text
        assert "3.25" in text

    def test_format_table_mismatched_row(self):
        with pytest.raises(InvalidInstanceError):
            format_table(["a", "b"], [[1]])

    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, "x,y"], [2, "z"]])
        content = path.read_text()
        assert content.splitlines()[0] == "a,b"
        assert '"x,y"' in content
        assert to_csv(["a"], [[1]]).strip() == "a\n1".strip()

    def test_ascii_plot(self):
        text = ascii_plot([0, 1, 2, 3], [0, 1, 4, 9], width=30, height=8, title="parabola")
        assert "parabola" in text
        assert "*" in text
        with pytest.raises(InvalidInstanceError):
            ascii_plot([], [])
        with pytest.raises(InvalidInstanceError):
            ascii_plot([1, 2], [1, 2], width=5, height=2)

"""Tests for the makespan baselines (uniform speed, quadratic solver, YDS server)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance
from repro.exceptions import BudgetError
from repro.makespan import (
    incmerge,
    minimum_energy_for_makespan,
    quadratic_laptop,
    server_energy_via_yds,
    uniform_speed_schedule,
)


class TestUniformSpeedBaseline:
    def test_respects_budget(self, fig1, cube):
        for energy in [4.0, 10.0, 25.0]:
            sched = uniform_speed_schedule(fig1, cube, energy)
            sched.validate(energy_budget=energy * (1 + 1e-9))
            assert sched.energy == pytest.approx(energy, rel=1e-9)

    def test_never_beats_incmerge(self, cube):
        rng = np.random.default_rng(21)
        for _ in range(10):
            n = int(rng.integers(2, 8))
            releases = np.sort(rng.uniform(0, 8, n))
            releases[0] = 0.0
            works = rng.uniform(0.3, 2.0, n)
            inst = Instance.from_arrays(releases, works)
            energy = float(rng.uniform(1.0, 30.0))
            baseline = uniform_speed_schedule(inst, cube, energy).makespan
            optimal = incmerge(inst, cube, energy).makespan
            assert baseline >= optimal - 1e-9

    def test_strictly_worse_when_releases_are_spread(self, fig1, cube):
        # at a generous budget the uniform baseline wastes energy racing ahead
        # of the later releases and then idling
        baseline = uniform_speed_schedule(fig1, cube, 17.0).makespan
        optimal = incmerge(fig1, cube, 17.0).makespan
        assert baseline > optimal + 1e-6

    def test_invalid_budget(self, fig1, cube):
        with pytest.raises(BudgetError):
            uniform_speed_schedule(fig1, cube, -1.0)


class TestQuadraticBaseline:
    def test_identical_output_to_incmerge(self, fig1, cube):
        for energy in [5.0, 12.0, 21.0]:
            quad = quadratic_laptop(fig1, cube, energy)
            fast = incmerge(fig1, cube, energy)
            assert quad.makespan == pytest.approx(fast.makespan)
            assert np.allclose(quad.speeds, fast.speeds)

    def test_random_agreement(self, cube):
        rng = np.random.default_rng(22)
        for _ in range(5):
            n = int(rng.integers(1, 7))
            releases = np.sort(rng.uniform(0, 5, n))
            releases[0] = 0.0
            inst = Instance.from_arrays(releases, rng.uniform(0.2, 2.0, n))
            energy = float(rng.uniform(1.0, 20.0))
            assert quadratic_laptop(inst, cube, energy).makespan == pytest.approx(
                incmerge(inst, cube, energy).makespan
            )


class TestYDSServerBaseline:
    def test_agrees_with_frontier_inversion(self, fig1, cube):
        for target in [6.3, 6.5, 7.5, 9.0, 14.0]:
            yds_energy = server_energy_via_yds(fig1, cube, target)
            frontier_energy = minimum_energy_for_makespan(fig1, cube, target)
            assert yds_energy == pytest.approx(frontier_energy, rel=1e-9)

    def test_random_agreement(self, cube):
        rng = np.random.default_rng(23)
        for _ in range(8):
            n = int(rng.integers(1, 7))
            releases = np.sort(rng.uniform(0, 6, n))
            releases[0] = 0.0
            inst = Instance.from_arrays(releases, rng.uniform(0.3, 2.0, n))
            target = float(inst.last_release + rng.uniform(0.5, 6.0))
            assert server_energy_via_yds(inst, cube, target) == pytest.approx(
                minimum_energy_for_makespan(inst, cube, target), rel=1e-7
            )

    def test_target_before_last_release_rejected(self, fig1, cube):
        with pytest.raises(BudgetError):
            server_energy_via_yds(fig1, cube, 5.0)

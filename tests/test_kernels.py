"""Equivalence suite for the vectorized kernel layer (:mod:`repro.core.kernels`).

Every vectorized hot path introduced by the kernel layer is pinned to a
retained scalar reference implementation on randomized (Hypothesis)
instances:

* ``yds_speeds`` (prefix-sum critical-interval kernel) vs
  ``yds_speeds_reference`` (the classic member-set re-enumeration),
* ``incmerge`` (bulk-precomputed block energies) vs ``quadratic_laptop``
  and ``brute_force_laptop`` (structurally independent solvers),
* ``TradeoffCurve.sample*`` / ``segment_at`` (searchsorted + grouped array
  evaluation) vs the per-point scalar entry points,
* ``Schedule.from_speeds`` / aggregation (prefix-max timing recurrence,
  bincount energy) vs a direct piece-by-piece replay,
* the low-level kernels themselves against their obvious NumPy/Python
  counterparts.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given

from _strategies import (
    alpha_strategy,
    deadline_instance_from as _deadline_instance,
    energy_strategy,
    hypothesis_settings,
    laxities_strategy,
    plain_instance_from as _plain_instance,
    releases_strategy,
    works_strategy,
)
from repro.core import CUBE, Instance, PolynomialPower
from repro.core.kernels import (
    chain_start_times,
    energy_eval,
    max_density_interval,
    power_eval,
    prefix_sums,
)
from repro.core.power import AffinePolynomialPower
from repro.makespan import brute_force_laptop, incmerge, makespan_frontier, quadratic_laptop
from repro.online import yds_speeds, yds_speeds_reference

TOL = 1e-9

common_settings = hypothesis_settings(max_examples=40)


# ----------------------------------------------------------------------
# low-level kernels
# ----------------------------------------------------------------------


@common_settings
@given(works=works_strategy)
def test_prefix_sums_matches_python(works):
    out = prefix_sums(np.array(works))
    assert out[0] == 0.0
    for i in range(len(works) + 1):
        assert out[i] == pytest.approx(sum(works[:i]), rel=1e-12, abs=1e-12)


@common_settings
@given(works=works_strategy, alpha=alpha_strategy)
def test_power_and_energy_eval_match_scalar_methods(works, alpha):
    power = PolynomialPower(alpha)
    speeds = np.array(works)  # any positive array works as speeds
    expect_power = [power.power(float(s)) for s in speeds]
    assert np.allclose(power_eval(power, speeds), expect_power, rtol=1e-12)
    expect_energy = [power.energy(float(w), float(s)) for w, s in zip(works, speeds)]
    assert np.allclose(energy_eval(power, np.array(works), speeds), expect_energy, rtol=1e-12)


def test_energy_eval_general_power_accepts_2d_regression():
    """Pinned falsifying input for the non-polynomial 2-D ``energy_eval`` bug.

    The general-power fallback zipped the raw arrays, so 2-D input paired
    whole *rows* and ``float(row)`` raised ``TypeError``.  The batched tier
    evaluates padded ``(batch, n)`` arrays through this exact branch, so the
    fallback must flatten (and broadcast) before the scalar loop.
    """
    power = AffinePolynomialPower(exponent=3.0, coefficient=1.0, static=0.5)
    assert not power.is_polynomial  # must exercise the fallback branch
    # all speeds above the affine model's critical speed (~0.63)
    works = np.array([[1.0, 2.0, 0.5], [0.25, 3.0, 1.5]])
    speeds = np.array([[2.0, 1.0, 4.0], [1.0, 1.5, 2.0]])
    out = energy_eval(power, works, speeds)
    assert out.shape == (2, 3)
    for i in range(2):
        for j in range(3):
            assert out[i, j] == pytest.approx(
                power.energy(float(works[i, j]), float(speeds[i, j])), rel=1e-12
            )
    # broadcasting (one speed row against a 2-D work grid) follows numpy rules
    broad = energy_eval(power, works, speeds[0])
    assert broad.shape == (2, 3)
    assert broad[1, 2] == pytest.approx(
        power.energy(float(works[1, 2]), float(speeds[0, 2])), rel=1e-12
    )


def test_chain_start_times_empty_input_regression():
    """Pinned falsifying input for the empty-chain ``IndexError`` bug.

    ``chain_start_times([], [], t0)`` indexed ``adjusted[0]`` unconditionally;
    an empty chain (e.g. a processor that was assigned no jobs) must come
    back as an empty ``(starts, ends)`` pair instead of raising.
    """
    starts, ends = chain_start_times(np.empty(0), np.empty(0), 3.5)
    assert starts.shape == (0,)
    assert ends.shape == (0,)
    assert starts is not ends  # callers may mutate one without the other
    # the downstream Schedule.from_speeds path over the same recurrence is
    # unchanged for the smallest real chain
    from repro.core.schedule import Schedule

    inst = Instance.from_arrays([1.0], [2.0])
    sched = Schedule.from_speeds(inst, CUBE, np.array([4.0]))
    assert sched.pieces[0].start == pytest.approx(1.0, rel=1e-12)
    assert sched.pieces[0].end == pytest.approx(1.5, rel=1e-12)


@common_settings
@given(releases=releases_strategy, works=works_strategy)
def test_chain_start_times_matches_sequential_replay(releases, works):
    inst = _plain_instance(releases, works)
    durations = inst.works  # pretend speed 1
    starts, ends = chain_start_times(inst.releases, durations, inst.first_release)
    clock = inst.first_release
    for i in range(inst.n_jobs):
        begin = max(clock, inst.releases[i])
        assert starts[i] == pytest.approx(begin, rel=1e-12, abs=1e-12)
        clock = begin + durations[i]
        assert ends[i] == pytest.approx(clock, rel=1e-12, abs=1e-12)


@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_max_density_interval_matches_pairwise_scan(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    r, d, w = inst.releases, inst.deadlines, inst.works
    found = max_density_interval(r, d, w)
    assert found is not None
    t1, t2, density, members = found
    # brute-force the best density over the critical grid
    best = -1.0
    for a in sorted(set(r)):
        for b in sorted(set(d)):
            if b <= a:
                continue
            mask = (r >= a) & (d <= b)
            if not mask.any():
                continue
            best = max(best, float(w[mask].sum()) / (b - a))
    assert density == pytest.approx(best, rel=TOL)
    assert np.array_equal(members, (r >= t1) & (d <= t2))


# ----------------------------------------------------------------------
# YDS: vectorized vs retained reference
# ----------------------------------------------------------------------


@common_settings
@given(releases=releases_strategy, works=works_strategy, laxities=laxities_strategy)
def test_yds_vectorized_matches_reference(releases, works, laxities):
    inst = _deadline_instance(releases, works, laxities)
    fast = yds_speeds(inst)
    slow = yds_speeds_reference(inst)
    assert np.allclose(fast.speeds, slow.speeds, rtol=TOL, atol=TOL)
    assert len(fast.critical_intervals) == len(slow.critical_intervals)
    # exact interval endpoints may legitimately differ between the two when
    # several intervals are critical at (numerically) the same density, so
    # compare the density sequences, which are the quantities that define the
    # speeds.
    fast_densities = sorted(i for _, _, i in fast.critical_intervals)
    slow_densities = sorted(i for _, _, i in slow.critical_intervals)
    assert np.allclose(fast_densities, slow_densities, rtol=TOL, atol=TOL)


def test_yds_vectorized_matches_reference_midsize():
    from repro.workloads import deadline_instance

    for seed in range(3):
        inst = deadline_instance(60, seed=seed, laxity=3.0)
        fast = yds_speeds(inst)
        slow = yds_speeds_reference(inst)
        assert np.allclose(fast.speeds, slow.speeds, rtol=TOL, atol=TOL)


# ----------------------------------------------------------------------
# IncMerge on the kernel layer vs independent solvers
# ----------------------------------------------------------------------


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    energy=energy_strategy,
    alpha=alpha_strategy,
)
def test_incmerge_matches_quadratic_solver(releases, works, energy, alpha):
    inst = _plain_instance(releases, works)
    power = PolynomialPower(alpha)
    fast = incmerge(inst, power, energy)
    slow = quadratic_laptop(inst, power, energy)
    assert fast.makespan == pytest.approx(slow.makespan, rel=TOL)
    assert np.allclose(fast.speeds, slow.speeds, rtol=TOL)
    assert fast.energy == pytest.approx(energy, rel=1e-8)


@common_settings
@given(releases=releases_strategy, works=works_strategy, energy=energy_strategy)
def test_incmerge_matches_brute_force(releases, works, energy):
    inst = _plain_instance(releases, works)
    assume(inst.n_jobs <= 6)
    fast = incmerge(inst, CUBE, energy)
    slow = brute_force_laptop(inst, CUBE, energy)
    assert fast.makespan == pytest.approx(slow.makespan, rel=TOL)


# ----------------------------------------------------------------------
# TradeoffCurve vectorized sampling vs scalar evaluation
# ----------------------------------------------------------------------


@common_settings
@given(
    releases=releases_strategy,
    works=works_strategy,
    alpha=alpha_strategy,
)
def test_curve_sampling_matches_scalar_path(releases, works, alpha):
    inst = _plain_instance(releases, works)
    power = PolynomialPower(alpha)
    curve = makespan_frontier(inst, power)
    grid = curve.energy_grid(64)
    sampled = curve.sample(grid)
    scalar = np.array([curve.segment_at(float(e)).value(float(e)) for e in grid])
    assert np.allclose(sampled, scalar, rtol=TOL)
    d1 = curve.sample_derivative(grid)
    scalar_d1 = np.array([curve.segment_at(float(e)).derivative_at(float(e)) for e in grid])
    assert np.allclose(d1, scalar_d1, rtol=TOL)
    d2 = curve.sample_second_derivative(grid)
    scalar_d2 = np.array(
        [curve.segment_at(float(e)).second_derivative_at(float(e)) for e in grid]
    )
    assert np.allclose(d2, scalar_d2, rtol=TOL)


def test_segment_at_endpoint_noise_regression():
    """Pinned hypothesis falsifying example for the endpoint-noise bug.

    Cascading ``fixed_energy`` by repeated subtraction left a ~6e-12
    cancellation residual once every fixed block was popped, so the cheapest
    configuration rejected budgets between 0 and the residual; the curve's
    own ``energy_grid`` starts inside that band and construction raised
    ``BudgetError`` from ``_check_monotone``.
    """
    inst = _plain_instance([0.0, 3.0, 2.984375], [0.109375, 3.0, 1.0])
    curve = makespan_frontier(inst, CUBE)
    # the empty fixed prefix must contribute exactly zero energy
    assert curve.segments[0].payload.fixed_energy == 0.0
    for e in curve.energy_grid(32):
        fast = curve.segment_at(float(e))
        assert math.isfinite(fast.value(float(e)))
        assert math.isfinite(curve.value(float(e)))


def test_segment_at_clamps_endpoint_noise():
    """Energies within 1e-9 relative noise of either endpoint are clamped in."""
    inst = _plain_instance([0.0, 5.0, 6.0], [5.0, 2.0, 1.0])
    curve = makespan_frontier(inst, CUBE)
    lo = curve.min_energy
    below = lo - 1e-10 * max(1.0, lo)
    assert curve.segment_at(below) is curve.segments[0]
    sampled = curve.sample([below + 1.0])  # vectorised path shares the clamp
    assert np.isfinite(sampled).all()
    from repro.exceptions import BudgetError

    with pytest.raises(BudgetError):
        curve.segment_at(lo - 1.0)


@common_settings
@given(releases=releases_strategy, works=works_strategy)
def test_segment_at_matches_linear_scan(releases, works):
    inst = _plain_instance(releases, works)
    curve = makespan_frontier(inst, CUBE)
    for e in curve.energy_grid(32):
        fast = curve.segment_at(float(e))
        slow = next(
            seg for seg in curve.segments if float(e) <= seg.energy_hi + 1e-12
        )
        assert fast is slow


# ----------------------------------------------------------------------
# Schedule construction/aggregation vs piece-by-piece replay
# ----------------------------------------------------------------------


@common_settings
@given(releases=releases_strategy, works=works_strategy, energy=energy_strategy)
def test_schedule_aggregation_matches_replay(releases, works, energy):
    inst = _plain_instance(releases, works)
    sched = incmerge(inst, CUBE, energy).schedule()
    # energy: replay every piece through the scalar power function
    replay_energy = sum(CUBE.power(p.speed) * p.duration for p in sched.pieces)
    assert sched.energy == pytest.approx(replay_energy, rel=1e-12)
    # completion times: last piece end per job
    for j in range(inst.n_jobs):
        ends = [p.end for p in sched.pieces if p.job == j]
        starts = [p.start for p in sched.pieces if p.job == j]
        assert sched.completion_times[j] == pytest.approx(max(ends), rel=1e-12)
        assert sched.start_times[j] == pytest.approx(min(starts), rel=1e-12)
    # per-job speeds: work-weighted average
    for j, s in enumerate(sched.speeds):
        pieces = [p for p in sched.pieces if p.job == j]
        expect = sum(p.work for p in pieces) / sum(p.duration for p in pieces)
        assert s == pytest.approx(expect, rel=1e-12)
    assert sched.energy_by_processor().sum() == pytest.approx(sched.energy, rel=1e-12)
    assert sched.processor_completion_times()[0] == pytest.approx(
        sched.makespan, rel=1e-12
    )

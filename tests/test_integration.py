"""End-to-end integration tests across subpackages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import detect_breakpoints, finite_difference
from repro.core import CUBE, Instance, profile_from_schedule
from repro.discrete import quantize_schedule, uniform_levels
from repro.flow import equal_work_flow_laptop, solve_optimality_system
from repro.makespan import (
    incmerge,
    makespan_frontier,
    minimum_energy_for_makespan,
    uniform_speed_schedule,
)
from repro.multi import (
    decide_partition_via_scheduling,
    has_perfect_partition_dp,
    multiprocessor_flow_equal_work,
    multiprocessor_makespan_equal_work,
)
from repro.online import avr_schedule, oa_schedule, yds_schedule
from repro.workloads import (
    FIGURE1_BREAKPOINTS,
    bursty_instance,
    deadline_instance,
    equal_work_instance,
    figure1_instance,
    partition_elements,
    theorem8_instance,
)


class TestFigure1Pipeline:
    """Regenerate the data behind Figures 1-3 and check it against the paper."""

    def test_full_curve_regeneration(self):
        inst = figure1_instance()
        curve = makespan_frontier(inst, CUBE)

        # breakpoints exactly as stated in Section 3.2
        assert curve.breakpoints == pytest.approx(list(FIGURE1_BREAKPOINTS))

        # sample the plotted range and verify shape properties visible in Fig. 1
        grid = np.linspace(6.0, 21.0, 300)
        makespans = curve.sample(grid)
        assert makespans[0] == pytest.approx(9.2376, rel=1e-3)
        assert makespans[-1] == pytest.approx(6.3536, rel=1e-3)
        assert np.all(np.diff(makespans) < 0)

        # Figure 2: derivative is continuous (no visible kink) and negative
        derivative = curve.sample_derivative(grid)
        numeric = finite_difference(grid, makespans)
        assert np.allclose(derivative[2:-2], numeric[2:-2], rtol=5e-2)

        # Figure 3: second derivative positive with jumps at the breakpoints
        second = curve.sample_second_derivative(grid)
        found = detect_breakpoints(grid, second)
        assert any(abs(b - 8.0) < 0.2 for b in found)
        assert any(abs(b - 17.0) < 0.2 for b in found)

    def test_energy_budget_sweep_consistency(self):
        inst = figure1_instance()
        curve = makespan_frontier(inst, CUBE)
        for energy in np.linspace(6.5, 20.5, 8):
            laptop = incmerge(inst, CUBE, float(energy))
            assert laptop.makespan == pytest.approx(curve.value(float(energy)), rel=1e-9)
            server = minimum_energy_for_makespan(inst, CUBE, laptop.makespan)
            assert server == pytest.approx(float(energy), rel=1e-8)


class TestTheorem8Pipeline:
    def test_polynomial_and_solver_agree_inside_window(self):
        # inside the measured tight window the structural system and the
        # convex solver describe the same optimum
        system = solve_optimality_system(11.0)
        solver = equal_work_flow_laptop(theorem8_instance(), CUBE, 11.0)
        assert solver.flow == pytest.approx(system.flow, rel=5e-3)
        assert solver.completion_times[1] == pytest.approx(1.0, abs=5e-3)


class TestPartitionPipeline:
    def test_reduction_decides_partition(self):
        for seed in range(3):
            yes = partition_elements(6, seed=seed, planted_yes=True)
            no = partition_elements(6, seed=seed, planted_yes=False)
            assert decide_partition_via_scheduling(yes) == has_perfect_partition_dp(yes)
            assert decide_partition_via_scheduling(no) == has_perfect_partition_dp(no)


class TestMultiprocessorPipeline:
    def test_equal_work_cluster(self):
        inst = equal_work_instance(10, seed=3, arrival_rate=2.0)
        for m in (2, 4):
            makespan_result = multiprocessor_makespan_equal_work(inst, CUBE, m, 12.0)
            sched = makespan_result.schedule(inst, CUBE)
            sched.validate(energy_budget=12.0 * (1 + 1e-6))
            flow_result = multiprocessor_flow_equal_work(inst, CUBE, m, 12.0)
            fsched = flow_result.schedule(inst, CUBE)
            fsched.validate(energy_budget=12.0 * (1 + 1e-5))
            # flow-optimal schedules never have better makespan objective than
            # the makespan-optimal schedule and vice versa
            assert fsched.total_flow <= sched.total_flow + 1e-6
            assert sched.makespan <= fsched.makespan + 1e-6


class TestUniprocessorStack:
    def test_baseline_vs_optimal_vs_quantized(self):
        inst = bursty_instance(10, seed=4, burst_size=3, gap=4.0)
        energy = 25.0
        optimal = incmerge(inst, CUBE, energy)
        baseline = uniform_speed_schedule(inst, CUBE, energy)
        assert optimal.makespan <= baseline.makespan + 1e-9

        sched = optimal.schedule()
        profile = profile_from_schedule(sched)
        assert profile.total_work == pytest.approx(inst.total_work, rel=1e-9)
        assert profile.energy(CUBE) == pytest.approx(sched.energy, rel=1e-9)

        levels = uniform_levels(10, max_speed=float(np.max(optimal.speeds)) * 1.01)
        quantized = quantize_schedule(sched, levels)
        quantized.schedule.validate()
        assert quantized.energy_overhead >= -1e-9


class TestOnlinePipeline:
    def test_online_algorithms_feasible_and_ordered(self):
        inst = deadline_instance(7, seed=9, laxity=2.5)
        opt = yds_schedule(inst, CUBE)
        avr = avr_schedule(inst, CUBE)
        oa = oa_schedule(inst, CUBE)
        for schedule in (opt, avr, oa):
            schedule.validate(require_deadlines=True)
        assert opt.energy <= oa.energy * (1 + 1e-9)
        assert opt.energy <= avr.energy * (1 + 1e-9)

"""Tests for the workload generators and paper instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.multi import has_perfect_partition_dp
from repro.workloads import (
    FIGURE1_BREAKPOINTS,
    THEOREM8_ENERGY_BUDGET,
    bursty_instance,
    day_night_instance,
    deadline_instance,
    equal_work_instance,
    figure1_instance,
    figure1_power,
    heavy_tail_instance,
    mmpp_instance,
    partition_elements,
    poisson_instance,
    theorem8_instance,
    theorem8_power,
    theorem11_example_elements,
    zero_release_instance,
)


class TestPaperInstances:
    def test_figure1(self):
        inst = figure1_instance()
        assert np.allclose(inst.releases, [0, 5, 6])
        assert np.allclose(inst.works, [5, 2, 1])
        assert figure1_power().alpha == 3.0
        assert FIGURE1_BREAKPOINTS == (8.0, 17.0)

    def test_theorem8(self):
        inst = theorem8_instance()
        assert inst.is_equal_work()
        assert np.allclose(inst.releases, [0, 0, 1])
        assert theorem8_power().alpha == 3.0
        assert THEOREM8_ENERGY_BUDGET == 9.0

    def test_theorem11_example_has_perfect_partition(self):
        assert has_perfect_partition_dp(theorem11_example_elements())


class TestGenerators:
    def test_poisson_deterministic(self):
        a = poisson_instance(10, seed=3)
        b = poisson_instance(10, seed=3)
        assert np.allclose(a.releases, b.releases)
        assert np.allclose(a.works, b.works)
        c = poisson_instance(10, seed=4)
        assert not np.allclose(a.releases, c.releases)

    def test_poisson_shape(self):
        inst = poisson_instance(15, seed=1, arrival_rate=2.0, mean_work=0.5)
        assert inst.n_jobs == 15
        assert inst.first_release == 0.0
        assert np.all(np.diff(inst.releases) >= 0)

    @pytest.mark.parametrize("distribution", ["uniform", "exponential", "pareto"])
    def test_work_distributions(self, distribution):
        inst = poisson_instance(30, seed=2, work_distribution=distribution)
        assert np.all(inst.works > 0)

    def test_bursty(self):
        inst = bursty_instance(12, seed=5, burst_size=3, gap=10.0)
        assert inst.n_jobs == 12
        assert inst.first_release == 0.0

    def test_equal_work(self):
        inst = equal_work_instance(9, seed=6, work=2.0)
        assert inst.is_equal_work()
        assert inst.works[0] == 2.0

    def test_zero_release(self):
        inst = zero_release_instance(7, seed=7)
        assert inst.all_released_at_zero()
        assert not inst.is_equal_work()

    def test_deadline_instance(self):
        inst = deadline_instance(8, seed=8, laxity=2.0)
        assert inst.has_deadlines()
        assert np.all(inst.deadlines > inst.releases)

    def test_partition_planted_yes(self):
        for seed in range(5):
            elements = partition_elements(6, seed=seed, planted_yes=True)
            assert has_perfect_partition_dp(elements)

    def test_partition_no_instances(self):
        for seed in range(5):
            elements = partition_elements(6, seed=seed, planted_yes=False)
            assert sum(elements) % 2 == 1
            assert not has_perfect_partition_dp(elements)

    @pytest.mark.parametrize("n_elements", range(2, 13))
    def test_partition_length_contract_for_every_n(self, n_elements):
        # regression: the odd-n planted path used to trim a broken plant and
        # retry with n+1, returning n+1 elements for every odd n
        for seed in range(10):
            for planted in (True, False):
                elements = partition_elements(
                    n_elements, seed=seed, planted_yes=planted
                )
                assert len(elements) == n_elements, (n_elements, seed, planted)
                assert all(
                    isinstance(e, int) and 1 <= e <= 50 for e in elements
                ), (n_elements, seed, planted)

    def test_partition_no_instance_parity_flip_stays_in_range(self):
        # regression: when the first draw was already max_value, forcing an
        # odd total used to bump it to max_value + 1 (e.g. n=2, seed=161)
        for seed in range(300):
            elements = partition_elements(2, seed=seed, planted_yes=False)
            assert all(1 <= e <= 50 for e in elements), (seed, elements)
            assert sum(elements) % 2 == 1

    @pytest.mark.parametrize("n_elements", [3, 5, 7, 9, 11])
    def test_partition_planted_yes_odd_sizes(self, n_elements):
        for seed in range(10):
            elements = partition_elements(n_elements, seed=seed, planted_yes=True)
            assert len(elements) == n_elements
            assert sum(elements) % 2 == 0
            assert has_perfect_partition_dp(elements)

    def test_partition_odd_planted_needs_splittable_max_value(self):
        with pytest.raises(InvalidInstanceError, match="max_value"):
            partition_elements(5, seed=0, max_value=2, planted_yes=True)
        # even sizes keep working at tiny max_value
        assert partition_elements(4, seed=0, max_value=2, planted_yes=True)

    def test_invalid_arguments(self):
        with pytest.raises(InvalidInstanceError):
            poisson_instance(0, seed=1)
        with pytest.raises(InvalidInstanceError):
            poisson_instance(3, seed=1, arrival_rate=0.0)
        with pytest.raises(InvalidInstanceError):
            partition_elements(1, seed=1)
        with pytest.raises(InvalidInstanceError):
            deadline_instance(3, seed=1, laxity=0.0)


class TestTraceGenerators:
    """The simulation trace families: day-night, heavy-tail, MMPP."""

    @pytest.mark.parametrize(
        "factory", [day_night_instance, heavy_tail_instance, mmpp_instance]
    )
    def test_deterministic_and_well_formed(self, factory):
        a = factory(20, seed=3)
        b = factory(20, seed=3)
        assert np.array_equal(a.releases, b.releases)
        assert np.array_equal(a.works, b.works)
        assert np.array_equal(a.deadlines, b.deadlines)
        c = factory(20, seed=4)
        assert not np.array_equal(a.releases, c.releases)
        assert a.n_jobs == 20
        # day-night and mmpp are point processes from t=0 (first arrival
        # strictly later); heavy-tail anchors its first event at 0
        assert a.first_release >= 0.0
        assert np.all(np.diff(a.releases) >= 0)
        assert np.all(a.works > 0)
        assert a.has_deadlines()
        assert np.all(a.deadlines > a.releases)

    def test_day_night_concentrates_arrivals_in_the_day(self):
        inst = day_night_instance(
            400, seed=0, period=10.0, day_fraction=0.5, day_rate=5.0,
            night_rate=0.2,
        )
        phase = np.mod(inst.releases, 10.0)
        day_share = float(np.mean(phase < 5.0))
        # rates 5.0 vs 0.2 put ~96% of arrivals in the day half
        assert day_share > 0.8

    def test_heavy_tail_has_large_gaps_and_large_jobs(self):
        inst = heavy_tail_instance(300, seed=1)
        gaps = np.diff(inst.releases)
        assert gaps.max() > 10.0 * np.median(gaps)  # heavy tail bites
        assert inst.works.max() > 5.0 * np.median(inst.works)

    def test_mmpp_modulates_the_arrival_rate(self):
        inst = mmpp_instance(400, seed=2, rates=(10.0, 0.2))
        gaps = np.sort(np.diff(inst.releases))
        # two regimes: the fast-state gaps are far shorter than the slow-state
        fast = gaps[: len(gaps) // 4].mean()
        slow = gaps[-len(gaps) // 4 :].mean()
        assert slow > 10.0 * fast

    def test_slack_stream_is_decoupled_from_arrivals(self):
        # the deadline slack uses seed + 1 (the deadline_instance idiom):
        # same seed, different arrival parameters -> identical slacks
        a = day_night_instance(10, seed=7, day_rate=2.0)
        b = day_night_instance(10, seed=7, day_rate=9.0)
        assert not np.array_equal(a.releases, b.releases)
        assert np.allclose(
            a.deadlines - a.releases, b.deadlines - b.releases
        )

    def test_invalid_arguments(self):
        with pytest.raises(InvalidInstanceError):
            day_night_instance(0, seed=1)
        with pytest.raises(InvalidInstanceError):
            day_night_instance(3, seed=1, day_fraction=1.0)
        with pytest.raises(InvalidInstanceError):
            day_night_instance(3, seed=1, night_rate=0.0)
        with pytest.raises(InvalidInstanceError):
            heavy_tail_instance(3, seed=1, gap_shape=1.0)
        with pytest.raises(InvalidInstanceError):
            heavy_tail_instance(3, seed=1, mean_gap=0.0)
        with pytest.raises(InvalidInstanceError):
            mmpp_instance(3, seed=1, rates=(0.0, 1.0))
        with pytest.raises(InvalidInstanceError):
            mmpp_instance(3, seed=1, laxity=-1.0)

"""Tests for the Theorem 1 structural machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CUBE, Instance, SQUARE, TabulatedConvexPower
from repro.exceptions import InvalidInstanceError, UnsupportedPowerFunctionError
from repro.flow import (
    Boundary,
    FlowConfiguration,
    classify_boundaries,
    closed_form_speeds,
    completion_times_for_speeds,
    verify_theorem1,
)


class TestCompletionTimes:
    def test_dense_run(self):
        inst = Instance.equal_work([0.0, 0.0, 0.0], work=1.0)
        completions = completion_times_for_speeds(inst, np.array([1.0, 1.0, 1.0]))
        assert np.allclose(completions, [1.0, 2.0, 3.0])

    def test_idle_gap(self):
        inst = Instance.equal_work([0.0, 5.0], work=1.0)
        completions = completion_times_for_speeds(inst, np.array([1.0, 1.0]))
        assert np.allclose(completions, [1.0, 6.0])


class TestClassifyBoundaries:
    def test_all_kinds(self):
        inst = Instance.equal_work([0.0, 0.5, 3.0], work=1.0)
        # speeds chosen so: C_0 = 1 > 0.5 (late); C_1 = 2 < 3 (early)
        config = classify_boundaries(inst, np.array([1.0, 1.0, 1.0]))
        assert config.boundaries == (Boundary.LATE, Boundary.EARLY)
        assert not config.has_tight_boundary

    def test_tight_detection(self):
        inst = Instance.equal_work([0.0, 1.0], work=1.0)
        config = classify_boundaries(inst, np.array([1.0, 1.0]), atol=1e-9)
        assert config.boundaries == (Boundary.TIGHT,)
        assert config.has_tight_boundary

    def test_groups(self):
        config = FlowConfiguration(
            (Boundary.LATE, Boundary.EARLY, Boundary.TIGHT, Boundary.LATE)
        )
        assert config.groups() == [(0, 1), (2, 4)]

    def test_wrong_length(self):
        inst = Instance.equal_work([0.0, 1.0], work=1.0)
        with pytest.raises(InvalidInstanceError):
            classify_boundaries(inst, np.array([1.0]))


class TestClosedFormSpeeds:
    def test_single_dense_group(self):
        inst = Instance.equal_work([0.0, 0.0, 0.0], work=1.0)
        config = FlowConfiguration((Boundary.LATE, Boundary.LATE))
        speeds = closed_form_speeds(inst, CUBE, config, sigma_n=2.0)
        assert speeds[2] == pytest.approx(2.0)
        assert speeds[1] == pytest.approx(2.0 * 2 ** (1 / 3))
        assert speeds[0] == pytest.approx(2.0 * 3 ** (1 / 3))

    def test_two_groups(self):
        inst = Instance.equal_work([0.0, 0.0, 10.0], work=1.0)
        config = FlowConfiguration((Boundary.LATE, Boundary.EARLY))
        speeds = closed_form_speeds(inst, CUBE, config, sigma_n=1.0)
        # first group: multiplicities 2, 1; second group: 1
        assert speeds[0] == pytest.approx(2 ** (1 / 3))
        assert speeds[1] == pytest.approx(1.0)
        assert speeds[2] == pytest.approx(1.0)

    def test_tight_configuration_rejected(self):
        inst = Instance.equal_work([0.0, 1.0], work=1.0)
        config = FlowConfiguration((Boundary.TIGHT,))
        with pytest.raises(InvalidInstanceError):
            closed_form_speeds(inst, CUBE, config, sigma_n=1.0)

    def test_non_polynomial_power_rejected(self):
        inst = Instance.equal_work([0.0, 0.0], work=1.0)
        config = FlowConfiguration((Boundary.LATE,))
        power = TabulatedConvexPower(lambda s: s**3)
        with pytest.raises(UnsupportedPowerFunctionError):
            closed_form_speeds(inst, power, config, sigma_n=1.0)

    def test_nonpositive_sigma_rejected(self):
        inst = Instance.equal_work([0.0, 0.0], work=1.0)
        config = FlowConfiguration((Boundary.LATE,))
        with pytest.raises(InvalidInstanceError):
            closed_form_speeds(inst, CUBE, config, sigma_n=0.0)


class TestVerifyTheorem1:
    def test_accepts_closed_form_schedule(self):
        inst = Instance.equal_work([0.0, 0.0, 0.0], work=1.0)
        config = FlowConfiguration((Boundary.LATE, Boundary.LATE))
        speeds = closed_form_speeds(inst, CUBE, config, sigma_n=1.3)
        assert verify_theorem1(inst, CUBE, speeds)

    def test_rejects_wrong_speeds(self):
        inst = Instance.equal_work([0.0, 0.0, 0.0], work=1.0)
        assert not verify_theorem1(inst, CUBE, np.array([1.0, 1.0, 1.0]))

    def test_requires_equal_work(self):
        inst = Instance.from_arrays([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(InvalidInstanceError):
            verify_theorem1(inst, CUBE, np.array([1.0, 1.0]))

    def test_alpha_2(self):
        inst = Instance.equal_work([0.0, 0.0], work=1.0)
        config = FlowConfiguration((Boundary.LATE,))
        speeds = closed_form_speeds(inst, SQUARE, config, sigma_n=1.0)
        assert verify_theorem1(inst, SQUARE, speeds)

"""Tests for the exact multiprocessor solvers and the assignment enumeration."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CUBE, Instance, PolynomialPower, TabulatedConvexPower
from repro.exceptions import InfeasibleError, InvalidInstanceError
from repro.multi import (
    assignment_candidates,
    exact_multiprocessor_makespan,
    exact_zero_release_makespan,
    makespan_for_assignment,
    makespan_for_loads,
    optimal_load_partition,
)


class TestAssignmentCandidates:
    def test_counts_without_label_symmetry(self):
        # Stirling-like counts: 3 jobs on 2 processors -> 4 set partitions into <= 2 parts
        assert len(list(assignment_candidates(3, 2))) == 4
        # 4 jobs on 2 processors -> 8
        assert len(list(assignment_candidates(4, 2))) == 8
        # m >= n: Bell number of n (all set partitions); Bell(3) = 5
        assert len(list(assignment_candidates(3, 3))) == 5

    def test_first_job_pinned_to_processor_zero(self):
        for candidate in assignment_candidates(4, 3):
            assert candidate[0] == 0

    def test_invalid(self):
        with pytest.raises(InvalidInstanceError):
            list(assignment_candidates(0, 2))


class TestMakespanForLoads:
    def test_polynomial_closed_form(self, cube):
        # loads 2 and 2, energy 16: T = (2*2^3 / 16)^(1/2) = 1
        assert makespan_for_loads([2.0, 2.0], cube, 16.0) == pytest.approx(1.0)

    def test_general_power_matches_polynomial(self):
        tabulated = TabulatedConvexPower(lambda s: s**3)
        closed = makespan_for_loads([2.0, 3.0], CUBE, 10.0)
        numeric = makespan_for_loads([2.0, 3.0], tabulated, 10.0)
        assert numeric == pytest.approx(closed, rel=1e-8)

    def test_empty_loads_rejected(self, cube):
        with pytest.raises(InvalidInstanceError):
            makespan_for_loads([0.0], cube, 5.0)


class TestOptimalLoadPartition:
    def test_partition_instance(self):
        value, assignment = optimal_load_partition([3, 1, 1, 2, 2, 1], 2, alpha=3.0)
        loads = [0.0, 0.0]
        for job, proc in enumerate(assignment):
            loads[proc] += [3, 1, 1, 2, 2, 1][job]
        assert sorted(loads) == [5.0, 5.0]
        assert value == pytest.approx(2 * 5.0**3)

    def test_job_limit(self):
        with pytest.raises(InfeasibleError):
            optimal_load_partition([1.0] * 20, 2, alpha=3.0)


class TestZeroReleaseExact:
    def test_balanced_loads_are_optimal(self, cube):
        inst = Instance.from_arrays([0] * 4, [2.0, 2.0, 2.0, 2.0])
        result = exact_zero_release_makespan(inst, cube, 2, 16.0)
        # balanced loads 4 and 4; T = (2*64/16)^(1/2) = sqrt(8)
        assert result.makespan == pytest.approx(math.sqrt(8.0))
        sched = result.schedule(inst, cube)
        sched.validate(energy_budget=16.0 * (1 + 1e-9))

    def test_requires_zero_releases(self, cube):
        inst = Instance.from_arrays([0, 1], [1.0, 1.0])
        with pytest.raises(InvalidInstanceError):
            exact_zero_release_makespan(inst, cube, 2, 4.0)

    def test_matches_general_solver(self, cube):
        inst = Instance.from_arrays([0] * 5, [3.0, 1.0, 2.0, 1.5, 1.0])
        zero = exact_zero_release_makespan(inst, cube, 2, 12.0)
        general = exact_multiprocessor_makespan(inst, cube, 2, 12.0)
        assert zero.makespan == pytest.approx(general.makespan, rel=1e-9)


class TestGeneralExact:
    def test_never_worse_than_cyclic(self, cube):
        inst = Instance.equal_work([0.0, 0.5, 1.0, 2.0, 3.0], work=1.0)
        from repro.multi import cyclic_assignment

        exact = exact_multiprocessor_makespan(inst, cube, 2, 8.0)
        cyclic = makespan_for_assignment(inst, cube, cyclic_assignment(5, 2), 8.0)
        assert exact.makespan <= cyclic.makespan + 1e-9

    def test_beats_bad_assignment_on_unequal_work(self, cube):
        inst = Instance.from_arrays([0.0, 0.2, 0.4], [5.0, 1.0, 1.0])
        exact = exact_multiprocessor_makespan(inst, cube, 2, 20.0)
        lopsided = makespan_for_assignment(inst, cube, {0: [0, 1, 2]}, 20.0)
        assert exact.makespan <= lopsided.makespan + 1e-9

    def test_job_limit_for_general_releases(self, cube):
        inst = Instance.from_arrays(np.linspace(0, 5, 12), [1.0] * 12)
        with pytest.raises(InfeasibleError):
            exact_multiprocessor_makespan(inst, cube, 2, 10.0)

    def test_alpha_2(self):
        power = PolynomialPower(2.0)
        inst = Instance.from_arrays([0] * 4, [1.0, 2.0, 3.0, 4.0])
        result = exact_zero_release_makespan(inst, power, 2, 10.0)
        # optimal split is {4,1} vs {3,2}: loads 5,5 -> T = (25+25)/10 = 5
        assert result.makespan == pytest.approx(5.0)

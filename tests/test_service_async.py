"""Tests for the hardened async serving tier (:class:`repro.service.AsyncServeLoop`).

Covers the robustness semantics the sync reference loop does not have:
deadlines, load shedding, graceful drain, control requests, fault injection
and concurrent TCP clients sharing one cache.
"""

from __future__ import annotations

import asyncio
import io
import json
import socket
import struct
import threading

import pytest

from repro.api import SolveRequest
from repro.cache import ResultCache
from repro.core import CUBE
from repro.exceptions import InvalidInstanceError
from repro.faults import (
    CONNECTION_DROP,
    SOLVER_SLOW,
    WORKER_EXCEPTION,
    WORKER_HANG,
    FaultPlan,
    FaultRule,
)
from repro.io import (
    binary_envelope_decode,
    encode_envelope,
    request_to_dict,
    serve_response_from_dict,
)
from repro.service import MAX_BINARY_FRAME_BYTES, AsyncServeLoop
from repro.workloads import figure1_instance, poisson_instance


def _request_line(request_id=None, budget=17.0, seed=None, deadline_ms=None) -> str:
    instance = figure1_instance() if seed is None else poisson_instance(
        6, seed=seed, arrival_rate=1.0
    )
    envelope = request_to_dict(
        SolveRequest(instance=instance, power=CUBE, solver="laptop", budget=budget)
    )
    if request_id is not None:
        envelope["id"] = request_id
    if deadline_ms is not None:
        envelope["deadline_ms"] = deadline_ms
    return json.dumps(envelope) + "\n"


def _run_stream(lines, **kwargs):
    out = io.StringIO()
    loop = AsyncServeLoop(**kwargs)
    stats = asyncio.run(loop.run_stream(iter(lines), out))
    return [json.loads(line) for line in out.getvalue().splitlines()], stats, loop


class _Client:
    """One blocking line-protocol connection to a started loop."""

    def __init__(self, address):
        self._sock = socket.create_connection(address, timeout=10)
        self._file = self._sock.makefile("rw", encoding="utf-8")

    def send(self, line: str) -> None:
        self._file.write(line)
        self._file.flush()

    def recv(self) -> dict:
        raw = self._file.readline()
        if not raw:
            raise ConnectionResetError("server closed the connection")
        return json.loads(raw)

    def rpc(self, line: str) -> dict:
        self.send(line)
        return self.recv()

    def close(self) -> None:
        self._file.close()
        self._sock.close()


class TestStreamMode:
    def test_roundtrip_and_cache_hit(self):
        responses, stats, _ = _run_stream(
            [_request_line(), _request_line()], cache=ResultCache()
        )
        assert [r["serve"]["cache"] for r in responses] == ["miss", "hit"]
        assert stats.requests == 2 and stats.ok == 2 and stats.cache_hits == 1

    def test_responses_keep_request_order(self):
        lines = [_request_line(request_id=f"r{i}", seed=i) for i in range(6)]
        responses, _, _ = _run_stream(lines, cache=ResultCache())
        assert [r["id"] for r in responses] == [f"r{i}" for i in range(6)]

    def test_malformed_line_is_structured_error(self):
        responses, stats, _ = _run_stream(["{not json\n", _request_line()])
        assert responses[0]["result"]["error"]["code"] == "invalid-instance"
        assert responses[1]["result"]["status"] == "ok"
        assert stats.errors == 1 and stats.ok == 1

    def test_timing_false_omits_latency(self):
        responses, _, _ = _run_stream([_request_line()], timing=False)
        assert "latency_ms" not in responses[0]["serve"]

    def test_response_parses_with_io_codec(self):
        responses, _, _ = _run_stream([_request_line(request_id="x")])
        request_id, result, meta = serve_response_from_dict(responses[0])
        assert request_id == "x" and result.ok and meta["cache"] == "off"


class TestDeadlines:
    def test_expired_deadline_never_returns_a_late_answer(self):
        plan = FaultPlan(
            rules=(FaultRule(site=WORKER_HANG, indices=frozenset({0}), delay=15.0),)
        )
        responses, stats, _ = _run_stream(
            [_request_line(request_id="slow", deadline_ms=200.0), _request_line()],
            fault_plan=plan,
        )
        assert responses[0]["id"] == "slow"
        assert responses[0]["result"]["error"]["code"] == "deadline-exceeded"
        assert responses[1]["result"]["status"] == "ok"
        assert stats.deadline_misses == 1 and stats.errors == 1 and stats.ok == 1

    def test_server_default_deadline_applies(self):
        plan = FaultPlan(
            rules=(FaultRule(site=WORKER_HANG, indices=frozenset({0}), delay=15.0),)
        )
        responses, stats, _ = _run_stream(
            [_request_line()], fault_plan=plan, default_deadline_ms=200.0
        )
        assert responses[0]["result"]["error"]["code"] == "deadline-exceeded"
        assert stats.deadline_misses == 1

    def test_invalid_deadline_is_structured_error(self):
        responses, _, _ = _run_stream([_request_line(deadline_ms=-5)])
        assert responses[0]["result"]["error"]["code"] == "invalid-instance"
        assert "deadline_ms" in responses[0]["result"]["error"]["message"]

    def test_constructor_rejects_bad_defaults(self):
        with pytest.raises(InvalidInstanceError):
            AsyncServeLoop(default_deadline_ms=0)
        with pytest.raises(InvalidInstanceError):
            AsyncServeLoop(max_pending=0)


class TestOverload:
    def test_queue_overflow_sheds_with_retry_hint(self):
        # every solve sleeps, admission bound is 1: pipelining many distinct
        # requests must shed the tail instead of queueing unboundedly
        plan = FaultPlan(rules=(FaultRule(site=SOLVER_SLOW, rate=1.0, delay=0.2),))
        lines = [_request_line(request_id=f"r{i}", seed=i) for i in range(8)]
        responses, stats, _ = _run_stream(
            lines, fault_plan=plan, max_pending=1, cache=None
        )
        assert [r["id"] for r in responses] == [f"r{i}" for i in range(8)]
        shed = [r for r in responses
                if (r["result"].get("error") or {}).get("code") == "overloaded"]
        served = [r for r in responses if r["result"]["status"] == "ok"]
        assert shed and served
        assert stats.shed == len(shed)
        for response in shed:
            hint = response["serve"]["retry_after_ms"]
            assert isinstance(hint, (int, float)) and hint > 0

    def test_control_requests_bypass_the_queue(self):
        plan = FaultPlan(rules=(FaultRule(site=SOLVER_SLOW, rate=1.0, delay=0.2),))
        lines = [
            _request_line(request_id="r0", seed=0),
            json.dumps({"op": "stats", "id": "st"}) + "\n",
        ]
        responses, _, _ = _run_stream(lines, fault_plan=plan, max_pending=1)
        kinds = {r.get("id"): r["kind"] for r in responses}
        assert kinds == {"r0": "serve-response", "st": "serve-control"}


class TestControlOps:
    def test_stats_op_reports_counters_and_latency(self):
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        try:
            client = _Client(address)
            client.rpc(_request_line())
            client.rpc(_request_line())
            snap = client.rpc(json.dumps({"op": "stats"}) + "\n")
            client.close()
        finally:
            loop.stop()
        assert snap["kind"] == "serve-control" and snap["op"] == "stats"
        stats = snap["stats"]
        assert stats["requests"] == 2 and stats["cache_hits"] == 1
        assert stats["cache_hit_ratio"] == 0.5
        assert stats["qps"] > 0 and stats["uptime_s"] >= 0
        assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["p99"]

    def test_stats_op_without_timing_omits_rates(self):
        responses, _, _ = _run_stream(
            [json.dumps({"op": "stats"}) + "\n"], timing=False
        )
        snap = responses[0]["stats"]
        assert "qps" not in snap and "latency_ms" not in snap
        assert snap["requests"] == 0 and snap["draining"] is False

    def test_ping_and_unknown_op(self):
        responses, _, _ = _run_stream(
            [json.dumps({"op": "ping", "id": 1}) + "\n",
             json.dumps({"op": "selfdestruct"}) + "\n"]
        )
        assert responses[0] == {"kind": "serve-control", "id": 1, "op": "ping",
                                "ok": True}
        assert responses[1]["error"]["code"] == "invalid-instance"

    def test_drain_op_stops_the_loop(self):
        loop = AsyncServeLoop()
        address = loop.start_in_thread()
        client = _Client(address)
        response = client.rpc(json.dumps({"op": "drain"}) + "\n")
        assert response["draining"] is True
        stats = loop.stop(timeout=10)
        assert stats.requests == 0


class TestFaultsInTheLoop:
    def test_worker_exception_maps_to_internal(self):
        plan = FaultPlan(
            rules=(FaultRule(site=WORKER_EXCEPTION, indices=frozenset({0}),
                             message="injected crash"),)
        )
        responses, stats, _ = _run_stream(
            [_request_line(), _request_line(seed=1)], fault_plan=plan
        )
        assert responses[0]["result"]["error"]["code"] == "internal"
        assert "injected crash" in responses[0]["result"]["error"]["message"]
        assert responses[1]["result"]["status"] == "ok"
        assert stats.errors == 1 and stats.ok == 1

    def test_connection_drop_kills_one_connection_not_the_server(self):
        plan = FaultPlan(
            rules=(FaultRule(site=CONNECTION_DROP, indices=frozenset({0})),)
        )
        loop = AsyncServeLoop(cache=ResultCache(), fault_plan=plan)
        address = loop.start_in_thread()
        try:
            victim = _Client(address)
            victim.send(_request_line())
            with pytest.raises((ConnectionResetError, json.JSONDecodeError)):
                victim.recv()
            victim.close()
            # the server keeps answering fresh connections
            survivor = _Client(address)
            response = survivor.rpc(_request_line())
            assert response["result"]["status"] == "ok"
            survivor.close()
        finally:
            loop.stop()


class _BinaryClient:
    """A TCP client that negotiates the binary codec, then speaks frames."""

    def __init__(self, address):
        self._sock = socket.create_connection(address, timeout=10)

    def _recv_exact(self, count: int) -> bytes:
        buf = b""
        while len(buf) < count:
            chunk = self._sock.recv(count - len(buf))
            if not chunk:
                raise ConnectionResetError("server closed the connection")
            buf += chunk
        return buf

    def negotiate(self, codec: str = "binary") -> dict:
        self._sock.sendall(
            (json.dumps({"op": "codec", "codec": codec, "id": "neg"}) + "\n").encode(
                "utf-8"
            )
        )
        line = b""
        while not line.endswith(b"\n"):
            chunk = self._sock.recv(1)
            if not chunk:
                raise ConnectionResetError("server closed the connection")
            line += chunk
        return json.loads(line)

    def send_frame(self, payload: dict) -> None:
        self._sock.sendall(encode_envelope(payload, "binary"))

    def send_raw(self, data: bytes) -> None:
        self._sock.sendall(data)

    def recv_frame(self) -> dict:
        (length,) = struct.unpack("<I", self._recv_exact(4))
        return binary_envelope_decode(self._recv_exact(length))

    def rpc(self, payload: dict) -> dict:
        self.send_frame(payload)
        return self.recv_frame()

    def close(self) -> None:
        self._sock.close()


class TestCodecNegotiation:
    def _request_payload(self, request_id=None, seed=None):
        return json.loads(_request_line(request_id=request_id, seed=seed))

    def test_stdio_refuses_binary(self):
        responses, _, _ = _run_stream(
            [json.dumps({"op": "codec", "codec": "binary", "id": "c"}) + "\n",
             _request_line()]
        )
        ack = responses[0]
        assert ack["kind"] == "serve-control" and ack["op"] == "codec"
        assert ack["accepted"] is False
        assert "text-only" in ack["error"]["message"]
        # the connection survives the refusal and keeps speaking JSON
        assert responses[1]["result"]["status"] == "ok"

    def test_stdio_accepts_explicit_json(self):
        responses, _, _ = _run_stream(
            [json.dumps({"op": "codec", "codec": "json"}) + "\n", _request_line()]
        )
        assert responses[0]["accepted"] is True and responses[0]["codec"] == "json"
        assert responses[1]["result"]["status"] == "ok"

    def test_unknown_codec_rejected(self):
        responses, _, _ = _run_stream(
            [json.dumps({"op": "codec", "codec": "msgpack"}) + "\n"]
        )
        assert responses[0]["accepted"] is False
        assert "msgpack" in responses[0]["error"]["message"]

    def test_tcp_binary_round_trip_matches_json(self):
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        try:
            json_client = _Client(address)
            via_json = json_client.rpc(_request_line(request_id="j"))
            json_client.close()

            client = _BinaryClient(address)
            ack = client.negotiate()
            assert ack["accepted"] is True and ack["codec"] == "binary"
            via_binary = client.rpc(self._request_payload(request_id="b"))
            client.close()
        finally:
            loop.stop()
        assert via_binary["result"]["status"] == "ok"
        assert via_binary["serve"]["cache"] == "hit"  # same key as the JSON solve
        # identical payload either way, down to every float in the result
        for response in (via_json, via_binary):
            response["serve"].pop("latency_ms", None)
            response["serve"].pop("cache")  # miss vs hit, asserted above
            response.pop("id")
        assert via_binary == via_json

    def test_tcp_binary_pipelined_requests_keep_order(self):
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        try:
            client = _BinaryClient(address)
            assert client.negotiate()["accepted"] is True
            for index in range(4):
                client.send_frame(self._request_payload(request_id=f"p{index}",
                                                        seed=index))
            ids = [client.recv_frame()["id"] for index in range(4)]
            client.close()
        finally:
            loop.stop()
        assert ids == [f"p{index}" for index in range(4)]

    def test_tcp_bad_binary_frame_is_structured_error(self):
        loop = AsyncServeLoop()
        address = loop.start_in_thread()
        try:
            client = _BinaryClient(address)
            assert client.negotiate()["accepted"] is True
            client.send_raw(struct.pack("<I", 5) + b"JUNK!")
            response = client.recv_frame()
            assert response["result"]["error"]["code"] == "invalid-instance"
            assert "frame" in response["result"]["error"]["message"]
            # the connection recovers: a well-formed frame still answers
            ok = client.rpc(self._request_payload(request_id="after"))
            assert ok["result"]["status"] == "ok"
            client.close()
        finally:
            loop.stop()

    def test_tcp_oversized_frame_drops_the_connection(self):
        loop = AsyncServeLoop()
        address = loop.start_in_thread()
        try:
            client = _BinaryClient(address)
            assert client.negotiate()["accepted"] is True
            client.send_raw(struct.pack("<I", MAX_BINARY_FRAME_BYTES + 1))
            with pytest.raises((ConnectionResetError, ConnectionError, OSError)):
                client.recv_frame()
            client.close()
            # the server itself is unharmed
            survivor = _Client(address)
            assert survivor.rpc(_request_line())["result"]["status"] == "ok"
            survivor.close()
        finally:
            loop.stop()

    def test_control_ops_work_over_binary(self):
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        try:
            client = _BinaryClient(address)
            assert client.negotiate()["accepted"] is True
            pong = client.rpc({"op": "ping", "id": 7})
            snap = client.rpc({"op": "stats"})
            client.close()
        finally:
            loop.stop()
        assert pong == {"kind": "serve-control", "id": 7, "op": "ping", "ok": True}
        assert snap["op"] == "stats" and snap["stats"]["requests"] == 0


class TestConcurrentTcpClients:
    def test_many_threads_share_one_loop_and_cache(self):
        n_threads, n_requests = 6, 5
        loop = AsyncServeLoop(cache=ResultCache())
        address = loop.start_in_thread()
        failures: list[str] = []

        def hammer(thread_index: int) -> None:
            try:
                client = _Client(address)
                for request_index in range(n_requests):
                    request_id = f"t{thread_index}-r{request_index}"
                    # every thread solves the same tiny problem: contention on
                    # one shared cache entry
                    response = client.rpc(_request_line(request_id=request_id))
                    if response["id"] != request_id:
                        failures.append(
                            f"id mismatch: sent {request_id}, got {response['id']}"
                        )
                    if response["result"]["status"] != "ok":
                        failures.append(f"{request_id}: {response['result']}")
                client.close()
            except Exception as exc:  # torn line, closed conn, bad JSON...
                failures.append(f"t{thread_index}: {exc!r}")

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        stats = loop.stop()
        assert failures == []
        total = n_threads * n_requests
        assert stats.requests == total and stats.ok == total
        # exactly one request paid for the miss; with concurrent misses a few
        # more may race past the cache, but hits must dominate
        assert stats.cache_hits >= total - n_threads
        assert stats.cache_hits + loop.cache.stats().puts == total

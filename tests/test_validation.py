"""Tests for the Lemma 2-6 structural checks (and their deprecation shim).

The checks themselves now live in :mod:`repro.verify.structure`; the imports
below go through the blessed ``repro.core`` re-exports on purpose, proving
the historical surface still works warning-free.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import (
    CUBE,
    Instance,
    Piece,
    Schedule,
    assert_optimal_structure,
    check_optimal_structure,
)
from repro.exceptions import InvalidScheduleError
from repro.makespan import incmerge


class TestStructureChecks:
    def test_optimal_schedule_satisfies_all(self, fig1, cube):
        sched = incmerge(fig1, cube, 17.0).schedule()
        report = check_optimal_structure(sched)
        assert report.satisfies_all
        assert_optimal_structure(sched)

    def test_idle_schedule_flagged(self, cube):
        inst = Instance.from_arrays([0.0, 1.0], [1.0, 1.0])
        # run job 0 very fast: idle before job 1's release
        sched = Schedule.from_speeds(inst, cube, [10.0, 1.0])
        report = check_optimal_structure(sched)
        assert not report.no_idle
        assert not report.satisfies_all
        with pytest.raises(InvalidScheduleError):
            assert_optimal_structure(sched)

    def test_decreasing_block_speeds_flagged(self, cube):
        inst = Instance.from_arrays([0.0, 2.0], [2.0, 2.0])
        # both jobs are their own blocks (job 0 ends exactly at r_1), but the
        # second block is slower than the first
        sched = Schedule.from_speeds(inst, cube, [1.0, 0.5])
        report = check_optimal_structure(sched)
        assert report.no_idle
        assert not report.non_decreasing_block_speeds

    def test_non_uniform_block_speed_flagged(self, cube):
        inst = Instance.from_arrays([0.0, 1.0], [2.0, 2.0])
        # jobs run back to back (single block) at different speeds
        sched = Schedule.from_speeds(inst, cube, [1.0, 2.0])
        report = check_optimal_structure(sched)
        assert not report.uniform_speed_per_block

    def test_multiprocessor_schedule_rejected(self, cube):
        inst = Instance.from_arrays([0.0, 0.0], [1.0, 1.0])
        pieces = [
            Piece(job=0, processor=0, start=0.0, end=1.0, speed=1.0),
            Piece(job=1, processor=1, start=0.0, end=1.0, speed=1.0),
        ]
        sched = Schedule(inst, cube, pieces)
        with pytest.raises(InvalidScheduleError):
            check_optimal_structure(sched)

    def test_multi_piece_job_flagged(self, cube):
        inst = Instance.from_arrays([0.0], [2.0])
        pieces = [
            Piece(job=0, processor=0, start=0.0, end=1.0, speed=1.0),
            Piece(job=0, processor=0, start=1.0, end=2.0, speed=1.0),
        ]
        sched = Schedule(inst, cube, pieces)
        report = check_optimal_structure(sched)
        assert not report.single_speed_per_job


class TestValidationShim:
    """``repro.core.validation`` is a deprecated forward to repro.verify.structure."""

    def test_shim_warns_and_forwards(self):
        import repro.core.validation as legacy
        import repro.verify.structure as new_home

        for name in ("StructureReport", "check_optimal_structure",
                     "assert_optimal_structure"):
            with pytest.warns(DeprecationWarning, match="repro.verify.structure"):
                forwarded = getattr(legacy, name)
            assert forwarded is getattr(new_home, name)

    def test_shim_rejects_unknown_attributes(self):
        import repro.core.validation as legacy

        with pytest.raises(AttributeError):
            legacy.does_not_exist

    def test_blessed_core_reexport_does_not_warn(self):
        import repro.core
        import repro.verify.structure as new_home

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.core.check_optimal_structure is new_home.check_optimal_structure
            assert repro.core.StructureReport is new_home.StructureReport

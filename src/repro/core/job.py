"""Job and problem-instance model.

The paper's model (Section 1): the input is a sequence of jobs
``J_1 ... J_n`` where job ``J_i`` has a *release time* ``r_i`` (the earliest
time it may run) and a *work requirement* ``w_i``.  A processor running at
constant speed ``sigma`` finishes ``sigma`` units of work per unit of time, so
the processing time of a job is only determined once the schedule fixes its
speed.

Some results additionally assume *equal-work* jobs (the flow results and the
multiprocessor results of Section 5) and some assume all jobs are released at
time zero (the NP-hardness reduction of Theorem 11).  :class:`Instance`
exposes predicates for both so algorithms can check their preconditions.

Jobs may also carry an optional *deadline*.  Deadlines are not part of the
paper's primary model but are required by the Yao-Demers-Shenker substrate
(:mod:`repro.online.yds`) and the online algorithms built on it, which the
paper discusses as related/future work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import InvalidInstanceError

__all__ = ["Job", "Instance"]


@dataclass(frozen=True, slots=True)
class Job:
    """A single job.

    Parameters
    ----------
    index:
        Identifier of the job.  Within an :class:`Instance` indices are the
        positions ``0 .. n-1`` of the jobs sorted by release time, matching
        the paper's convention ``r_1 <= r_2 <= ... <= r_n`` (zero-based here).
    release:
        Release time ``r_i`` (earliest start time).  Must be finite and
        non-negative.
    work:
        Work requirement ``w_i``.  Must be finite and strictly positive; the
        paper's arguments (and the block machinery) assume every job has
        something to execute.
    deadline:
        Optional absolute deadline ``d_i`` used only by the deadline-based
        substrate algorithms (YDS/AVR/OA/BKP).  ``None`` means "no deadline".
    weight:
        Optional weight, used by weighted-flow style metrics in
        :mod:`repro.core.metrics` (the paper mentions weighted flow only as an
        example of a non-symmetric metric).
    """

    index: int
    release: float
    work: float
    deadline: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.release) or self.release < 0.0:
            raise InvalidInstanceError(
                f"job {self.index}: release must be finite and >= 0, got {self.release!r}"
            )
        if not math.isfinite(self.work) or self.work <= 0.0:
            raise InvalidInstanceError(
                f"job {self.index}: work must be finite and > 0, got {self.work!r}"
            )
        if self.deadline is not None:
            if not math.isfinite(self.deadline) or self.deadline <= self.release:
                raise InvalidInstanceError(
                    f"job {self.index}: deadline must be finite and > release "
                    f"({self.release}), got {self.deadline!r}"
                )
        if not math.isfinite(self.weight) or self.weight <= 0.0:
            raise InvalidInstanceError(
                f"job {self.index}: weight must be finite and > 0, got {self.weight!r}"
            )

    @property
    def has_deadline(self) -> bool:
        """Whether the job carries a deadline (needed by YDS-style algorithms)."""
        return self.deadline is not None

    def with_deadline(self, deadline: float) -> "Job":
        """Return a copy of this job with ``deadline`` attached."""
        return replace(self, deadline=deadline)


@dataclass(frozen=True)
class Instance:
    """An ordered collection of jobs forming one scheduling instance.

    Jobs are stored sorted by release time (ties broken by original position),
    and re-indexed ``0..n-1`` in that order, which is the order used by every
    algorithm in the package (Lemma 3 of the paper lets the optimal schedule
    run jobs in release order).

    The constructor accepts jobs in any order.  Use :meth:`from_arrays` for
    the common case of building an instance from release/work vectors.
    """

    jobs: tuple[Job, ...]
    name: str = "instance"

    def __init__(self, jobs: Iterable[Job], name: str = "instance") -> None:
        job_list = list(jobs)
        if not job_list:
            raise InvalidInstanceError("an instance must contain at least one job")
        ordered = sorted(enumerate(job_list), key=lambda t: (t[1].release, t[0]))
        reindexed = tuple(
            replace(job, index=i) for i, (_, job) in enumerate(ordered)
        )
        object.__setattr__(self, "jobs", reindexed)
        object.__setattr__(self, "name", str(name))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        releases: Sequence[float],
        works: Sequence[float],
        deadlines: Sequence[float] | None = None,
        weights: Sequence[float] | None = None,
        name: str = "instance",
    ) -> "Instance":
        """Build an instance from parallel arrays of releases and works."""
        releases = list(map(float, releases))
        works = list(map(float, works))
        if len(releases) != len(works):
            raise InvalidInstanceError(
                f"releases ({len(releases)}) and works ({len(works)}) must have equal length"
            )
        if deadlines is not None and len(deadlines) != len(releases):
            raise InvalidInstanceError("deadlines must have the same length as releases")
        if weights is not None and len(weights) != len(releases):
            raise InvalidInstanceError("weights must have the same length as releases")
        jobs = []
        for i, (r, w) in enumerate(zip(releases, works)):
            d = None if deadlines is None else float(deadlines[i])
            wt = 1.0 if weights is None else float(weights[i])
            jobs.append(Job(index=i, release=r, work=w, deadline=d, weight=wt))
        return cls(jobs, name=name)

    @classmethod
    def equal_work(
        cls,
        releases: Sequence[float],
        work: float = 1.0,
        name: str = "equal-work-instance",
    ) -> "Instance":
        """Build an equal-work instance (all jobs require ``work`` units)."""
        return cls.from_arrays(releases, [float(work)] * len(list(releases)), name=name)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> Job:
        return self.jobs[index]

    # ------------------------------------------------------------------
    # derived arrays / predicates
    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self.jobs)

    @property
    def releases(self) -> np.ndarray:
        """Release times as a float array, sorted non-decreasingly."""
        return np.array([job.release for job in self.jobs], dtype=float)

    @property
    def works(self) -> np.ndarray:
        """Work requirements as a float array (aligned with :attr:`releases`)."""
        return np.array([job.work for job in self.jobs], dtype=float)

    @property
    def deadlines(self) -> np.ndarray:
        """Deadlines as a float array; jobs without a deadline map to ``+inf``."""
        return np.array(
            [math.inf if job.deadline is None else job.deadline for job in self.jobs],
            dtype=float,
        )

    @property
    def weights(self) -> np.ndarray:
        """Job weights as a float array."""
        return np.array([job.weight for job in self.jobs], dtype=float)

    @property
    def total_work(self) -> float:
        """Sum of all work requirements."""
        return float(self.works.sum())

    @property
    def first_release(self) -> float:
        """Earliest release time ``r_1``."""
        return float(self.jobs[0].release)

    @property
    def last_release(self) -> float:
        """Latest release time ``r_n``."""
        return float(self.jobs[-1].release)

    def is_equal_work(self, rel_tol: float = 1e-12) -> bool:
        """Whether all jobs require the same amount of work (Section 4/5 model)."""
        works = self.works
        return bool(np.allclose(works, works[0], rtol=rel_tol, atol=0.0))

    def all_released_at_zero(self, atol: float = 0.0) -> bool:
        """Whether every job is released at time zero (Theorem 11 model)."""
        return bool(np.all(self.releases <= atol))

    def has_deadlines(self) -> bool:
        """Whether every job carries a finite deadline (YDS model)."""
        # cached lazily: jobs is a frozen tuple, so the answer never changes,
        # and solver precondition checks ask several times per solve
        cached = self.__dict__.get("_has_deadlines")
        if cached is None:
            cached = all(job.has_deadline for job in self.jobs)
            object.__setattr__(self, "_has_deadlines", cached)
        return cached

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_deadlines(self, deadlines: Sequence[float] | float) -> "Instance":
        """Return a copy with deadlines attached.

        ``deadlines`` may be a scalar (common deadline, e.g. the server-problem
        reduction "makespan target = deadline for everyone") or a sequence
        aligned with the sorted job order.
        """
        if np.isscalar(deadlines):
            values = [float(deadlines)] * self.n_jobs
        else:
            values = [float(d) for d in deadlines]  # type: ignore[union-attr]
            if len(values) != self.n_jobs:
                raise InvalidInstanceError(
                    "deadline vector length must equal the number of jobs"
                )
        return Instance(
            (job.with_deadline(d) for job, d in zip(self.jobs, values)),
            name=self.name,
        )

    def subset(self, indices: Sequence[int], name: str | None = None) -> "Instance":
        """Return the sub-instance containing only the given job indices."""
        idx = sorted(set(int(i) for i in indices))
        if not idx:
            raise InvalidInstanceError("subset requires at least one job index")
        for i in idx:
            if not 0 <= i < self.n_jobs:
                raise InvalidInstanceError(f"job index {i} out of range 0..{self.n_jobs - 1}")
        return Instance(
            (self.jobs[i] for i in idx),
            name=name if name is not None else f"{self.name}[subset]",
        )

    def shifted(self, delta: float) -> "Instance":
        """Return a copy with all releases (and deadlines) shifted by ``delta``."""
        jobs = []
        for job in self.jobs:
            deadline = None if job.deadline is None else job.deadline + delta
            jobs.append(
                Job(
                    index=job.index,
                    release=job.release + delta,
                    work=job.work,
                    deadline=deadline,
                    weight=job.weight,
                )
            )
        return Instance(jobs, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(name={self.name!r}, n_jobs={self.n_jobs}, "
            f"total_work={self.total_work:g}, span=[{self.first_release:g}, "
            f"{self.last_release:g}])"
        )

"""Piecewise-constant speed profiles.

A :class:`SpeedProfile` describes a single processor's speed as a function of
time, independent of which jobs are running.  It is the "replay" view of a
schedule: the simulator in this module re-derives energy and completed work
purely from the profile, which gives an independent cross-check of the
energy/metric accounting performed by :class:`repro.core.schedule.Schedule`
(the two are compared in the test suite).

Profiles are also the natural output format of the *online* algorithms
(AVR, OA, BKP), whose processor speed changes at arrival times rather than at
job boundaries.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import InvalidScheduleError
from .power import PowerFunction
from .schedule import Schedule

__all__ = ["SpeedSegment", "SpeedProfile", "profile_from_schedule"]


@dataclass(frozen=True, slots=True)
class SpeedSegment:
    """A maximal interval of constant speed on one processor."""

    start: float
    end: float
    speed: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise InvalidScheduleError("segment times must be finite")
        if self.end <= self.start:
            raise InvalidScheduleError(
                f"segment must have positive duration, got [{self.start}, {self.end}]"
            )
        if not math.isfinite(self.speed) or self.speed < 0.0:
            raise InvalidScheduleError(f"segment speed must be >= 0, got {self.speed}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def work(self) -> float:
        return self.speed * self.duration


class SpeedProfile:
    """Piecewise-constant speed as a function of time for one processor.

    Segments must be non-overlapping; gaps between segments are interpreted as
    idle time (speed zero).  Segments are sorted and adjacent segments of equal
    speed are coalesced at construction.
    """

    def __init__(self, segments: Iterable[SpeedSegment]) -> None:
        segs = sorted(segments, key=lambda s: s.start)
        for a, b in zip(segs, segs[1:]):
            if b.start < a.end - 1e-12:
                raise InvalidScheduleError(
                    f"speed segments overlap: [{a.start},{a.end}] and [{b.start},{b.end}]"
                )
        # coalesce equal-speed adjacent segments
        merged: list[SpeedSegment] = []
        for seg in segs:
            if (
                merged
                and math.isclose(merged[-1].end, seg.start, abs_tol=1e-12)
                and math.isclose(merged[-1].speed, seg.speed, rel_tol=1e-12, abs_tol=1e-15)
            ):
                merged[-1] = SpeedSegment(merged[-1].start, seg.end, merged[-1].speed)
            else:
                merged.append(seg)
        self.segments: tuple[SpeedSegment, ...] = tuple(merged)
        self._starts = [s.start for s in self.segments]

    # ------------------------------------------------------------------
    @property
    def start(self) -> float:
        """Earliest time covered by the profile (``0.0`` if empty)."""
        return self.segments[0].start if self.segments else 0.0

    @property
    def end(self) -> float:
        """Latest time covered by the profile (``0.0`` if empty)."""
        return self.segments[-1].end if self.segments else 0.0

    def speed_at(self, time: float) -> float:
        """Speed at a given instant (0 during idle gaps and outside the span)."""
        if not self.segments:
            return 0.0
        i = bisect.bisect_right(self._starts, time) - 1
        if i < 0:
            return 0.0
        seg = self.segments[i]
        if seg.start <= time < seg.end:
            return seg.speed
        return 0.0

    def work_between(self, t0: float, t1: float) -> float:
        """Work completed in the interval ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        for seg in self.segments:
            lo = max(seg.start, t0)
            hi = min(seg.end, t1)
            if hi > lo:
                total += seg.speed * (hi - lo)
        return total

    @property
    def total_work(self) -> float:
        """Total work completed over the whole profile."""
        return sum(seg.work for seg in self.segments)

    def energy(self, power: PowerFunction) -> float:
        """Total energy consumed, charging ``power(speed)`` over each segment."""
        return float(
            sum(power.power(seg.speed) * seg.duration for seg in self.segments if seg.speed > 0)
        )

    def max_speed(self) -> float:
        """Maximum speed used anywhere in the profile (0 for an empty profile)."""
        return max((seg.speed for seg in self.segments), default=0.0)

    def busy_time(self) -> float:
        """Total time during which the speed is strictly positive."""
        return sum(seg.duration for seg in self.segments if seg.speed > 0)

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`speed_at` over an array of time points."""
        return np.array([self.speed_at(float(t)) for t in times])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpeedProfile(n_segments={len(self.segments)}, span=[{self.start:g}, "
            f"{self.end:g}], total_work={self.total_work:g})"
        )


def profile_from_schedule(schedule: Schedule, processor: int = 0) -> SpeedProfile:
    """Extract the speed profile of one processor from a schedule."""
    segments = [
        SpeedSegment(p.start, p.end, p.speed)
        for p in schedule.pieces
        if p.processor == processor
    ]
    if not segments:
        raise InvalidScheduleError(f"processor {processor} has no pieces in this schedule")
    return SpeedProfile(segments)

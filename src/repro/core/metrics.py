"""Scheduling metrics and their structural properties.

Section 5 of the paper proves the cyclic-assignment theorem for any metric
that is *symmetric* (invariant under permuting the completion times) and
*non-decreasing* (does not decrease when any completion time increases).
Makespan and total flow have both properties; total weighted flow is
non-decreasing but not symmetric.

This module defines a small metric registry so that multiprocessor code can
check those preconditions programmatically, and provides the metric
evaluation functions shared by algorithms, tests and benchmarks.  Metrics can
be evaluated either from a :class:`~repro.core.schedule.Schedule` or directly
from a vector of completion times (the form the paper's proofs use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..exceptions import InvalidInstanceError
from .job import Instance
from .schedule import Schedule

__all__ = [
    "Metric",
    "MAKESPAN",
    "TOTAL_FLOW",
    "TOTAL_WEIGHTED_FLOW",
    "MAX_FLOW",
    "METRICS",
    "makespan",
    "total_flow",
    "total_weighted_flow",
    "max_flow",
    "evaluate",
    "evaluate_batch",
]


@dataclass(frozen=True)
class Metric:
    """A scheduling metric together with its structural properties.

    ``from_completions(completions, instance)`` computes the metric value from
    a completion-time vector aligned with the instance's job order.
    """

    name: str
    symmetric: bool
    non_decreasing: bool
    from_completions: Callable[[np.ndarray, Instance], float]

    def of_schedule(self, schedule: Schedule) -> float:
        """Evaluate the metric on a schedule."""
        return self.from_completions(schedule.completion_times, schedule.instance)

    def supports_cyclic_theorem(self) -> bool:
        """Whether Theorem 10 (cyclic assignment optimality) applies to this metric."""
        return self.symmetric and self.non_decreasing

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Metric({self.name!r}, symmetric={self.symmetric}, "
            f"non_decreasing={self.non_decreasing})"
        )


# ----------------------------------------------------------------------
# metric value functions
# ----------------------------------------------------------------------

def _check(completions: np.ndarray, instance: Instance) -> np.ndarray:
    completions = np.asarray(completions, dtype=float)
    if completions.shape != (instance.n_jobs,):
        raise InvalidInstanceError(
            f"completion vector shape {completions.shape} does not match "
            f"{instance.n_jobs} jobs"
        )
    return completions


def makespan(completions: np.ndarray, instance: Instance) -> float:
    """``max_i C_i``."""
    return float(_check(completions, instance).max())


def total_flow(completions: np.ndarray, instance: Instance) -> float:
    """``sum_i (C_i - r_i)``."""
    completions = _check(completions, instance)
    return float(np.sum(completions - instance.releases))


def total_weighted_flow(completions: np.ndarray, instance: Instance) -> float:
    """``sum_i weight_i * (C_i - r_i)`` (non-symmetric example from the paper)."""
    completions = _check(completions, instance)
    return float(np.sum(instance.weights * (completions - instance.releases)))


def max_flow(completions: np.ndarray, instance: Instance) -> float:
    """``max_i (C_i - r_i)``; symmetric only when all releases coincide.

    Registered as non-symmetric because permuting completion times across jobs
    with different release times changes its value.
    """
    completions = _check(completions, instance)
    return float(np.max(completions - instance.releases))


MAKESPAN = Metric("makespan", symmetric=True, non_decreasing=True, from_completions=makespan)
TOTAL_FLOW = Metric("total_flow", symmetric=True, non_decreasing=True, from_completions=total_flow)
TOTAL_WEIGHTED_FLOW = Metric(
    "total_weighted_flow",
    symmetric=False,
    non_decreasing=True,
    from_completions=total_weighted_flow,
)
MAX_FLOW = Metric("max_flow", symmetric=False, non_decreasing=True, from_completions=max_flow)

#: Registry of built-in metrics, keyed by name.
METRICS: Mapping[str, Metric] = {
    m.name: m for m in (MAKESPAN, TOTAL_FLOW, TOTAL_WEIGHTED_FLOW, MAX_FLOW)
}


def evaluate(metric: str | Metric, schedule: Schedule) -> float:
    """Evaluate a metric (by name or object) on a schedule."""
    if isinstance(metric, str):
        try:
            metric = METRICS[metric]
        except KeyError as exc:
            raise InvalidInstanceError(
                f"unknown metric {metric!r}; known metrics: {sorted(METRICS)}"
            ) from exc
    return metric.of_schedule(schedule)


def evaluate_batch(
    metric: str | Metric, completions: np.ndarray, instance: Instance
) -> np.ndarray:
    """Evaluate a metric over a batch of completion-time vectors at once.

    ``completions`` is a ``(k, n)`` matrix of ``k`` candidate completion
    vectors for the same ``n``-job instance; returns the ``k`` metric values.
    The built-in metrics reduce along ``axis=1`` in one vectorised pass;
    unknown metrics fall back to a per-row loop.
    """
    if isinstance(metric, str):
        try:
            metric = METRICS[metric]
        except KeyError as exc:
            raise InvalidInstanceError(
                f"unknown metric {metric!r}; known metrics: {sorted(METRICS)}"
            ) from exc
    completions = np.asarray(completions, dtype=float)
    if completions.ndim != 2 or completions.shape[1] != instance.n_jobs:
        raise InvalidInstanceError(
            f"completion batch shape {completions.shape} does not match "
            f"(k, {instance.n_jobs})"
        )
    # dispatch on metric identity (not name) so user-constructed metrics that
    # happen to reuse a built-in name still get their own from_completions
    if metric is MAKESPAN:
        return completions.max(axis=1)
    if metric is TOTAL_FLOW:
        return np.sum(completions - instance.releases, axis=1)
    if metric is TOTAL_WEIGHTED_FLOW:
        return np.sum(instance.weights * (completions - instance.releases), axis=1)
    if metric is MAX_FLOW:
        return np.max(completions - instance.releases, axis=1)
    return np.array(
        [metric.from_completions(row, instance) for row in completions]
    )

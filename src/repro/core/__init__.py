"""Core model: jobs, power functions, schedules, blocks, metrics, trade-off curves.

Everything in this subpackage is algorithm-agnostic: it defines the problem
(Section 1 of the paper), the schedule objects the algorithms produce, the
block machinery of Section 3, and the Pareto-curve representation used for
the non-dominated frontier of Section 3.2.
"""

from . import kernels
from .blocks import Block, BlockConfiguration, blocks_from_speeds, evaluate_configuration, fixed_block_speed
from .job import Instance, Job
from .metrics import (
    MAKESPAN,
    MAX_FLOW,
    METRICS,
    TOTAL_FLOW,
    TOTAL_WEIGHTED_FLOW,
    Metric,
    evaluate,
)
from .pareto import CurveSegment, TradeoffCurve
from .power import (
    CUBE,
    SQUARE,
    AffinePolynomialPower,
    PolynomialPower,
    PowerFunction,
    TabulatedConvexPower,
)
from .schedule import Piece, Schedule
from .speed_profile import SpeedProfile, SpeedSegment, profile_from_schedule

#: Lemma 2-6 structure checks now live in :mod:`repro.verify.structure`; the
#: re-exports below are resolved lazily (module ``__getattr__``) to keep
#: ``repro.core`` free of an eager core -> verify import edge.
_STRUCTURE_EXPORTS = (
    "StructureReport",
    "check_optimal_structure",
    "assert_optimal_structure",
)


def __getattr__(name: str):
    if name in _STRUCTURE_EXPORTS:
        from ..verify import structure

        return getattr(structure, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "kernels",
    "Block",
    "BlockConfiguration",
    "blocks_from_speeds",
    "evaluate_configuration",
    "fixed_block_speed",
    "Instance",
    "Job",
    "Metric",
    "METRICS",
    "MAKESPAN",
    "TOTAL_FLOW",
    "TOTAL_WEIGHTED_FLOW",
    "MAX_FLOW",
    "evaluate",
    "CurveSegment",
    "TradeoffCurve",
    "PowerFunction",
    "PolynomialPower",
    "AffinePolynomialPower",
    "TabulatedConvexPower",
    "CUBE",
    "SQUARE",
    "Piece",
    "Schedule",
    "SpeedProfile",
    "SpeedSegment",
    "profile_from_schedule",
    "StructureReport",
    "check_optimal_structure",
    "assert_optimal_structure",
]

"""Schedule representation and evaluation.

A *schedule* assigns each job one or more execution pieces, each piece being a
time interval on a processor together with a constant speed.  The optimal
schedules constructed by the paper's algorithms always run each job
contiguously at a single speed (Lemma 2), but the more general representation
is needed for:

* the deadline-based substrate algorithms (YDS / AVR / OA / BKP) which
  preempt jobs,
* independent validation: any candidate schedule can be replayed and its
  energy / metrics recomputed from the raw pieces, with no reference to the
  algorithm that produced it.

The module deliberately separates *construction helpers* (``from_speeds`` for
the canonical run-in-release-order uniprocessor schedules) from *evaluation*
(completion times, makespan, flow, energy) so that algorithm modules only
produce data and all scoring lives in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import InvalidScheduleError
from .job import Instance
from .kernels import chain_start_times, power_eval
from .power import PowerFunction

__all__ = ["Piece", "Schedule"]

_TIME_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Piece:
    """One contiguous execution piece of a job on a processor.

    ``speed`` is constant over the piece; the work completed by the piece is
    ``speed * (end - start)``.
    """

    job: int
    processor: int
    start: float
    end: float
    speed: float

    def __post_init__(self) -> None:
        if self.job < 0 or self.processor < 0:
            raise InvalidScheduleError(
                f"piece indices must be non-negative, got job={self.job}, "
                f"processor={self.processor}"
            )
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise InvalidScheduleError(
                f"piece times must be finite, got [{self.start}, {self.end}]"
            )
        if self.end <= self.start:
            raise InvalidScheduleError(
                f"piece must have positive duration, got [{self.start}, {self.end}]"
            )
        if not math.isfinite(self.speed) or self.speed <= 0.0:
            raise InvalidScheduleError(
                f"piece speed must be finite and > 0, got {self.speed}"
            )

    @property
    def duration(self) -> float:
        """Length of the piece in time."""
        return self.end - self.start

    @property
    def work(self) -> float:
        """Work completed by the piece."""
        return self.speed * self.duration


class Schedule:
    """A complete schedule for an :class:`~repro.core.job.Instance`.

    Parameters
    ----------
    instance:
        The problem instance being scheduled.
    power:
        The power function used to charge energy.
    pieces:
        All execution pieces.  Order does not matter; they are sorted
        internally.
    n_processors:
        Number of processors.  Defaults to one more than the largest processor
        index appearing in ``pieces`` (at least 1).
    """

    def __init__(
        self,
        instance: Instance,
        power: PowerFunction,
        pieces: Iterable[Piece],
        n_processors: int | None = None,
    ) -> None:
        self.instance = instance
        self.power = power
        self.pieces: tuple[Piece, ...] = tuple(
            sorted(pieces, key=lambda p: (p.processor, p.start, p.job))
        )
        if not self.pieces:
            raise InvalidScheduleError("a schedule must contain at least one piece")
        max_proc = max(p.processor for p in self.pieces)
        if n_processors is None:
            n_processors = max_proc + 1
        if n_processors <= max_proc:
            raise InvalidScheduleError(
                f"n_processors={n_processors} but a piece uses processor {max_proc}"
            )
        self.n_processors = int(n_processors)
        self._completion_cache: np.ndarray | None = None
        self._start_cache: np.ndarray | None = None
        self._piece_arrays_cache: tuple[np.ndarray, ...] | None = None

    def _piece_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Columnar view of the pieces: (jobs, processors, starts, ends, speeds).

        Built once and cached; every aggregate metric below is a single array
        expression over these columns instead of a Python loop over pieces.
        """
        if self._piece_arrays_cache is None:
            count = len(self.pieces)
            jobs = np.fromiter((p.job for p in self.pieces), dtype=np.intp, count=count)
            procs = np.fromiter((p.processor for p in self.pieces), dtype=np.intp, count=count)
            starts = np.fromiter((p.start for p in self.pieces), dtype=float, count=count)
            ends = np.fromiter((p.end for p in self.pieces), dtype=float, count=count)
            speeds = np.fromiter((p.speed for p in self.pieces), dtype=float, count=count)
            if jobs.max() >= self.instance.n_jobs:
                bad = int(jobs.max())
                raise InvalidScheduleError(
                    f"piece references job {bad} but the instance has only "
                    f"{self.instance.n_jobs} jobs"
                )
            self._piece_arrays_cache = (jobs, procs, starts, ends, speeds)
        return self._piece_arrays_cache

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_speeds(
        cls,
        instance: Instance,
        power: PowerFunction,
        speeds: Sequence[float],
        processor: int = 0,
        n_processors: int | None = None,
        start_time: float | None = None,
    ) -> "Schedule":
        """Build the canonical uniprocessor schedule from per-job speeds.

        Jobs run in release order (the instance's job order), each job starting
        at the later of its release time and the previous job's completion, and
        running contiguously at its given speed.  This is the schedule shape
        used by every optimal uniprocessor solution in the paper (Lemmas 2-4).
        """
        if len(speeds) != instance.n_jobs:
            raise InvalidScheduleError(
                f"need one speed per job ({instance.n_jobs}), got {len(speeds)}"
            )
        speeds_arr = np.asarray(speeds, dtype=float)
        bad = np.where((speeds_arr <= 0.0) | ~np.isfinite(speeds_arr))[0]
        if len(bad):
            j = int(bad[0])
            raise InvalidScheduleError(
                f"job {j}: speed must be finite and > 0, got {float(speeds_arr[j])}"
            )
        clock = instance.first_release if start_time is None else float(start_time)
        durations = instance.works / speeds_arr
        starts, ends = chain_start_times(instance.releases, durations, clock)
        pieces = [
            Piece(
                job=j,
                processor=processor,
                start=float(starts[j]),
                end=float(ends[j]),
                speed=float(speeds_arr[j]),
            )
            for j in range(instance.n_jobs)
        ]
        return cls(instance, power, pieces, n_processors=n_processors)

    @classmethod
    def from_processor_speeds(
        cls,
        instance: Instance,
        power: PowerFunction,
        assignment: Mapping[int, Sequence[int]],
        speeds: Sequence[float],
        n_processors: int | None = None,
    ) -> "Schedule":
        """Build a multiprocessor schedule from an assignment and per-job speeds.

        ``assignment`` maps processor index -> ordered list of job indices run
        on that processor (in execution order).  Each job runs contiguously at
        ``speeds[job]`` starting at the later of its release time and the
        previous job's completion on the same processor.
        """
        if len(speeds) != instance.n_jobs:
            raise InvalidScheduleError(
                f"need one speed per job ({instance.n_jobs}), got {len(speeds)}"
            )
        seen: set[int] = set()
        pieces: list[Piece] = []
        for proc, job_order in assignment.items():
            clock = -math.inf
            for j in job_order:
                if j in seen:
                    raise InvalidScheduleError(f"job {j} assigned more than once")
                seen.add(j)
                job = instance.jobs[j]
                speed = float(speeds[j])
                if speed <= 0.0 or not math.isfinite(speed):
                    raise InvalidScheduleError(
                        f"job {j}: speed must be finite and > 0, got {speed}"
                    )
                begin = max(clock, job.release)
                duration = job.work / speed
                pieces.append(
                    Piece(job=j, processor=int(proc), start=begin, end=begin + duration, speed=speed)
                )
                clock = begin + duration
        if seen != set(range(instance.n_jobs)):
            missing = sorted(set(range(instance.n_jobs)) - seen)
            raise InvalidScheduleError(f"jobs not assigned to any processor: {missing}")
        return cls(instance, power, pieces, n_processors=n_processors)

    # ------------------------------------------------------------------
    # per-job quantities
    # ------------------------------------------------------------------
    def _job_pieces(self) -> list[list[Piece]]:
        by_job: list[list[Piece]] = [[] for _ in range(self.instance.n_jobs)]
        for piece in self.pieces:
            if piece.job >= self.instance.n_jobs:
                raise InvalidScheduleError(
                    f"piece references job {piece.job} but the instance has only "
                    f"{self.instance.n_jobs} jobs"
                )
            by_job[piece.job].append(piece)
        return by_job

    @property
    def start_times(self) -> np.ndarray:
        """Start time of each job (first piece start)."""
        if self._start_cache is None:
            self._compute_times()
        assert self._start_cache is not None
        return self._start_cache

    @property
    def completion_times(self) -> np.ndarray:
        """Completion time of each job (last piece end)."""
        if self._completion_cache is None:
            self._compute_times()
        assert self._completion_cache is not None
        return self._completion_cache

    def _compute_times(self) -> None:
        jobs, _, piece_starts, piece_ends, _ = self._piece_arrays()
        starts = np.full(self.instance.n_jobs, math.inf)
        ends = np.full(self.instance.n_jobs, -math.inf)
        np.minimum.at(starts, jobs, piece_starts)
        np.maximum.at(ends, jobs, piece_ends)
        if np.any(~np.isfinite(starts)) or np.any(~np.isfinite(ends)):
            missing = [i for i in range(self.instance.n_jobs) if not math.isfinite(starts[i])]
            raise InvalidScheduleError(f"jobs with no execution pieces: {missing}")
        self._start_cache = starts
        self._completion_cache = ends

    @property
    def speeds(self) -> np.ndarray:
        """Per-job speed, defined only for jobs that run at a single speed.

        For jobs executed in several pieces at different speeds the
        *work-weighted average* speed is returned; the canonical optimal
        schedules always have a single speed per job so this is exact there.
        """
        jobs, _, starts, ends, piece_speeds = self._piece_arrays()
        durations = ends - starts
        total_time = np.bincount(jobs, weights=durations, minlength=self.instance.n_jobs)
        total_work = np.bincount(
            jobs, weights=piece_speeds * durations, minlength=self.instance.n_jobs
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(total_time > 0, total_work / total_time, math.nan)

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Completion time of the last job, ``max_i C_i``."""
        return float(self.completion_times.max())

    @property
    def total_flow(self) -> float:
        """Sum over jobs of ``C_i - r_i``."""
        return float(np.sum(self.completion_times - self.instance.releases))

    @property
    def total_weighted_flow(self) -> float:
        """Sum over jobs of ``weight_i * (C_i - r_i)``."""
        return float(
            np.sum(self.instance.weights * (self.completion_times - self.instance.releases))
        )

    @property
    def max_flow(self) -> float:
        """Maximum over jobs of ``C_i - r_i``."""
        return float(np.max(self.completion_times - self.instance.releases))

    @property
    def energy(self) -> float:
        """Total energy consumed by all pieces."""
        _, _, starts, ends, speeds = self._piece_arrays()
        return float(np.sum(power_eval(self.power, speeds) * (ends - starts)))

    def energy_by_processor(self) -> np.ndarray:
        """Energy consumed on each processor."""
        _, procs, starts, ends, speeds = self._piece_arrays()
        return np.bincount(
            procs,
            weights=power_eval(self.power, speeds) * (ends - starts),
            minlength=self.n_processors,
        )

    def processor_completion_times(self) -> np.ndarray:
        """Latest piece end on each processor (``0`` for idle processors)."""
        _, procs, _, ends, _ = self._piece_arrays()
        result = np.zeros(self.n_processors)
        np.maximum.at(result, procs, ends)
        return result

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(
        self,
        energy_budget: float | None = None,
        work_rtol: float = 1e-6,
        require_deadlines: bool = False,
    ) -> None:
        """Check feasibility; raise :class:`InvalidScheduleError` on violation.

        Checks performed:

        * every job's pieces complete exactly its work requirement (within
          ``work_rtol`` relative tolerance),
        * no piece starts before its job's release time,
        * pieces on the same processor do not overlap,
        * if ``require_deadlines``, every job finishes by its deadline,
        * if ``energy_budget`` is given, total energy does not exceed it
          (within a small relative tolerance).
        """
        by_job = self._job_pieces()
        for job, pieces in zip(self.instance.jobs, by_job):
            if not pieces:
                raise InvalidScheduleError(f"job {job.index} has no execution pieces")
            done = sum(p.work for p in pieces)
            if not math.isclose(done, job.work, rel_tol=work_rtol, abs_tol=1e-9):
                raise InvalidScheduleError(
                    f"job {job.index}: scheduled work {done:g} != required {job.work:g}"
                )
            for piece in pieces:
                if piece.start < job.release - _TIME_EPS:
                    raise InvalidScheduleError(
                        f"job {job.index} starts at {piece.start:g} before its "
                        f"release {job.release:g}"
                    )
                if require_deadlines and job.deadline is not None:
                    if piece.end > job.deadline + _TIME_EPS:
                        raise InvalidScheduleError(
                            f"job {job.index} finishes at {piece.end:g} after its "
                            f"deadline {job.deadline:g}"
                        )
        # per-processor non-overlap
        by_proc: dict[int, list[Piece]] = {}
        for piece in self.pieces:
            by_proc.setdefault(piece.processor, []).append(piece)
        for proc, pieces in by_proc.items():
            pieces.sort(key=lambda p: p.start)
            for a, b in zip(pieces, pieces[1:]):
                if b.start < a.end - _TIME_EPS:
                    raise InvalidScheduleError(
                        f"processor {proc}: pieces overlap "
                        f"([{a.start:g},{a.end:g}] job {a.job} and "
                        f"[{b.start:g},{b.end:g}] job {b.job})"
                    )
        if energy_budget is not None:
            used = self.energy
            if used > energy_budget * (1.0 + 1e-6) + 1e-9:
                raise InvalidScheduleError(
                    f"schedule uses energy {used:g} exceeding the budget {energy_budget:g}"
                )

    def is_valid(self, energy_budget: float | None = None) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(energy_budget=energy_budget)
        except InvalidScheduleError:
            return False
        return True

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(n_jobs={self.instance.n_jobs}, n_processors={self.n_processors}, "
            f"makespan={self.makespan:g}, flow={self.total_flow:g}, energy={self.energy:g})"
        )

"""Block machinery for uniprocessor power-aware makespan (Section 3).

A *block* is a maximal substring of jobs (in release order) such that each job
except the last finishes after the arrival of its successor.  In the optimal
schedule (Lemmas 2-6):

* the schedule is never idle between ``r_1`` and the last completion,
* every job in a block runs at the block's single speed,
* a non-final block ``(i, j)`` therefore starts exactly at ``r_i`` and ends
  exactly at ``r_{j+1}``, so its speed is ``sum(w_i..w_j) / (r_{j+1} - r_i)``,
* block speeds are non-decreasing over time.

This module provides the :class:`Block` value type, helpers to evaluate a
*block configuration* (a partition of the job sequence into consecutive
blocks) for a given energy budget, and a decomposition routine that recovers
the block structure from a list of per-job speeds.  The IncMerge algorithm
(:mod:`repro.makespan.incmerge`) and the frontier construction
(:mod:`repro.makespan.frontier`) are built on these helpers, and the
brute-force oracle (:mod:`repro.makespan.dp`) enumerates configurations
directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import BudgetError, InfeasibleError, InvalidInstanceError
from .job import Instance
from .power import PowerFunction

__all__ = [
    "Block",
    "BlockConfiguration",
    "fixed_block_speed",
    "evaluate_configuration",
    "blocks_from_speeds",
    "coincident_release_threshold",
]


def coincident_release_threshold(releases: np.ndarray) -> float:
    """Window length below which two releases are treated as coincident.

    A non-final block whose time window is this small would need an
    astronomically large speed (and energy), which both overflows floating
    point and can never be part of an optimal schedule; IncMerge and the
    frontier treat such blocks exactly like zero-length windows (they are
    immediately merged away).  The threshold is relative to the release-time
    scale of the instance.
    """
    scale = max(1.0, float(abs(releases[-1])))
    return 1e-12 * scale


@dataclass(frozen=True, slots=True)
class Block:
    """A block ``(first, last)`` of consecutive jobs (inclusive, 0-based).

    ``start_time`` is the time the block begins (the release of its first job
    in an optimal schedule); ``speed`` is the common speed of its jobs;
    ``work`` is the total work of its jobs.
    """

    first: int
    last: int
    start_time: float
    work: float
    speed: float

    def __post_init__(self) -> None:
        if self.last < self.first:
            raise InvalidInstanceError(
                f"block last index {self.last} < first index {self.first}"
            )
        if self.work <= 0.0:
            raise InvalidInstanceError(f"block work must be > 0, got {self.work}")
        if self.speed <= 0.0 or not math.isfinite(self.speed):
            raise InvalidInstanceError(f"block speed must be finite and > 0, got {self.speed}")

    @property
    def n_jobs(self) -> int:
        return self.last - self.first + 1

    @property
    def duration(self) -> float:
        return self.work / self.speed

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def energy(self, power: PowerFunction) -> float:
        """Energy consumed by the block."""
        return power.energy(self.work, self.speed)


@dataclass(frozen=True)
class BlockConfiguration:
    """A full partition of the job sequence into consecutive blocks.

    ``boundaries`` lists the index of the first job of each block, in order;
    the first entry is always ``0``.  E.g. for 5 jobs, ``(0, 2, 4)`` denotes
    blocks ``{0,1}``, ``{2,3}``, ``{4}``.
    """

    boundaries: tuple[int, ...]
    n_jobs: int

    def __post_init__(self) -> None:
        if not self.boundaries or self.boundaries[0] != 0:
            raise InvalidInstanceError("block boundaries must start with job 0")
        if any(b >= self.n_jobs or b < 0 for b in self.boundaries):
            raise InvalidInstanceError("block boundary out of range")
        if any(b2 <= b1 for b1, b2 in zip(self.boundaries, self.boundaries[1:])):
            raise InvalidInstanceError("block boundaries must be strictly increasing")

    @property
    def n_blocks(self) -> int:
        return len(self.boundaries)

    def block_ranges(self) -> list[tuple[int, int]]:
        """Inclusive ``(first, last)`` index pairs for each block."""
        firsts = list(self.boundaries)
        lasts = [b - 1 for b in firsts[1:]] + [self.n_jobs - 1]
        return list(zip(firsts, lasts))


def fixed_block_speed(instance: Instance, first: int, last: int) -> float:
    """Speed of a *non-final* block ``(first, last)`` in an optimal schedule.

    The block starts at ``r_first`` and must end exactly at ``r_{last+1}``
    (Lemma 4: no idle time), so its speed is total work over that window.
    Returns ``inf`` when the window has zero length (two jobs released at the
    same instant), which simply forces the blocks to merge in IncMerge.
    """
    if last + 1 >= instance.n_jobs:
        raise InvalidInstanceError(
            "fixed_block_speed is only defined for non-final blocks"
        )
    releases = instance.releases
    works = instance.works
    window = releases[last + 1] - releases[first]
    work = float(works[first : last + 1].sum())
    if window <= coincident_release_threshold(releases):
        return math.inf
    return work / window


def evaluate_configuration(
    instance: Instance,
    power: PowerFunction,
    config: BlockConfiguration,
    energy_budget: float,
    check_feasible: bool = True,
) -> tuple[list[Block], float] | None:
    """Evaluate a block configuration under an energy budget.

    Non-final blocks run at their fixed speed (ending exactly at the next
    block's first release); the final block spends whatever energy remains.
    Returns the list of blocks and the resulting makespan, or ``None`` when the
    configuration is infeasible for this budget, which happens when

    * a non-final block has infinite fixed speed (coincident releases), or
    * within some block a job would finish before its successor's release
      (the partition is not a valid *block* structure at these speeds), or
    * ``check_feasible`` is set and the fixed blocks alone already exceed the
      energy budget.

    This function is the semantic core shared by the brute-force oracle and by
    the tests that cross-check IncMerge.
    """
    if energy_budget <= 0.0 or not math.isfinite(energy_budget):
        raise BudgetError(f"energy budget must be finite and > 0, got {energy_budget}")
    if config.n_jobs != instance.n_jobs:
        raise InvalidInstanceError("configuration job count does not match the instance")

    releases = instance.releases
    works = instance.works
    ranges = config.block_ranges()
    blocks: list[Block] = []
    energy_fixed = 0.0

    for first, last in ranges[:-1]:
        speed = fixed_block_speed(instance, first, last)
        if not math.isfinite(speed):
            return None
        work = float(works[first : last + 1].sum())
        block = Block(first=first, last=last, start_time=float(releases[first]), work=work, speed=speed)
        if not _block_internally_consistent(releases, works, block):
            return None
        energy_fixed += block.energy(power)
        blocks.append(block)

    if check_feasible and energy_fixed >= energy_budget:
        return None

    first, last = ranges[-1]
    work = float(works[first : last + 1].sum())
    remaining = energy_budget - energy_fixed
    if remaining <= 0.0:
        return None
    speed = power.speed_for_energy(work, remaining)
    final = Block(
        first=first,
        last=last,
        start_time=float(releases[first]),
        work=work,
        speed=speed,
    )
    if not _block_internally_consistent(releases, works, final, is_final=True):
        return None
    blocks.append(final)

    makespan = final.end_time
    return blocks, makespan


def _block_internally_consistent(
    releases: np.ndarray,
    works: np.ndarray,
    block: Block,
    is_final: bool = False,
) -> bool:
    """Check that inside the block each job finishes no earlier than its successor's release.

    This is both the definition of a block and the feasibility requirement that
    no job inside the block would have to start before its release time.
    The final job of a non-final block must finish exactly at the next
    release; for the final block there is no such constraint on its last job.
    """
    t = block.start_time
    for j in range(block.first, block.last + 1):
        t += works[j] / block.speed
        if j < block.last:
            # job j is followed by job j+1 inside the block: j+1 must be
            # released by the time j finishes, otherwise the schedule would
            # need idle time (not a single block).
            if t < releases[j + 1] - 1e-9:
                return False
    if not is_final:
        nxt = block.last + 1
        if nxt < len(releases) and not math.isclose(t, releases[nxt], rel_tol=1e-9, abs_tol=1e-9):
            # non-final blocks end exactly at the next release by construction;
            # numerical drift beyond tolerance indicates an inconsistent config.
            return False
    return True


def blocks_from_speeds(
    instance: Instance,
    speeds: Sequence[float],
    atol: float = 1e-9,
) -> list[tuple[int, int]]:
    """Recover the block structure of the canonical schedule built from ``speeds``.

    Jobs run in release order, each starting at ``max(previous completion,
    release)``.  A new block starts whenever a job begins strictly later than
    its predecessor finished (i.e. after an idle gap) or at job 0.  Jobs whose
    completion coincides with the next release (within ``atol``) are treated
    as ending their block, matching the paper's "finishes after the arrival of
    its successor" strict inequality.
    """
    if len(speeds) != instance.n_jobs:
        raise InvalidInstanceError("need one speed per job")
    releases = instance.releases
    works = instance.works
    ranges: list[tuple[int, int]] = []
    start = 0
    t = float(releases[0])
    for j in range(instance.n_jobs):
        t = max(t, float(releases[j]))
        t += works[j] / float(speeds[j])
        is_last = j == instance.n_jobs - 1
        ends_block = is_last or t <= releases[j + 1] + atol
        if ends_block:
            ranges.append((start, j))
            start = j + 1
    return ranges

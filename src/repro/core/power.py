"""Power/speed models.

The paper assumes power is a *continuous, strictly convex* function of speed;
the most common concrete choice (and the one required by the closed-form
results, Theorem 8 and Figures 1-3) is ``power = speed ** alpha`` with
``alpha > 1`` (Yao, Demers, Shenker).  This module provides:

* :class:`PowerFunction` -- the abstract interface used by every algorithm.
  Only a handful of primitives are needed:

  - ``power(speed)``: instantaneous power draw,
  - ``energy_per_work(speed)``: energy needed per unit of work when running
    at that constant speed, i.e. ``power(speed) / speed`` (this is the
    function the paper's arguments always reason about, since running ``w``
    work at speed ``sigma`` takes time ``w / sigma``),
  - ``speed_for_energy_per_work(e)``: the inverse of the above, used by
    IncMerge to turn a leftover energy budget into the final block's speed.

* :class:`PolynomialPower` -- ``power = speed ** alpha`` with closed forms.
* :class:`AffinePolynomialPower` -- ``power = static + c * speed ** alpha``,
  a simple "leakage + dynamic power" model often used as a more realistic
  variant (still strictly convex in the dynamic part); useful to exercise the
  general-convex code paths of the algorithms that do not need closed forms.
* :class:`TabulatedConvexPower` -- a strictly convex power function defined by
  an arbitrary callable, with numeric inversion.  This is how the wireless
  transmission power functions of Uysal-Biyikoglu et al. (related work) can
  be plugged in.

All classes are immutable and cheap to copy around.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize

from ..exceptions import BudgetError, UnsupportedPowerFunctionError

__all__ = [
    "PowerFunction",
    "PolynomialPower",
    "AffinePolynomialPower",
    "TabulatedConvexPower",
    "CUBE",
    "SQUARE",
]


class PowerFunction(ABC):
    """Abstract strictly convex power function ``P(speed)``.

    Subclasses must guarantee that ``P`` is continuous and strictly convex on
    ``speed >= 0`` with ``P(0) = 0`` *or* ``P(0) >= 0`` with
    ``energy_per_work`` strictly increasing -- that is all the paper's
    exchange arguments need.
    """

    # -- primitives ----------------------------------------------------
    @abstractmethod
    def power(self, speed: float) -> float:
        """Instantaneous power drawn when running at ``speed >= 0``."""

    @abstractmethod
    def energy_per_work(self, speed: float) -> float:
        """Energy consumed per unit of work at constant ``speed > 0``.

        Equals ``power(speed) / speed``; must be strictly increasing in
        ``speed`` (this is equivalent to strict convexity of ``P`` through the
        origin and is what makes "slower is cheaper per unit work" true).
        """

    @abstractmethod
    def speed_for_energy_per_work(self, energy_per_work: float) -> float:
        """Inverse of :meth:`energy_per_work`.

        Given a per-unit-of-work energy allowance, return the constant speed
        that exactly spends it.  Raises :class:`BudgetError` for non-positive
        allowances.
        """

    # -- derived helpers ------------------------------------------------
    def energy(self, work: float, speed: float) -> float:
        """Energy to run ``work`` units at constant ``speed``."""
        if work < 0.0:
            raise BudgetError(f"work must be >= 0, got {work}")
        if work == 0.0:
            return 0.0
        if speed <= 0.0:
            raise BudgetError(f"speed must be > 0 to run positive work, got {speed}")
        return work * self.energy_per_work(speed)

    def energy_for_duration(self, work: float, duration: float) -> float:
        """Energy to run ``work`` units spread evenly over ``duration`` time."""
        if work < 0.0:
            raise BudgetError(f"work must be >= 0, got {work}")
        if work == 0.0:
            return 0.0
        if duration <= 0.0:
            raise BudgetError(f"duration must be > 0, got {duration}")
        return self.energy(work, work / duration)

    def speed_for_energy(self, work: float, energy: float) -> float:
        """Constant speed at which ``work`` units consume exactly ``energy``."""
        if work <= 0.0:
            raise BudgetError(f"work must be > 0, got {work}")
        if energy <= 0.0:
            raise BudgetError(f"energy must be > 0, got {energy}")
        return self.speed_for_energy_per_work(energy / work)

    def denergy_dduration(self, work: float, duration: float) -> float:
        """Derivative of :meth:`energy_for_duration` with respect to the duration.

        Used by the convex-programming reference solvers to supply analytic
        constraint gradients.  The default implementation is a central finite
        difference; concrete power functions with closed forms override it.
        """
        if work <= 0.0:
            raise BudgetError(f"work must be > 0, got {work}")
        if duration <= 0.0:
            raise BudgetError(f"duration must be > 0, got {duration}")
        h = duration * 1e-6
        return (
            self.energy_for_duration(work, duration + h)
            - self.energy_for_duration(work, duration - h)
        ) / (2.0 * h)

    def duration_for_energy(self, work: float, energy: float) -> float:
        """Duration taken by ``work`` units when given exactly ``energy``."""
        return work / self.speed_for_energy(work, energy)

    # -- introspection ---------------------------------------------------
    @property
    def is_polynomial(self) -> bool:
        """Whether this is exactly ``P(s) = s ** alpha`` (enables closed forms)."""
        return False

    @property
    def alpha(self) -> float:
        """Exponent for polynomial power functions.

        Raises :class:`UnsupportedPowerFunctionError` for non-polynomial
        models; callers that need ``alpha`` should check :attr:`is_polynomial`
        first.
        """
        raise UnsupportedPowerFunctionError(
            f"{type(self).__name__} does not expose a polynomial exponent"
        )


@dataclass(frozen=True)
class PolynomialPower(PowerFunction):
    """``power = speed ** alpha`` with ``alpha > 1`` (the standard DVFS model).

    Closed forms used throughout the package:

    * energy per unit work at speed ``s`` is ``s ** (alpha - 1)``,
    * the speed that spends ``e`` energy per unit work is ``e ** (1/(alpha-1))``.
    """

    exponent: float = 3.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.exponent) or self.exponent <= 1.0:
            raise UnsupportedPowerFunctionError(
                f"PolynomialPower requires alpha > 1, got {self.exponent!r}"
            )

    def power(self, speed: float) -> float:
        if speed < 0.0:
            raise BudgetError(f"speed must be >= 0, got {speed}")
        return float(speed) ** self.exponent

    def energy_per_work(self, speed: float) -> float:
        if speed <= 0.0:
            raise BudgetError(f"speed must be > 0, got {speed}")
        return float(speed) ** (self.exponent - 1.0)

    def speed_for_energy_per_work(self, energy_per_work: float) -> float:
        if energy_per_work <= 0.0:
            raise BudgetError(
                f"energy per unit work must be > 0, got {energy_per_work}"
            )
        return float(energy_per_work) ** (1.0 / (self.exponent - 1.0))

    def denergy_dduration(self, work: float, duration: float) -> float:
        if work <= 0.0:
            raise BudgetError(f"work must be > 0, got {work}")
        if duration <= 0.0:
            raise BudgetError(f"duration must be > 0, got {duration}")
        # energy(d) = w**alpha * d**(1 - alpha)
        return (1.0 - self.exponent) * work**self.exponent * duration**(-self.exponent)

    @property
    def is_polynomial(self) -> bool:
        return True

    @property
    def alpha(self) -> float:
        return self.exponent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolynomialPower(alpha={self.exponent:g})"


@dataclass(frozen=True)
class AffinePolynomialPower(PowerFunction):
    """``power = static + coefficient * speed ** alpha``.

    ``static`` models leakage power burned whenever the processor is on.  The
    energy *per unit work* is ``static / s + coefficient * s ** (alpha - 1)``
    which is not monotone near zero when ``static > 0``; the paper's
    exchange arguments require monotonicity, so this class restricts speeds to
    be at or above the "critical speed" where energy-per-work is minimised.
    This is the standard treatment of leakage in the speed-scaling literature
    and keeps the class usable as a drop-in strictly-convex power function for
    the general algorithms.
    """

    exponent: float = 3.0
    coefficient: float = 1.0
    static: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.exponent) or self.exponent <= 1.0:
            raise UnsupportedPowerFunctionError(
                f"AffinePolynomialPower requires alpha > 1, got {self.exponent!r}"
            )
        if self.coefficient <= 0.0 or not math.isfinite(self.coefficient):
            raise UnsupportedPowerFunctionError(
                f"coefficient must be > 0, got {self.coefficient!r}"
            )
        if self.static < 0.0 or not math.isfinite(self.static):
            raise UnsupportedPowerFunctionError(
                f"static power must be >= 0, got {self.static!r}"
            )

    @property
    def critical_speed(self) -> float:
        """Speed minimising energy per unit work (0 when there is no leakage)."""
        if self.static == 0.0:
            return 0.0
        # d/ds [static/s + c*s^(a-1)] = -static/s^2 + c*(a-1)*s^(a-2) = 0
        return (self.static / (self.coefficient * (self.exponent - 1.0))) ** (
            1.0 / self.exponent
        )

    def power(self, speed: float) -> float:
        if speed < 0.0:
            raise BudgetError(f"speed must be >= 0, got {speed}")
        if speed == 0.0:
            return 0.0
        return self.static + self.coefficient * float(speed) ** self.exponent

    def energy_per_work(self, speed: float) -> float:
        if speed <= 0.0:
            raise BudgetError(f"speed must be > 0, got {speed}")
        lo = self.critical_speed
        if lo > 0.0 and speed < lo - 1e-15:
            raise BudgetError(
                f"speed {speed:g} is below the critical speed {lo:g}; "
                "energy per work is not monotone below it"
            )
        return self.static / speed + self.coefficient * float(speed) ** (
            self.exponent - 1.0
        )

    def speed_for_energy_per_work(self, energy_per_work: float) -> float:
        if energy_per_work <= 0.0:
            raise BudgetError(
                f"energy per unit work must be > 0, got {energy_per_work}"
            )
        lo = max(self.critical_speed, 1e-300)
        minimum = self.energy_per_work(max(lo, 1e-12)) if self.static else 0.0
        if self.static and energy_per_work < minimum - 1e-12:
            raise BudgetError(
                f"energy per unit work {energy_per_work:g} is below the minimum "
                f"achievable {minimum:g} for this leakage model"
            )

        def residual(speed: float) -> float:
            return self.energy_per_work(speed) - energy_per_work

        hi = max(lo, 1.0)
        while residual(hi) < 0.0:
            hi *= 2.0
            if hi > 1e150:  # pragma: no cover - defensive
                raise BudgetError("energy per unit work too large to invert")
        lo_bracket = max(lo, 1e-12)
        if residual(lo_bracket) > 0.0:
            return lo_bracket
        return float(optimize.brentq(residual, lo_bracket, hi, xtol=1e-14, rtol=1e-14))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AffinePolynomialPower(alpha={self.exponent:g}, "
            f"coefficient={self.coefficient:g}, static={self.static:g})"
        )


class TabulatedConvexPower(PowerFunction):
    """A strictly convex power function given as an arbitrary callable.

    The callable must be strictly convex with ``P(0) = 0`` (so that energy per
    unit work is strictly increasing).  Inversion is performed numerically
    with bracketing + Brent's method; convexity is spot-checked on a small
    grid at construction time to catch obviously wrong inputs early.

    This is the hook for reproducing the related-work setting of
    Uysal-Biyikoglu, Prabhakar and El Gamal, whose wireless power functions
    are different from ``speed ** alpha`` but still strictly convex.
    """

    def __init__(
        self,
        func: Callable[[float], float],
        name: str = "tabulated",
        check_range: tuple[float, float] = (1e-3, 1e3),
    ) -> None:
        self._func = func
        self._name = str(name)
        lo, hi = check_range
        if not (0.0 < lo < hi):
            raise UnsupportedPowerFunctionError("check_range must satisfy 0 < lo < hi")
        grid = np.geomspace(lo, hi, 32)
        values = np.array([float(func(s)) for s in grid])
        if np.any(~np.isfinite(values)) or np.any(values < 0.0):
            raise UnsupportedPowerFunctionError(
                "power function must be finite and non-negative on the check range"
            )
        per_work = values / grid
        if np.any(np.diff(per_work) <= 0.0):
            raise UnsupportedPowerFunctionError(
                "power(speed)/speed must be strictly increasing (strict convexity "
                "through the origin); the supplied callable is not"
            )

    def power(self, speed: float) -> float:
        if speed < 0.0:
            raise BudgetError(f"speed must be >= 0, got {speed}")
        if speed == 0.0:
            return 0.0
        return float(self._func(float(speed)))

    def energy_per_work(self, speed: float) -> float:
        if speed <= 0.0:
            raise BudgetError(f"speed must be > 0, got {speed}")
        return self.power(speed) / float(speed)

    def speed_for_energy_per_work(self, energy_per_work: float) -> float:
        if energy_per_work <= 0.0:
            raise BudgetError(
                f"energy per unit work must be > 0, got {energy_per_work}"
            )

        def residual(speed: float) -> float:
            return self.energy_per_work(speed) - energy_per_work

        lo, hi = 1e-12, 1.0
        while residual(hi) < 0.0:
            hi *= 2.0
            if hi > 1e150:  # pragma: no cover - defensive
                raise BudgetError("energy per unit work too large to invert")
        while residual(lo) > 0.0:
            lo /= 2.0
            if lo < 1e-300:
                raise BudgetError("energy per unit work too small to invert")
        return float(optimize.brentq(residual, lo, hi, xtol=1e-14, rtol=1e-14))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TabulatedConvexPower(name={self._name!r})"


#: The cube-law power function used by the paper's figures and Theorem 8.
CUBE = PolynomialPower(3.0)

#: The square-law power function (``alpha = 2``), a common alternative.
SQUARE = PolynomialPower(2.0)

"""Vectorized kernel layer shared by the solver stack.

Every hot path in the package ultimately evaluates one of a small number of
primitives: prefix sums of work over the (sorted) release order, power /
energy of many speeds at once, the canonical run-in-release-order timing
recurrence, and — for the YDS substrate — the maximum-density interval over
the release x deadline critical grid.  This module implements those
primitives once, as NumPy array kernels, so that

* :func:`repro.online.yds.yds_speeds` finds each critical interval with a
  single 2-D prefix-sum/argmax instead of re-enumerating member sets
  (the seed implementation was ~O(n^4) in practice),
* :func:`repro.makespan.incmerge.incmerge` precomputes all initial block
  speeds/energies in bulk and runs its merge loop on closed-form scalar
  closures instead of per-call method dispatch,
* :meth:`repro.core.schedule.Schedule.from_speeds` and the schedule
  aggregation properties (energy, completion times, per-processor totals)
  are single array expressions,
* the batch engine (:mod:`repro.batch`) amortises all of the above over many
  instances.

Scalar reference implementations are retained next to each vectorized
caller; ``tests/test_kernels.py`` pins the two to each other at 1e-9 on
randomized instances.

On top of the per-instance kernels sits a *structure-of-arrays batched tier*
(the ``*_batched`` functions): many same-shape instances are packed into
padded 2-D ``(batch, n)`` arrays (:func:`pack_instances`) and each kernel
runs once over the whole chunk, so a cache-cold sweep of small instances
stops paying per-instance Python dispatch.  The batched YDS round
(:func:`max_density_interval_batched`) is engineered for *bitwise* parity
with :func:`max_density_interval`: duplicate-keeping sorted grid axes with
work scattered at the last-duplicate release / first-duplicate deadline
index reproduce the unique-grid prefix sums exactly (interleaved zero cells
do not perturb IEEE addition), and the first-flat-argmax tie-break maps to
the unique grid because duplicates are adjacent and ordered.
``tests/test_batched_kernels.py`` pins every batched kernel to a loop over
its per-instance counterpart.

Fast closed forms are used only for :class:`~repro.core.power.PolynomialPower`
(``power = speed ** alpha``), where they are exact; every other power
function falls back to the scalar methods element-wise, preserving their
validation and error behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .power import PolynomialPower, PowerFunction

__all__ = [
    "prefix_sums",
    "power_eval",
    "energy_eval",
    "scalar_energy_fn",
    "scalar_speed_for_energy_fn",
    "chain_start_times",
    "max_density_interval",
    "interval_work_grid",
    "stepwise_rate_profile",
    "common_release_prefix_speeds",
    "PaddedBatch",
    "pack_instances",
    "BatchWorkspace",
    "prefix_sums_batched",
    "power_eval_batched",
    "energy_eval_batched",
    "chain_start_times_batched",
    "interval_work_grid_batched",
    "max_density_interval_batched",
    "stepwise_rate_profile_batched",
    "common_release_prefix_speeds_batched",
]


def prefix_sums(values: np.ndarray) -> np.ndarray:
    """Prefix sums with a leading zero: ``out[i] = sum(values[:i])``.

    ``out`` has one more entry than ``values`` so that range sums are
    ``out[j] - out[i]`` for the half-open range ``[i, j)``.
    """
    values = np.asarray(values, dtype=float)
    out = np.empty(len(values) + 1)
    out[0] = 0.0
    np.cumsum(values, out=out[1:])
    return out


# ----------------------------------------------------------------------
# vectorized power-function evaluation
# ----------------------------------------------------------------------

def power_eval(power: PowerFunction, speeds: np.ndarray) -> np.ndarray:
    """Vectorised ``P(speed)`` over an array of non-negative speeds."""
    speeds = np.asarray(speeds, dtype=float)
    if isinstance(power, PolynomialPower):
        return speeds**power.exponent
    return np.array([power.power(float(s)) for s in speeds.ravel()]).reshape(
        speeds.shape
    )


def energy_eval(
    power: PowerFunction, works: np.ndarray, speeds: np.ndarray
) -> np.ndarray:
    """Vectorised ``power.energy(work, speed)`` over aligned arrays.

    All speeds must be finite and positive (callers mask out the sentinel
    infinite-speed blocks before evaluating).
    """
    works = np.asarray(works, dtype=float)
    speeds = np.asarray(speeds, dtype=float)
    if isinstance(power, PolynomialPower):
        return works * speeds ** (power.exponent - 1.0)
    works_b, speeds_b = np.broadcast_arrays(works, speeds)
    return np.array(
        [
            power.energy(float(w), float(s))
            for w, s in zip(works_b.ravel(), speeds_b.ravel())
        ]
    ).reshape(works_b.shape)


def scalar_energy_fn(power: PowerFunction) -> Callable[[float, float], float]:
    """A fast scalar ``(work, speed) -> energy`` closure.

    Closed form for polynomial powers (skipping per-call validation that the
    solver loops already guarantee); the bound method otherwise.
    """
    if isinstance(power, PolynomialPower):
        a1 = power.exponent - 1.0

        def energy(work: float, speed: float, _a1: float = a1) -> float:
            return work * speed**_a1

        return energy
    return power.energy


def scalar_speed_for_energy_fn(power: PowerFunction) -> Callable[[float, float], float]:
    """A fast scalar ``(work, energy) -> speed`` closure (inverse of the above)."""
    if isinstance(power, PolynomialPower):
        inv = 1.0 / (power.exponent - 1.0)

        def speed(work: float, energy: float, _inv: float = inv) -> float:
            return (energy / work) ** _inv

        return speed
    return power.speed_for_energy


# ----------------------------------------------------------------------
# canonical run-in-release-order timing recurrence
# ----------------------------------------------------------------------

def chain_start_times(
    releases: np.ndarray, durations: np.ndarray, clock0: float
) -> tuple[np.ndarray, np.ndarray]:
    """Start and end times of jobs run back-to-back in the given order.

    Implements the recurrence ``start[i] = max(release[i], end[i-1])`` with
    ``end[i] = start[i] + duration[i]`` and ``end[-1] = clock0`` as a single
    prefix-maximum: with ``P[i] = sum(durations[:i])``,
    ``start[i] = max_{j<=i}(release[j] - P[j]) + P[i]`` (treating ``clock0``
    as an extra release of job 0).
    """
    releases = np.asarray(releases, dtype=float)
    durations = np.asarray(durations, dtype=float)
    if len(releases) == 0:
        empty = np.empty(0)
        return empty, empty.copy()
    prefix = prefix_sums(durations)
    adjusted = releases - prefix[:-1]
    adjusted[0] = max(float(clock0), float(releases[0]))
    base = np.maximum.accumulate(adjusted)
    starts = base + prefix[:-1]
    ends = starts + durations
    return starts, ends


# ----------------------------------------------------------------------
# YDS critical-interval kernel
# ----------------------------------------------------------------------

def max_density_interval(
    releases: np.ndarray, deadlines: np.ndarray, works: np.ndarray
) -> tuple[float, float, float, np.ndarray] | None:
    """Maximum-density interval over the release x deadline critical grid.

    For every pair ``(t1, t2)`` with ``t1`` a release, ``t2`` a deadline and
    ``t2 > t1``, the density is ``w(t1, t2) / (t2 - t1)`` where ``w(t1, t2)``
    sums the work of jobs whose entire ``[release, deadline]`` window lies in
    ``[t1, t2]``.  Returns ``(t1, t2, density, member_mask)`` for the best
    pair, or ``None`` if no pair contains any job.

    The member-work matrix is computed in one shot: bucket every job at its
    (release, deadline) grid cell, then a suffix prefix-sum over releases
    (``r >= t1``) and a prefix sum over deadlines (``d <= t2``).  Ties are
    broken like the scalar reference loop: the first maximum in
    (t1 ascending, t2 ascending) order wins.
    """
    releases = np.asarray(releases, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)

    grid_r, grid_d, member_ext = interval_work_grid(releases, deadlines, works)
    member_work = member_ext[:-1, :]

    length = grid_d[np.newaxis, :] - grid_r[:, np.newaxis]
    valid = (length > 0.0) & (member_work > 0.0)
    if not np.any(valid):
        return None
    density = np.where(valid, member_work / np.where(valid, length, 1.0), -np.inf)
    flat = int(np.argmax(density))
    a, b = divmod(flat, len(grid_d))
    t1 = float(grid_r[a])
    t2 = float(grid_d[b])
    members = (releases >= t1) & (deadlines <= t2)
    return t1, t2, float(density[a, b]), members


# ----------------------------------------------------------------------
# event-grid primitives for the online stack
# ----------------------------------------------------------------------

def interval_work_grid(
    releases: np.ndarray, deadlines: np.ndarray, works: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative work over the release x deadline critical grid.

    Returns ``(grid_r, grid_d, member_work)`` where ``grid_r``/``grid_d`` are
    the sorted unique releases/deadlines and ``member_work[a, b]`` is the
    total work of jobs with ``release >= grid_r[a]`` and
    ``deadline <= grid_d[b]``.  ``member_work`` carries one extra all-zero
    row at index ``len(grid_r)`` so that searchsorted release indices can be
    used directly (the empty release suffix sums to zero).

    This is the shared substrate of the YDS critical-interval kernel
    (:func:`max_density_interval`) and the vectorised BKP profile
    (:func:`repro.online.bkp.bkp_speed_profile`): any window work function
    ``w(t1, t2)`` with inclusive release/deadline constraints is a difference
    of two entries.
    """
    releases = np.asarray(releases, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)

    grid_r, idx_r = np.unique(releases, return_inverse=True)
    grid_d, idx_d = np.unique(deadlines, return_inverse=True)
    cell_work = np.zeros((len(grid_r) + 1, len(grid_d)))
    np.add.at(cell_work, (idx_r, idx_d), works)
    member_work = np.cumsum(np.cumsum(cell_work[::-1, :], axis=0)[::-1, :], axis=1)
    return grid_r, grid_d, member_work


def stepwise_rate_profile(
    starts: np.ndarray, ends: np.ndarray, rates: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum of interval-supported constant rates as a piecewise-constant profile.

    Each contribution ``i`` adds ``rates[i]`` on the half-open interval
    ``[starts[i], ends[i])``.  Returns ``(events, levels)`` with ``events``
    the sorted unique interval endpoints and ``levels[k]`` the total rate on
    ``[events[k], events[k+1])`` (so ``levels`` has ``len(events) - 1``
    entries).  Implemented as a scatter-add of rate deltas at the endpoint
    indices followed by one cumulative sum — the event-grid analogue of a
    sweep line.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    rates = np.asarray(rates, dtype=float)
    events = np.unique(np.concatenate([starts, ends]))
    delta = np.zeros(len(events))
    np.add.at(delta, np.searchsorted(events, starts), rates)
    np.subtract.at(delta, np.searchsorted(events, ends), rates)
    levels = np.cumsum(delta)[:-1]
    return events, levels


def common_release_prefix_speeds(
    t0: float, deadlines: np.ndarray, works: np.ndarray
) -> np.ndarray:
    """YDS-optimal speeds for jobs that are all available at time ``t0``.

    ``deadlines`` must be sorted non-decreasingly (with ``works`` aligned)
    and strictly greater than ``t0``.  When every job shares its release the
    YDS critical intervals are deadline prefixes, so the optimal speeds are
    the slopes of the least concave majorant (upper hull) of the cumulative
    work staircase ``(t0, 0), (d_1, W_1), ..., (d_m, W_m)`` — the classic
    prefix-density structure Optimal Available replans over.  A monotone
    hull stack computes all slopes in one O(m) pass instead of one
    critical-interval search per YDS round.

    Returns one speed per job, constant within each hull segment and
    strictly decreasing across segments.
    """
    deadline_list = (
        deadlines.tolist() if isinstance(deadlines, np.ndarray) else list(deadlines)
    )
    work_list = works.tolist() if isinstance(works, np.ndarray) else list(works)
    m = len(deadline_list)

    # hull vertices (x, y) with the index of the last job in each segment;
    # slopes[j] is the slope into vertex j+1 and strictly decreases.  Plain
    # Python lists: this loop runs once per OA event on mostly-small residual
    # sets, where per-element NumPy scalar indexing would dominate.
    xs = [float(t0)]
    ys = [0.0]
    last_job = [-1]
    slopes: list[float] = []
    y = 0.0
    for k in range(m):
        x = deadline_list[k]
        y += work_list[k]
        if x <= xs[0]:
            raise ValueError(
                f"deadline {x:g} is not after the common availability time {t0:g}"
            )
        while slopes:
            top_x, top_y = xs[-1], ys[-1]
            slope = math.inf if x <= top_x else (y - top_y) / (x - top_x)
            if slope >= slopes[-1]:
                # the chain would stop being concave: merge with the previous
                # segment (equality merges collinear segments, which matches
                # YDS emitting them as consecutive equal-intensity rounds)
                xs.pop()
                ys.pop()
                last_job.pop()
                slopes.pop()
                continue
            break
        slopes.append((y - ys[-1]) / (x - xs[-1]))
        xs.append(x)
        ys.append(y)
        last_job.append(k)

    speeds = np.empty(m)
    lo = 0
    for j in range(1, len(last_job)):
        speeds[lo : last_job[j] + 1] = slopes[j - 1]
        lo = last_job[j] + 1
    return speeds


# ----------------------------------------------------------------------
# structure-of-arrays batched tier: many small same-shape instances at once
# ----------------------------------------------------------------------

#: Largest finite double: substituted for +inf releases before the interval
#: length subtraction so dead grid cells produce huge-negative lengths (and
#: hence negative densities) instead of inf - inf = NaN.
_BIG = 8.98846567431158e307


@dataclass(frozen=True)
class PaddedBatch:
    """A chunk of instances packed into padded ``(batch, n)`` arrays.

    Rows are instances; columns are job slots.  Slots beyond an instance's
    job count are padding: ``mask`` is False, releases/deadlines are ``+inf``
    and works are ``0.0`` — the sentinel encoding every batched kernel
    understands (padded jobs sort to the end of every grid axis and scatter
    zero work).
    """

    releases: np.ndarray
    deadlines: np.ndarray
    works: np.ndarray
    mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.releases.shape[0]

    @property
    def width(self) -> int:
        return self.releases.shape[1]

    @property
    def n_jobs(self) -> np.ndarray:
        """Live job count per row."""
        return self.mask.sum(axis=1)


def pack_instances(instances: Sequence) -> PaddedBatch:
    """Pack instances into one :class:`PaddedBatch` (width = max job count)."""
    if not instances:
        raise ValueError("pack_instances needs at least one instance")
    batch = len(instances)
    width = max(inst.n_jobs for inst in instances)
    releases = np.full((batch, width), np.inf)
    deadlines = np.full((batch, width), np.inf)
    works = np.zeros((batch, width))
    mask = np.zeros((batch, width), dtype=bool)
    for b, inst in enumerate(instances):
        m = inst.n_jobs
        releases[b, :m] = inst.releases
        if inst.deadlines is not None:
            deadlines[b, :m] = inst.deadlines
        works[b, :m] = inst.works
        mask[b, :m] = True
    return PaddedBatch(releases, deadlines, works, mask)


def prefix_sums_batched(values: np.ndarray) -> np.ndarray:
    """Row-wise :func:`prefix_sums`: ``(batch, n)`` in, ``(batch, n + 1)`` out."""
    values = np.asarray(values, dtype=float)
    batch, n = values.shape
    out = np.empty((batch, n + 1))
    out[:, 0] = 0.0
    np.cumsum(values, axis=1, out=out[:, 1:])
    return out


def power_eval_batched(power: PowerFunction, speeds: np.ndarray) -> np.ndarray:
    """Row-wise :func:`power_eval` over a ``(batch, n)`` speed array."""
    return power_eval(power, np.asarray(speeds, dtype=float))


def energy_eval_batched(
    power: PowerFunction,
    works: np.ndarray,
    speeds: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise :func:`energy_eval`; padded slots (``mask`` False) yield 0.

    Masked slots are evaluated at a safe ``(work=0, speed=1)`` point so that
    padding sentinels (zero or infinite speeds) never reach the power
    function's validation.
    """
    works = np.asarray(works, dtype=float)
    speeds = np.asarray(speeds, dtype=float)
    if mask is None:
        return energy_eval(power, works, speeds)
    out = energy_eval(
        power, np.where(mask, works, 0.0), np.where(mask, speeds, 1.0)
    )
    out[~np.asarray(mask, dtype=bool)] = 0.0
    return out


def chain_start_times_batched(
    releases: np.ndarray,
    durations: np.ndarray,
    clock0: np.ndarray | float,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`chain_start_times` via the same prefix-max recurrence.

    ``clock0`` may be a scalar or one value per row.  Padded slots must be
    trailing; they are forced to zero duration so every live prefix computes
    the identical float sequence as the per-instance kernel (the rows agree
    bitwise on the live slots).
    """
    releases = np.asarray(releases, dtype=float)
    durations = np.asarray(durations, dtype=float)
    if releases.shape[1] == 0:
        empty = np.empty_like(releases)
        return empty, empty.copy()
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        durations = np.where(mask, durations, 0.0)
        releases = np.where(mask, releases, -np.inf)
    prefix = prefix_sums_batched(durations)
    adjusted = releases - prefix[:, :-1]
    adjusted[:, 0] = np.maximum(np.asarray(clock0, dtype=float), releases[:, 0])
    base = np.maximum.accumulate(adjusted, axis=1)
    starts = base + prefix[:, :-1]
    ends = starts + durations
    return starts, ends


def _dup_ranks(
    values: np.ndarray, sorted_vals: np.ndarray, order: np.ndarray, last: bool
) -> np.ndarray:
    """Index of each value in its own sorted row: last-dup or first-dup.

    The duplicate-keeping analogue of ``np.unique(..., return_inverse=True)``:
    each entry maps to the first (or last) position of its value run in the
    row's sort, so scatters land exactly where the unique-grid scatter would.
    """
    batch, n = values.shape
    bidx = np.arange(batch)[:, None]
    pos = np.empty((batch, n), dtype=np.int64)
    pos[bidx, order] = np.arange(n)
    ar = np.arange(n)
    if last:
        is_last = np.ones((batch, n), dtype=bool)
        is_last[:, :-1] = sorted_vals[:, :-1] != sorted_vals[:, 1:]
        run = np.minimum.accumulate(np.where(is_last, ar, n)[:, ::-1], axis=1)[:, ::-1]
    else:
        is_first = np.ones((batch, n), dtype=bool)
        is_first[:, 1:] = sorted_vals[:, 1:] != sorted_vals[:, :-1]
        run = np.maximum.accumulate(np.where(is_first, ar, -1), axis=1)
    return run[bidx, pos]


class BatchWorkspace:
    """Reusable scratch buffers for :func:`max_density_interval_batched`.

    Allocating the multi-MB round intermediates fresh every call makes the
    allocator return the blocks to the kernel (glibc munmaps large frees), so
    each round pays page-zeroing again.  A workspace sized for the first
    round serves every later (smaller) round via flat slices.  The scatter
    buffer is kept pristine-zero between rounds by sparsely re-zeroing only
    the touched cells.
    """

    def __init__(self, batch_size: int, width: int) -> None:
        cells = batch_size * (width + 1) * width
        grid = batch_size * width * width
        self.scatter = np.zeros(cells)
        self.cell = np.empty(cells)
        self.mw = np.empty(grid)
        self.length = np.empty(grid)
        self.nan = np.empty(grid, dtype=bool)

    def fits(self, batch_size: int, width: int) -> bool:
        return batch_size * (width + 1) * width <= len(self.scatter)


def _sorted_dup_grid(
    releases: np.ndarray, deadlines: np.ndarray, works: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared scatter for the batched grid kernels.

    Returns ``(r_sorted, d_sorted, flat_idx, minlength)``: the dup-keeping
    sorted axes plus the flat scatter index of every job into the
    reversed-release ``(batch, n + 1, n)`` cell grid (row 0 is the all-zero
    row for the empty release suffix; padded jobs scatter there with zero
    work).
    """
    batch, n = releases.shape
    bidx = np.arange(batch)[:, None]
    order_r = np.argsort(releases, axis=1, kind="stable")
    order_d = np.argsort(deadlines, axis=1, kind="stable")
    r_sorted = releases[bidx, order_r]
    d_sorted = deadlines[bidx, order_d]
    idx_r = _dup_ranks(releases, r_sorted, order_r, last=True)
    idx_d = _dup_ranks(deadlines, d_sorted, order_d, last=False)
    dead = ~np.isfinite(releases)
    idx_rr = np.where(dead, 0, n - idx_r)
    idx_dd = np.where(dead, 0, idx_d)
    flat_idx = ((bidx * (n + 1) + idx_rr) * n + idx_dd).ravel()
    return r_sorted, d_sorted, flat_idx, batch * (n + 1) * n


def interval_work_grid_batched(
    releases: np.ndarray,
    deadlines: np.ndarray,
    works: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise :func:`interval_work_grid` on duplicate-keeping axes.

    Returns ``(r_sorted, d_sorted, member_work)`` with ``r_sorted``/``d_sorted``
    the *sorted-with-duplicates* ``(batch, n)`` axes and ``member_work`` of
    shape ``(batch, n + 1, n)``: ``member_work[b, a, j]`` is the total work of
    row ``b``'s jobs with ``release >= r_sorted[b, a]`` and
    ``deadline <= d_sorted[b, j]`` (row ``n`` is the all-zero empty-suffix
    row, mirroring the per-instance extra row).  Reads at *any* duplicate
    index equal the unique-grid entry bitwise, so searchsorted consumers
    (the BKP profile) work unchanged on the dup axes.
    """
    releases = np.asarray(releases, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        releases = np.where(mask, releases, np.inf)
        deadlines = np.where(mask, deadlines, np.inf)
        works = np.where(mask, works, 0.0)
    batch, n = releases.shape
    r_sorted, d_sorted, flat_idx, cells = _sorted_dup_grid(releases, deadlines, works)
    cell = np.bincount(flat_idx, weights=works.ravel(), minlength=cells).reshape(
        batch, n + 1, n
    )
    np.cumsum(cell, axis=1, out=cell)
    member = np.cumsum(cell[:, ::-1, :], axis=2)
    return r_sorted, d_sorted, member


def max_density_interval_batched(
    releases: np.ndarray,
    deadlines: np.ndarray,
    works: np.ndarray,
    workspace: BatchWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise :func:`max_density_interval` over padded ``(batch, n)`` rows.

    Padded/retired jobs are the ``release = deadline = +inf, work = 0``
    sentinel.  Returns ``(t1, t2, density)`` arrays; a row with no valid
    interval reports ``density <= 0`` (callers test ``density > 0`` exactly
    as the per-instance kernel's ``None`` return).  For every row with a
    valid interval the result is bitwise equal to the per-instance kernel:
    the dup-grid prefix sums only interleave IEEE-exact ``+ 0.0`` terms, and
    the first-flat-argmax tie-break picks the same ``(t1, t2)`` because
    duplicate axis entries are adjacent and in unique order.

    No explicit validity mask is needed: live jobs always satisfy
    ``release < deadline`` strictly (an invariant the YDS interval collapse
    preserves), so any grid cell with non-positive length has zero member
    work — the only NaNs are ``0 / 0`` cells, scrubbed to ``-inf`` before the
    argmax.
    """
    releases = np.asarray(releases, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)
    batch, n = releases.shape
    r_sorted, d_sorted, flat_idx, cells = _sorted_dup_grid(releases, deadlines, works)
    if workspace is not None and workspace.fits(batch, n):
        zbuf = workspace.scatter[:cells]
        np.add.at(zbuf, flat_idx, works.ravel())
        zcell = zbuf.reshape(batch, n + 1, n)
        cell = workspace.cell[:cells].reshape(batch, n + 1, n)
        if batch * n >= 1024:
            # row-loop cumsum: same per-lane add chain as np.cumsum (bitwise
            # identical) but contiguous full-width adds, ~1.6x faster here
            np.copyto(cell[:, 0, :], zcell[:, 0, :])
            for i in range(1, n + 1):
                np.add(cell[:, i - 1, :], zcell[:, i, :], out=cell[:, i, :])
        else:
            np.cumsum(zcell, axis=1, out=cell)
        zbuf[flat_idx] = 0.0  # restore pristine zeros for the next round
        mw = workspace.mw[: batch * n * n].reshape(batch, n, n)
        length = workspace.length[: batch * n * n].reshape(batch, n, n)
        nan = workspace.nan[: batch * n * n].reshape(batch, n, n)
    else:
        cell = np.bincount(flat_idx, weights=works.ravel(), minlength=cells).reshape(
            batch, n + 1, n
        )
        np.cumsum(cell, axis=1, out=cell)
        mw = np.empty((batch, n, n))
        length = np.empty((batch, n, n))
        nan = np.empty((batch, n, n), dtype=bool)
    np.cumsum(cell[:, n:0:-1, :], axis=2, out=mw)
    r_len = np.where(np.isinf(r_sorted), _BIG, r_sorted)
    np.subtract(d_sorted[:, None, :], r_len[:, :, None], out=length)
    with np.errstate(invalid="ignore", divide="ignore"):
        np.divide(mw, length, out=mw)
    np.isnan(mw, out=nan)
    mw[nan] = -np.inf
    flat_best = np.argmax(mw.reshape(batch, -1), axis=1)
    a, b = np.divmod(flat_best, n)
    rows = np.arange(batch)
    density = mw.reshape(batch, -1)[rows, flat_best]
    t1 = r_sorted[rows, a]
    t2 = d_sorted[rows, b]
    return t1, t2, density


def stepwise_rate_profile_batched(
    starts: np.ndarray,
    ends: np.ndarray,
    rates: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`stepwise_rate_profile` on duplicate-keeping events.

    Returns ``(events, levels)`` of shapes ``(batch, 2n)`` and
    ``(batch, 2n - 1)``: ``events`` are the per-row sorted endpoint values
    *with duplicates* (padded slots contribute ``+inf`` pairs at the end) and
    ``levels[b, k]`` is the total rate on ``[events[b, k], events[b, k+1])``.
    Duplicate events produce zero-length segments; dropping them (and any
    non-finite endpoints) recovers the per-instance profile bitwise, since
    rate deltas scatter at the first duplicate of each value in the same
    order the per-instance kernel accumulates them.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        starts = np.where(mask, starts, np.inf)
        ends = np.where(mask, ends, np.inf)
        rates = np.where(mask, rates, 0.0)
    batch, n = starts.shape
    cat = np.concatenate([starts, ends], axis=1)
    order = np.argsort(cat, axis=1, kind="stable")
    events = np.take_along_axis(cat, order, axis=1)
    first = _dup_ranks(cat, events, order, last=False)
    width = 2 * n
    bidx = np.arange(batch)[:, None]
    flat = (bidx * width + first).ravel().reshape(batch, width)
    delta = np.zeros(batch * width)
    np.add.at(delta, flat[:, :n].ravel(), rates.ravel())
    np.subtract.at(delta, flat[:, n:].ravel(), rates.ravel())
    levels = np.cumsum(delta.reshape(batch, width), axis=1)[:, :-1]
    return events, levels


def common_release_prefix_speeds_batched(
    t0: np.ndarray | float,
    deadlines: np.ndarray,
    works: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise :func:`common_release_prefix_speeds` (lockstep hull stacks).

    ``deadlines`` rows must be sorted non-decreasingly over their live slots
    (trailing padding allowed via ``mask``) and strictly greater than the
    row's ``t0``.  All rows advance through the hull construction in
    lockstep: one vectorised push per job column, with the concavity merge
    loop iterating until no row needs another pop.  Per-row float operations
    are the exact sequence the scalar kernel performs, so live-slot speeds
    match it bitwise; padded slots return 0.
    """
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)
    batch, m = deadlines.shape
    t0_arr = np.broadcast_to(np.asarray(t0, dtype=float), (batch,)).astype(float)
    if mask is None:
        mask = np.ones((batch, m), dtype=bool)
    else:
        mask = np.asarray(mask, dtype=bool)
    if m == 0:
        return np.zeros((batch, 0))

    bad = mask & (deadlines <= t0_arr[:, None])
    if bad.any():
        row, col = np.argwhere(bad)[0]
        raise ValueError(
            f"deadline {deadlines[row, col]:g} is not after the common "
            f"availability time {t0_arr[row]:g}"
        )

    xs = np.empty((batch, m + 1))
    ys = np.empty((batch, m + 1))
    last_job = np.full((batch, m + 1), -1, dtype=np.int64)
    slopes = np.zeros((batch, m))
    xs[:, 0] = t0_arr
    ys[:, 0] = 0.0
    top = np.zeros(batch, dtype=np.int64)  # index of the current top vertex
    y_run = np.zeros(batch)
    rows = np.arange(batch)
    for k in range(m):
        active = mask[:, k]
        if not active.any():
            continue
        x = deadlines[:, k]
        y_run = np.where(active, y_run + works[:, k], y_run)
        while True:
            can_pop = active & (top >= 1)
            top_x = xs[rows, top]
            top_y = ys[rows, top]
            with np.errstate(invalid="ignore", divide="ignore"):
                slope = np.where(
                    x <= top_x, np.inf, (y_run - top_y) / (x - top_x)
                )
            pop = can_pop & (slope >= slopes[rows, np.maximum(top - 1, 0)]) & (top >= 1)
            if not pop.any():
                break
            top[pop] -= 1
        sel = np.where(active)[0]
        t = top[sel]
        slopes[sel, t] = (y_run[sel] - ys[sel, t]) / (
            deadlines[sel, k] - xs[sel, t]
        )
        top[sel] += 1
        xs[sel, t + 1] = deadlines[sel, k]
        ys[sel, t + 1] = y_run[sel]
        last_job[sel, t + 1] = k

    # fill per-job speeds: job k belongs to the hull segment whose last_job
    # boundary is the first one >= k (scatter segment-start markers, cumsum)
    seg_marker = np.zeros((batch, m), dtype=np.int64)
    vertex = np.arange(m + 1)[None, :]
    valid_vertex = (vertex >= 1) & (vertex <= top[:, None])
    seg_start = last_job + 1  # position after each segment's last job
    in_range = valid_vertex & (seg_start < m) & (seg_start >= 0)
    br, bc = np.nonzero(in_range)
    np.add.at(seg_marker, (br, seg_start[br, bc]), 1)
    seg = np.cumsum(seg_marker, axis=1)
    speeds = slopes[np.arange(batch)[:, None], seg]
    return np.where(mask, speeds, 0.0)

"""Vectorized kernel layer shared by the solver stack.

Every hot path in the package ultimately evaluates one of a small number of
primitives: prefix sums of work over the (sorted) release order, power /
energy of many speeds at once, the canonical run-in-release-order timing
recurrence, and — for the YDS substrate — the maximum-density interval over
the release x deadline critical grid.  This module implements those
primitives once, as NumPy array kernels, so that

* :func:`repro.online.yds.yds_speeds` finds each critical interval with a
  single 2-D prefix-sum/argmax instead of re-enumerating member sets
  (the seed implementation was ~O(n^4) in practice),
* :func:`repro.makespan.incmerge.incmerge` precomputes all initial block
  speeds/energies in bulk and runs its merge loop on closed-form scalar
  closures instead of per-call method dispatch,
* :meth:`repro.core.schedule.Schedule.from_speeds` and the schedule
  aggregation properties (energy, completion times, per-processor totals)
  are single array expressions,
* the batch engine (:mod:`repro.batch`) amortises all of the above over many
  instances.

Scalar reference implementations are retained next to each vectorized
caller; ``tests/test_kernels.py`` pins the two to each other at 1e-9 on
randomized instances.

Fast closed forms are used only for :class:`~repro.core.power.PolynomialPower`
(``power = speed ** alpha``), where they are exact; every other power
function falls back to the scalar methods element-wise, preserving their
validation and error behaviour.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .power import PolynomialPower, PowerFunction

__all__ = [
    "prefix_sums",
    "power_eval",
    "energy_eval",
    "scalar_energy_fn",
    "scalar_speed_for_energy_fn",
    "chain_start_times",
    "max_density_interval",
    "interval_work_grid",
    "stepwise_rate_profile",
    "common_release_prefix_speeds",
]


def prefix_sums(values: np.ndarray) -> np.ndarray:
    """Prefix sums with a leading zero: ``out[i] = sum(values[:i])``.

    ``out`` has one more entry than ``values`` so that range sums are
    ``out[j] - out[i]`` for the half-open range ``[i, j)``.
    """
    values = np.asarray(values, dtype=float)
    out = np.empty(len(values) + 1)
    out[0] = 0.0
    np.cumsum(values, out=out[1:])
    return out


# ----------------------------------------------------------------------
# vectorized power-function evaluation
# ----------------------------------------------------------------------

def power_eval(power: PowerFunction, speeds: np.ndarray) -> np.ndarray:
    """Vectorised ``P(speed)`` over an array of non-negative speeds."""
    speeds = np.asarray(speeds, dtype=float)
    if isinstance(power, PolynomialPower):
        return speeds**power.exponent
    return np.array([power.power(float(s)) for s in speeds.ravel()]).reshape(
        speeds.shape
    )


def energy_eval(
    power: PowerFunction, works: np.ndarray, speeds: np.ndarray
) -> np.ndarray:
    """Vectorised ``power.energy(work, speed)`` over aligned arrays.

    All speeds must be finite and positive (callers mask out the sentinel
    infinite-speed blocks before evaluating).
    """
    works = np.asarray(works, dtype=float)
    speeds = np.asarray(speeds, dtype=float)
    if isinstance(power, PolynomialPower):
        return works * speeds ** (power.exponent - 1.0)
    return np.array(
        [power.energy(float(w), float(s)) for w, s in zip(works, speeds)]
    )


def scalar_energy_fn(power: PowerFunction) -> Callable[[float, float], float]:
    """A fast scalar ``(work, speed) -> energy`` closure.

    Closed form for polynomial powers (skipping per-call validation that the
    solver loops already guarantee); the bound method otherwise.
    """
    if isinstance(power, PolynomialPower):
        a1 = power.exponent - 1.0

        def energy(work: float, speed: float, _a1: float = a1) -> float:
            return work * speed**_a1

        return energy
    return power.energy


def scalar_speed_for_energy_fn(power: PowerFunction) -> Callable[[float, float], float]:
    """A fast scalar ``(work, energy) -> speed`` closure (inverse of the above)."""
    if isinstance(power, PolynomialPower):
        inv = 1.0 / (power.exponent - 1.0)

        def speed(work: float, energy: float, _inv: float = inv) -> float:
            return (energy / work) ** _inv

        return speed
    return power.speed_for_energy


# ----------------------------------------------------------------------
# canonical run-in-release-order timing recurrence
# ----------------------------------------------------------------------

def chain_start_times(
    releases: np.ndarray, durations: np.ndarray, clock0: float
) -> tuple[np.ndarray, np.ndarray]:
    """Start and end times of jobs run back-to-back in the given order.

    Implements the recurrence ``start[i] = max(release[i], end[i-1])`` with
    ``end[i] = start[i] + duration[i]`` and ``end[-1] = clock0`` as a single
    prefix-maximum: with ``P[i] = sum(durations[:i])``,
    ``start[i] = max_{j<=i}(release[j] - P[j]) + P[i]`` (treating ``clock0``
    as an extra release of job 0).
    """
    releases = np.asarray(releases, dtype=float)
    durations = np.asarray(durations, dtype=float)
    prefix = prefix_sums(durations)
    adjusted = releases - prefix[:-1]
    adjusted[0] = max(float(clock0), float(releases[0]))
    base = np.maximum.accumulate(adjusted)
    starts = base + prefix[:-1]
    ends = starts + durations
    return starts, ends


# ----------------------------------------------------------------------
# YDS critical-interval kernel
# ----------------------------------------------------------------------

def max_density_interval(
    releases: np.ndarray, deadlines: np.ndarray, works: np.ndarray
) -> tuple[float, float, float, np.ndarray] | None:
    """Maximum-density interval over the release x deadline critical grid.

    For every pair ``(t1, t2)`` with ``t1`` a release, ``t2`` a deadline and
    ``t2 > t1``, the density is ``w(t1, t2) / (t2 - t1)`` where ``w(t1, t2)``
    sums the work of jobs whose entire ``[release, deadline]`` window lies in
    ``[t1, t2]``.  Returns ``(t1, t2, density, member_mask)`` for the best
    pair, or ``None`` if no pair contains any job.

    The member-work matrix is computed in one shot: bucket every job at its
    (release, deadline) grid cell, then a suffix prefix-sum over releases
    (``r >= t1``) and a prefix sum over deadlines (``d <= t2``).  Ties are
    broken like the scalar reference loop: the first maximum in
    (t1 ascending, t2 ascending) order wins.
    """
    releases = np.asarray(releases, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)

    grid_r, grid_d, member_ext = interval_work_grid(releases, deadlines, works)
    member_work = member_ext[:-1, :]

    length = grid_d[np.newaxis, :] - grid_r[:, np.newaxis]
    valid = (length > 0.0) & (member_work > 0.0)
    if not np.any(valid):
        return None
    density = np.where(valid, member_work / np.where(valid, length, 1.0), -np.inf)
    flat = int(np.argmax(density))
    a, b = divmod(flat, len(grid_d))
    t1 = float(grid_r[a])
    t2 = float(grid_d[b])
    members = (releases >= t1) & (deadlines <= t2)
    return t1, t2, float(density[a, b]), members


# ----------------------------------------------------------------------
# event-grid primitives for the online stack
# ----------------------------------------------------------------------

def interval_work_grid(
    releases: np.ndarray, deadlines: np.ndarray, works: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative work over the release x deadline critical grid.

    Returns ``(grid_r, grid_d, member_work)`` where ``grid_r``/``grid_d`` are
    the sorted unique releases/deadlines and ``member_work[a, b]`` is the
    total work of jobs with ``release >= grid_r[a]`` and
    ``deadline <= grid_d[b]``.  ``member_work`` carries one extra all-zero
    row at index ``len(grid_r)`` so that searchsorted release indices can be
    used directly (the empty release suffix sums to zero).

    This is the shared substrate of the YDS critical-interval kernel
    (:func:`max_density_interval`) and the vectorised BKP profile
    (:func:`repro.online.bkp.bkp_speed_profile`): any window work function
    ``w(t1, t2)`` with inclusive release/deadline constraints is a difference
    of two entries.
    """
    releases = np.asarray(releases, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    works = np.asarray(works, dtype=float)

    grid_r, idx_r = np.unique(releases, return_inverse=True)
    grid_d, idx_d = np.unique(deadlines, return_inverse=True)
    cell_work = np.zeros((len(grid_r) + 1, len(grid_d)))
    np.add.at(cell_work, (idx_r, idx_d), works)
    member_work = np.cumsum(np.cumsum(cell_work[::-1, :], axis=0)[::-1, :], axis=1)
    return grid_r, grid_d, member_work


def stepwise_rate_profile(
    starts: np.ndarray, ends: np.ndarray, rates: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum of interval-supported constant rates as a piecewise-constant profile.

    Each contribution ``i`` adds ``rates[i]`` on the half-open interval
    ``[starts[i], ends[i])``.  Returns ``(events, levels)`` with ``events``
    the sorted unique interval endpoints and ``levels[k]`` the total rate on
    ``[events[k], events[k+1])`` (so ``levels`` has ``len(events) - 1``
    entries).  Implemented as a scatter-add of rate deltas at the endpoint
    indices followed by one cumulative sum — the event-grid analogue of a
    sweep line.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    rates = np.asarray(rates, dtype=float)
    events = np.unique(np.concatenate([starts, ends]))
    delta = np.zeros(len(events))
    np.add.at(delta, np.searchsorted(events, starts), rates)
    np.subtract.at(delta, np.searchsorted(events, ends), rates)
    levels = np.cumsum(delta)[:-1]
    return events, levels


def common_release_prefix_speeds(
    t0: float, deadlines: np.ndarray, works: np.ndarray
) -> np.ndarray:
    """YDS-optimal speeds for jobs that are all available at time ``t0``.

    ``deadlines`` must be sorted non-decreasingly (with ``works`` aligned)
    and strictly greater than ``t0``.  When every job shares its release the
    YDS critical intervals are deadline prefixes, so the optimal speeds are
    the slopes of the least concave majorant (upper hull) of the cumulative
    work staircase ``(t0, 0), (d_1, W_1), ..., (d_m, W_m)`` — the classic
    prefix-density structure Optimal Available replans over.  A monotone
    hull stack computes all slopes in one O(m) pass instead of one
    critical-interval search per YDS round.

    Returns one speed per job, constant within each hull segment and
    strictly decreasing across segments.
    """
    deadline_list = (
        deadlines.tolist() if isinstance(deadlines, np.ndarray) else list(deadlines)
    )
    work_list = works.tolist() if isinstance(works, np.ndarray) else list(works)
    m = len(deadline_list)

    # hull vertices (x, y) with the index of the last job in each segment;
    # slopes[j] is the slope into vertex j+1 and strictly decreases.  Plain
    # Python lists: this loop runs once per OA event on mostly-small residual
    # sets, where per-element NumPy scalar indexing would dominate.
    xs = [float(t0)]
    ys = [0.0]
    last_job = [-1]
    slopes: list[float] = []
    y = 0.0
    for k in range(m):
        x = deadline_list[k]
        y += work_list[k]
        if x <= xs[0]:
            raise ValueError(
                f"deadline {x:g} is not after the common availability time {t0:g}"
            )
        while slopes:
            top_x, top_y = xs[-1], ys[-1]
            slope = math.inf if x <= top_x else (y - top_y) / (x - top_x)
            if slope >= slopes[-1]:
                # the chain would stop being concave: merge with the previous
                # segment (equality merges collinear segments, which matches
                # YDS emitting them as consecutive equal-intensity rounds)
                xs.pop()
                ys.pop()
                last_job.pop()
                slopes.pop()
                continue
            break
        slopes.append((y - ys[-1]) / (x - xs[-1]))
        xs.append(x)
        ys.append(y)
        last_job.append(k)

    speeds = np.empty(m)
    lo = 0
    for j in range(1, len(last_job)):
        speeds[lo : last_job[j] + 1] = slopes[j - 1]
        lo = last_job[j] + 1
    return speeds

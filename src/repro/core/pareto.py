"""Energy/quality trade-off curves (the non-dominated frontier).

The central object of the paper's Section 3.2 is the curve relating the energy
budget to the optimal value of the scheduling metric over all *non-dominated*
schedules (Figure 1), together with its first and second derivatives
(Figures 2 and 3).  The curve is piecewise smooth: within one block
configuration it has a closed form, and configuration changes introduce
breakpoints at which higher derivatives are discontinuous.

This module provides a metric-agnostic representation:

* :class:`CurveSegment` -- one configuration's piece of the curve, described
  by an energy interval plus callables for the value and (optionally) its
  first and second derivatives.  Segments carry an arbitrary ``label``/
  ``payload`` so algorithm modules can attach the block structure.
* :class:`TradeoffCurve` -- an ordered collection of segments supporting
  evaluation, sampling, analytic-or-numeric differentiation, inversion
  (the *server problem*: minimum energy for a target value), breakpoint
  queries and dominance comparison against other curves or point sets.

The makespan frontier (:mod:`repro.makespan.frontier`) and the flow frontier
(:mod:`repro.flow.frontier`) both return :class:`TradeoffCurve` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np
from scipy import optimize

from ..exceptions import BudgetError, InfeasibleError, InvalidInstanceError

__all__ = ["CurveSegment", "TradeoffCurve"]

_REL_STEP = 1e-6


@dataclass(frozen=True)
class CurveSegment:
    """One piece of a trade-off curve over the energy interval ``[energy_lo, energy_hi]``.

    ``value`` must be defined on the closed interval; ``energy_hi`` may be
    ``math.inf`` for the final segment (arbitrarily large budgets).  The value
    function is expected to be non-increasing in energy — more energy can
    never hurt a non-dominated schedule — and :class:`TradeoffCurve` verifies
    this on a sample grid at construction time.
    """

    energy_lo: float
    energy_hi: float
    value: Callable[[float], float]
    derivative: Callable[[float], float] | None = None
    second_derivative: Callable[[float], float] | None = None
    label: str = ""
    payload: Any = None
    #: Optional vectorised twin of ``value``: maps an ``np.ndarray`` of
    #: in-segment energies to the array of values in one call.  Used by
    #: :meth:`TradeoffCurve.sample`; when absent, sampling falls back to the
    #: scalar ``value`` per point.
    value_array: Callable[[np.ndarray], np.ndarray] | None = None
    #: Whether ``derivative``/``second_derivative`` are NumPy-ufunc-safe
    #: (accept arrays and broadcast element-wise), enabling the vectorised
    #: derivative sampling paths.
    array_safe: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.energy_lo) or self.energy_lo < 0.0:
            raise InvalidInstanceError(
                f"segment energy_lo must be finite and >= 0, got {self.energy_lo}"
            )
        if self.energy_hi <= self.energy_lo:
            raise InvalidInstanceError(
                f"segment energy range is empty: [{self.energy_lo}, {self.energy_hi}]"
            )

    def contains(self, energy: float) -> bool:
        """Whether ``energy`` lies in this segment's (closed) interval."""
        return self.energy_lo - 1e-12 <= energy <= self.energy_hi + 1e-12

    def derivative_at(self, energy: float) -> float:
        """First derivative, analytic if available, else central finite difference."""
        if self.derivative is not None:
            return float(self.derivative(energy))
        return _numeric_derivative(self.value, energy, self.energy_lo, self.energy_hi)

    def second_derivative_at(self, energy: float) -> float:
        """Second derivative, analytic if available, else finite difference of the first."""
        if self.second_derivative is not None:
            return float(self.second_derivative(energy))
        return _numeric_derivative(
            self.derivative_at, energy, self.energy_lo, self.energy_hi
        )


def _numeric_derivative(
    func: Callable[[float], float], x: float, lo: float, hi: float
) -> float:
    """Central finite difference clipped to the segment's interior."""
    h = max(abs(x), 1.0) * _REL_STEP
    a = max(lo, x - h)
    b = min(hi if math.isfinite(hi) else x + h, x + h)
    if b <= a:
        raise BudgetError(f"cannot differentiate at {x}: degenerate interval")
    return (func(b) - func(a)) / (b - a)


class TradeoffCurve:
    """A piecewise trade-off curve ``value = f(energy)`` for non-dominated schedules.

    Segments must tile a contiguous energy interval (each segment's
    ``energy_hi`` equals the next segment's ``energy_lo``) and the overall
    value must be non-increasing in energy.
    """

    def __init__(self, segments: Iterable[CurveSegment], metric_name: str = "value") -> None:
        segs = sorted(segments, key=lambda s: s.energy_lo)
        if not segs:
            raise InvalidInstanceError("a trade-off curve needs at least one segment")
        for a, b in zip(segs, segs[1:]):
            if not math.isclose(a.energy_hi, b.energy_lo, rel_tol=1e-9, abs_tol=1e-9):
                raise InvalidInstanceError(
                    f"curve segments must tile the energy axis; gap/overlap between "
                    f"{a.energy_hi} and {b.energy_lo}"
                )
        self.segments: tuple[CurveSegment, ...] = tuple(segs)
        # sorted upper edges of the segments, for O(log n) budget->segment
        # lookup via searchsorted (the last entry may be +inf)
        self._energy_his: np.ndarray = np.array([s.energy_hi for s in self.segments])
        self.metric_name = metric_name
        self._check_monotone()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def min_energy(self) -> float:
        """Smallest energy budget covered by the curve."""
        return self.segments[0].energy_lo

    @property
    def max_energy(self) -> float:
        """Largest energy budget covered (may be ``inf``)."""
        return self.segments[-1].energy_hi

    @property
    def breakpoints(self) -> list[float]:
        """Energy values at which the configuration changes (segment joins)."""
        return [seg.energy_lo for seg in self.segments[1:]]

    def _endpoint_tolerances(self) -> tuple[float, float]:
        """Absolute snapping tolerances at the curve's two endpoints.

        Energies within a 1e-9 *relative* band outside the covered range are
        floating-point noise from callers that computed the endpoint
        themselves (grids, cascades, bisections); they are clamped onto the
        endpoint rather than rejected.
        """
        lo_tol = 1e-9 * max(1.0, abs(self.min_energy))
        hi_tol = (
            1e-9 * max(1.0, abs(self.max_energy))
            if math.isfinite(self.max_energy)
            else 0.0
        )
        return lo_tol, hi_tol

    def _clamped(self, energy: float) -> float:
        """Snap an energy within endpoint tolerance back into the curve's range."""
        lo_tol, hi_tol = self._endpoint_tolerances()
        if self.min_energy - lo_tol <= energy < self.min_energy:
            return float(self.min_energy)
        if math.isfinite(self.max_energy) and (
            self.max_energy < energy <= self.max_energy + hi_tol
        ):
            return float(self.max_energy)
        return float(energy)

    def segment_at(self, energy: float) -> CurveSegment:
        """The segment containing the given energy budget (binary search).

        Energies within a relative tolerance outside the covered range are
        clamped to the nearest endpoint (see :meth:`_clamped`); anything
        further out raises :class:`BudgetError`.
        """
        energy = self._clamped(energy)
        if energy < self.min_energy or energy > self.max_energy:
            raise BudgetError(
                f"energy {energy:g} outside the curve's range "
                f"[{self.min_energy:g}, {self.max_energy:g}]"
            )
        # first segment with energy <= energy_hi + 1e-12
        idx = int(np.searchsorted(self._energy_his, energy - 1e-12, side="left"))
        if idx >= len(self.segments):  # pragma: no cover - defensive
            idx = len(self.segments) - 1
        return self.segments[idx]

    def _segment_indices(
        self, energies: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`segment_at`: one searchsorted for all points.

        Returns the segment index per point together with the
        endpoint-clamped energies to evaluate the segments at.
        """
        lo_tol, hi_tol = self._endpoint_tolerances()
        energies = np.where(
            (energies >= self.min_energy - lo_tol) & (energies < self.min_energy),
            self.min_energy,
            energies,
        )
        if math.isfinite(self.max_energy):
            energies = np.where(
                (energies > self.max_energy) & (energies <= self.max_energy + hi_tol),
                self.max_energy,
                energies,
            )
        out_of_range = (energies < self.min_energy) | (energies > self.max_energy)
        if np.any(out_of_range):
            bad = float(energies[np.argmax(out_of_range)])
            raise BudgetError(
                f"energy {bad:g} outside the curve's range "
                f"[{self.min_energy:g}, {self.max_energy:g}]"
            )
        indices = np.minimum(
            np.searchsorted(self._energy_his, energies - 1e-12, side="left"),
            len(self.segments) - 1,
        )
        return indices, energies

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def value(self, energy: float) -> float:
        """Optimal metric value achievable with the given energy budget."""
        energy = self._clamped(energy)
        return float(self.segment_at(energy).value(energy))

    def derivative(self, energy: float) -> float:
        """First derivative of the value with respect to the energy budget."""
        energy = self._clamped(energy)
        return self.segment_at(energy).derivative_at(energy)

    def second_derivative(self, energy: float) -> float:
        """Second derivative of the value with respect to the energy budget."""
        energy = self._clamped(energy)
        return self.segment_at(energy).second_derivative_at(energy)

    def _sample_grouped(
        self,
        energies: Sequence[float],
        array_fn: Callable[[CurveSegment], Callable[[np.ndarray], np.ndarray] | None],
        scalar_fn: Callable[[CurveSegment, float], float],
    ) -> np.ndarray:
        """Shared sampling core: locate all segments with one searchsorted,
        then evaluate each involved segment once on its sub-array (falling
        back to per-point scalar calls when no array evaluator is available).
        """
        energies = np.asarray(energies, dtype=float)
        indices, energies = self._segment_indices(energies)
        out = np.empty(energies.shape)
        for idx in np.unique(indices):
            seg = self.segments[int(idx)]
            mask = indices == idx
            vectorised = array_fn(seg)
            if vectorised is not None:
                out[mask] = vectorised(energies[mask])
            else:
                out[mask] = [scalar_fn(seg, float(e)) for e in energies[mask]]
        return out

    def sample(self, energies: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`value` over an array of budgets."""
        return self._sample_grouped(
            energies,
            lambda seg: seg.value_array,
            lambda seg, e: float(seg.value(e)),
        )

    def sample_derivative(self, energies: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`derivative`."""
        return self._sample_grouped(
            energies,
            lambda seg: seg.derivative if seg.array_safe and seg.derivative else None,
            lambda seg, e: seg.derivative_at(e),
        )

    def sample_second_derivative(self, energies: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`second_derivative`."""
        return self._sample_grouped(
            energies,
            lambda seg: (
                seg.second_derivative
                if seg.array_safe and seg.second_derivative
                else None
            ),
            lambda seg, e: seg.second_derivative_at(e),
        )

    def energy_grid(self, n: int = 200, max_energy: float | None = None) -> np.ndarray:
        """A convenient energy grid spanning the curve for plotting/sampling.

        When the curve extends to infinite energy, ``max_energy`` must be
        supplied (or defaults to three times the largest breakpoint, or three
        times the minimum energy when there are no breakpoints).
        """
        lo = self.min_energy
        hi = self.max_energy
        if not math.isfinite(hi):
            if max_energy is not None:
                hi = float(max_energy)
            elif self.breakpoints:
                hi = 3.0 * max(self.breakpoints)
            else:
                hi = 3.0 * max(lo, 1.0)
        if max_energy is not None:
            hi = float(max_energy)
        if hi <= lo:
            raise BudgetError("energy grid upper bound must exceed the curve's minimum energy")
        # the value may be undefined at a zero lower endpoint (makespan diverges
        # as the budget vanishes), so start the grid a hair inside the range
        start = lo * (1 + 1e-9) if lo > 0.0 else hi * 1e-6
        return np.linspace(start, hi, int(n))

    # ------------------------------------------------------------------
    # inversion (the server problem)
    # ------------------------------------------------------------------
    def energy_for_value(self, target: float) -> float:
        """Minimum energy whose optimal value is at most ``target``.

        This is the *server problem*: fix the schedule quality, minimise
        energy.  Raises :class:`InfeasibleError` when the target is below the
        best value achievable anywhere on the curve.
        """
        # value is non-increasing in energy: scan segments from cheap to
        # expensive and find the first that can reach the target.
        for seg in self.segments:
            hi = seg.energy_hi
            if math.isfinite(hi):
                v_hi = seg.value(hi)
            else:
                # open-ended final segment: probe a large budget to test
                # achievability, then bracket adaptively below.
                hi = max(seg.energy_lo * 2.0, seg.energy_lo + 1.0)
                v_hi = seg.value(hi)
                while v_hi > target and hi < 1e30:
                    hi *= 2.0
                    v_hi = seg.value(hi)
            if v_hi > target + 1e-12:
                continue
            lo = seg.energy_lo
            try:
                v_lo = seg.value(lo)
            except BudgetError:
                # The value may be undefined at the segment's lower endpoint
                # (e.g. the single-block makespan segment diverges as the
                # budget approaches the fixed-block energy); treat it as +inf
                # and bracket away from the endpoint below.
                v_lo = math.inf
            if v_lo <= target + 1e-12:
                return float(lo)
            if v_hi >= target:
                # v_hi passed the acceptance screen above only by the 1e-12
                # tolerance, so the true crossing sits (numerically) at the
                # segment's upper edge; brentq would see the same sign at
                # both ends and raise.
                return float(hi)
            if not math.isfinite(v_lo):
                # March the bracket's lower end inward until the value is
                # defined and still above the target.  A fixed relative nudge
                # is not enough: on segments spanning many orders of magnitude
                # the first probe can overshoot the crossing (its value already
                # below the target), so shrink the bracket and retry whenever
                # that happens.
                nudge = (hi - lo) * 1e-12
                for _ in range(200):
                    probe = lo + nudge
                    try:
                        v_probe = seg.value(probe)
                    except BudgetError:
                        nudge *= 2.0
                        continue
                    if v_probe > target:
                        lo = probe
                        break
                    # the probe already achieves the target: the crossing lies
                    # between the endpoint and the probe
                    hi = probe
                    nudge *= 1e-6
                else:  # pragma: no cover - defensive
                    raise InfeasibleError(
                        f"could not bracket the minimum energy for "
                        f"{self.metric_name} = {target:g}"
                    )
            result = optimize.brentq(
                lambda e: seg.value(e) - target, lo, hi, xtol=1e-12, rtol=1e-12
            )
            return float(result)
        raise InfeasibleError(
            f"target {self.metric_name} = {target:g} is not achievable with any "
            f"energy budget up to {self.max_energy:g}"
        )

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------
    def _check_monotone(self, n_probe: int = 7) -> None:
        last_value = math.inf
        for seg in self.segments:
            hi = seg.energy_hi if math.isfinite(seg.energy_hi) else seg.energy_lo * 2 + 1.0
            grid = np.linspace(seg.energy_lo, hi, n_probe)
            grid[0] = seg.energy_lo + (hi - seg.energy_lo) * 1e-9
            values = [seg.value(float(e)) for e in grid]
            for v in values:
                if v > last_value + 1e-6 * max(1.0, abs(last_value)):
                    raise InvalidInstanceError(
                        "trade-off curve is not non-increasing in energy; "
                        "this would mean a dominated schedule was included"
                    )
                last_value = v

    def is_convex(self, n_probe: int = 64, tol: float = 1e-6) -> bool:
        """Whether the sampled curve is convex in energy (true for makespan frontiers)."""
        grid = self.energy_grid(n_probe)
        values = self.sample(grid)
        second_diff = np.diff(values, 2)
        scale = max(1.0, float(np.max(np.abs(values))))
        return bool(np.all(second_diff >= -tol * scale))

    def dominates_point(self, energy: float, value: float) -> bool:
        """Whether some schedule on the curve is at least as good in both criteria."""
        if energy < self.min_energy:
            return False
        probe = min(energy, self.max_energy)
        return self.value(probe) <= value + 1e-9

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TradeoffCurve(metric={self.metric_name!r}, n_segments={len(self.segments)}, "
            f"energy=[{self.min_energy:g}, {self.max_energy:g}])"
        )

"""Deprecated shim: the Lemma 2-6 structure checks moved to :mod:`repro.verify.structure`.

The verification subsystem (:mod:`repro.verify`) is the home of everything
that inspects solver output as data, including the optimality-structure
oracle that used to live here.  This module survives only so pre-existing
``repro.core.validation`` imports keep working; attribute access warns (like
the deprecated ``repro.batch.SOLVERS`` view) and forwards to the new home.

The blessed re-exports on :mod:`repro.core` itself
(``from repro.core import check_optimal_structure``) are unchanged and do
not warn.
"""

from __future__ import annotations

import warnings
from typing import Any

_MOVED = ("StructureReport", "check_optimal_structure", "assert_optimal_structure")

__all__ = list(_MOVED)


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            "repro.core.validation is deprecated; import "
            f"{name} from repro.verify.structure (or repro.core) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..verify import structure

        return getattr(structure, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED))

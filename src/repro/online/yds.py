"""Yao-Demers-Shenker (YDS) optimal speed scaling for jobs with deadlines.

The paper's related-work section (and much of the follow-up literature it
cites) is built on the deadline-feasibility model of Yao, Demers and Shenker:
every job has a release time and a deadline, and the goal is the
minimum-energy schedule meeting every deadline.  This package implements YDS
because it serves three roles in the reproduction:

* it is the optimal *offline* baseline against which the online algorithms
  (AVR, OA, BKP -- Section 2 / Section 6 of the paper) are measured,
* with a common deadline equal to a makespan target it solves the makespan
  *server problem*, giving an oracle for Section 3 that shares no code with
  IncMerge (:func:`repro.makespan.baselines.server_energy_via_yds`),
* it is the planning subroutine inside Optimal Available (OA).

Algorithm (classic): repeatedly find the *critical interval* -- the interval
``[t1, t2]`` maximising the intensity ``w(t1, t2) / (t2 - t1)``, where
``w(t1, t2)`` sums the work of jobs whose entire ``[release, deadline]``
window lies inside ``[t1, t2]`` -- run those jobs at exactly that speed in
EDF order, remove them, collapse the interval, and recurse.  The returned
per-job speeds are then realised as an explicit schedule by an EDF
simulation, which the tests validate against every deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

import heapq
from typing import Sequence

from ..core.job import Instance
from ..core.kernels import (
    BatchWorkspace,
    max_density_interval,
    max_density_interval_batched,
    pack_instances,
    power_eval,
)
from ..core.power import PowerFunction
from ..core.schedule import Piece, Schedule
from ..exceptions import InfeasibleError, InvalidInstanceError

__all__ = [
    "YDSResult",
    "yds_speeds",
    "yds_speeds_batch",
    "yds_speeds_reference",
    "yds_schedule",
    "edf_schedule_at_speeds",
    "edf_energy_speeds",
]


@dataclass(frozen=True)
class YDSResult:
    """Per-job speeds chosen by YDS, plus the critical intervals found."""

    speeds: np.ndarray
    critical_intervals: tuple[tuple[float, float, float], ...]  # (t1, t2, intensity)


def _require_deadlines(instance: Instance) -> None:
    if not instance.has_deadlines():
        raise InvalidInstanceError(
            "YDS requires every job to carry a finite deadline; attach them with "
            "Instance.with_deadlines()"
        )


def yds_speeds(instance: Instance) -> YDSResult:
    """Compute the YDS speed of every job (independent of the power function).

    The optimal speeds depend only on the releases, deadlines and works; the
    power function matters only when converting the schedule to energy.

    Each round finds the critical (maximum-density) interval with the
    vectorised prefix-sum kernel
    :func:`repro.core.kernels.max_density_interval` instead of re-enumerating
    the member set of every release/deadline pair; the interval-collapse step
    is a pair of array updates.  Results match
    :func:`yds_speeds_reference` (the retained scalar implementation) to
    floating-point accuracy; ``tests/test_kernels.py`` pins the two together.
    """
    _require_deadlines(instance)
    n = instance.n_jobs
    releases = instance.releases
    deadlines = instance.deadlines
    works = instance.works
    alive = np.ones(n, dtype=bool)
    speeds = np.zeros(n)
    intervals: list[tuple[float, float, float]] = []

    while np.any(alive):
        live = np.where(alive)[0]
        found = max_density_interval(releases[live], deadlines[live], works[live])
        if found is None:  # pragma: no cover - defensive
            raise InfeasibleError("YDS failed to find a critical interval")
        t1, t2, intensity, members = found
        intervals.append((t1, t2, intensity))
        removed = live[members]
        speeds[removed] = intensity
        alive[removed] = False
        # collapse [t1, t2]: times past t2 shift left by the interval length,
        # times inside (t1, t2) snap to t1
        length = t2 - t1
        rest = np.where(alive)[0]
        r = releases[rest]
        d = deadlines[rest]
        releases[rest] = np.where(r >= t2, r - length, np.where(r > t1, t1, r))
        deadlines[rest] = np.where(d >= t2, d - length, np.where(d > t1, t1, d))

    return YDSResult(speeds=speeds, critical_intervals=tuple(intervals))


def yds_speeds_reference(instance: Instance) -> YDSResult:
    """Scalar reference implementation of :func:`yds_speeds`.

    Re-enumerates every release/deadline pair's member set each round, exactly
    as the classic algorithm is usually stated.  Kept as the correctness
    anchor for the vectorised kernel (and it is what the equivalence tests
    compare against); use :func:`yds_speeds` everywhere else.
    """
    _require_deadlines(instance)
    remaining: list[tuple[int, float, float, float]] = [
        (job.index, job.release, float(job.deadline), job.work)  # type: ignore[arg-type]
        for job in instance.jobs
    ]
    speeds = np.zeros(instance.n_jobs)
    intervals: list[tuple[float, float, float]] = []

    while remaining:
        releases = sorted({r for _, r, _, _ in remaining})
        deadlines = sorted({d for _, _, d, _ in remaining})
        best_intensity = -1.0
        best_pair: tuple[float, float] | None = None
        best_set: list[int] = []
        for t1 in releases:
            for t2 in deadlines:
                if t2 <= t1:
                    continue
                members = [idx for idx, (jid, r, d, w) in enumerate(remaining) if r >= t1 and d <= t2]
                if not members:
                    continue
                work = sum(remaining[i][3] for i in members)
                intensity = work / (t2 - t1)
                # strict > : keep the first pair attaining the maximum, the
                # same tie-break the vectorised kernel's argmax applies
                if intensity > best_intensity:
                    best_intensity = intensity
                    best_pair = (t1, t2)
                    best_set = members
        if best_pair is None:  # pragma: no cover - defensive
            raise InfeasibleError("YDS failed to find a critical interval")
        t1, t2 = best_pair
        intervals.append((t1, t2, best_intensity))
        removed_ids = set()
        for i in best_set:
            jid = remaining[i][0]
            speeds[jid] = best_intensity
            removed_ids.add(jid)
        length = t2 - t1
        new_remaining = []
        for jid, r, d, w in remaining:
            if jid in removed_ids:
                continue
            if r >= t2:
                r -= length
            elif r > t1:
                r = t1
            if d >= t2:
                d -= length
            elif d > t1:
                d = t1
            new_remaining.append((jid, r, d, w))
        remaining = new_remaining

    return YDSResult(speeds=speeds, critical_intervals=tuple(intervals))


def edf_schedule_at_speeds(
    instance: Instance,
    power: PowerFunction,
    speeds: np.ndarray,
) -> Schedule:
    """Realise per-job speeds as an EDF (earliest-deadline-first) schedule.

    At every instant the released, unfinished job with the earliest deadline
    runs at *its own* assigned speed.  This reconstructs the YDS optimal
    schedule from its speed assignment and is also reused to execute other
    per-job speed assignments (e.g. quantised ones) under EDF.
    """
    _require_deadlines(instance)
    speeds = np.asarray(speeds, dtype=float)
    if speeds.shape != (instance.n_jobs,):
        raise InvalidInstanceError("need one speed per job")
    if np.any(speeds <= 0.0) or np.any(~np.isfinite(speeds)):
        raise InvalidInstanceError("speeds must be finite and positive")

    remaining = instance.works.astype(float).copy()
    releases = instance.releases
    deadlines = instance.deadlines
    pieces: list[Piece] = []
    t = float(releases.min())
    active_piece: dict | None = None
    # event-driven simulation: the state changes only at releases and
    # completions, so we can jump between those.
    for _ in range(10 * instance.n_jobs * (instance.n_jobs + 1) + 10):
        unfinished = np.where(remaining > 1e-12)[0]
        if len(unfinished) == 0:
            break
        available = unfinished[releases[unfinished] <= t + 1e-12]
        if len(available) == 0:
            t = float(releases[unfinished].min())
            continue
        job = int(available[np.argmin(deadlines[available])])
        speed = float(speeds[job])
        finish_time = t + remaining[job] / speed
        future = unfinished[releases[unfinished] > t + 1e-12]
        next_release = float(releases[future].min()) if len(future) else math.inf
        end = min(finish_time, next_release)
        if end > t + 1e-15:
            pieces.append(Piece(job=job, processor=0, start=t, end=end, speed=speed))
            remaining[job] -= speed * (end - t)
        t = end
    else:  # pragma: no cover - defensive
        raise InfeasibleError("EDF simulation did not terminate")
    return Schedule(instance, power, _merge_adjacent(pieces))


def _merge_adjacent(pieces: list[Piece]) -> list[Piece]:
    """Merge consecutive pieces of the same job at the same speed."""
    merged: list[Piece] = []
    for piece in pieces:
        if (
            merged
            and merged[-1].job == piece.job
            and math.isclose(merged[-1].end, piece.start, abs_tol=1e-12)
            and math.isclose(merged[-1].speed, piece.speed, rel_tol=1e-12)
        ):
            merged[-1] = Piece(
                job=piece.job,
                processor=piece.processor,
                start=merged[-1].start,
                end=piece.end,
                speed=piece.speed,
            )
        else:
            merged.append(piece)
    return merged


def yds_schedule(instance: Instance, power: PowerFunction) -> Schedule:
    """The full YDS minimum-energy schedule meeting every deadline."""
    result = yds_speeds(instance)
    return edf_schedule_at_speeds(instance, power, result.speeds)


# ----------------------------------------------------------------------
# structure-of-arrays batched tier
# ----------------------------------------------------------------------

def yds_speeds_batch(instances: Sequence[Instance]) -> np.ndarray:
    """YDS speeds for a whole chunk of instances in lockstep.

    Packs the chunk into padded ``(batch, n)`` arrays and runs every YDS
    round once over all still-active rows via
    :func:`repro.core.kernels.max_density_interval_batched`, so a fleet of
    small instances pays one NumPy dispatch per round instead of one per
    instance per round.  Returns a ``(batch, max_n)`` speed array whose row
    ``b`` equals ``yds_speeds(instances[b]).speeds`` *bitwise* on the first
    ``instances[b].n_jobs`` slots (padding slots are 0); pinned by
    ``tests/test_batched_kernels.py``.
    """
    for instance in instances:
        _require_deadlines(instance)
    batch = pack_instances(instances)
    releases = np.where(batch.mask, batch.releases, np.inf)
    deadlines = np.where(batch.mask, batch.deadlines, np.inf)
    works = np.where(batch.mask, batch.works, 0.0)
    n_rows, width = releases.shape
    ids = np.broadcast_to(np.arange(width), (n_rows, width)).copy()
    rows = np.arange(n_rows)
    speeds = np.zeros((n_rows, width))
    workspace = (
        BatchWorkspace(n_rows, width) if n_rows * width >= 1024 else None
    )
    while len(rows):
        t1, t2, density = max_density_interval_batched(
            releases, deadlines, works, workspace
        )
        live_rows = np.where(density > 0.0)[0]
        if len(live_rows) == 0:
            break
        if len(live_rows) < len(rows):
            rows = rows[live_rows]
            releases = releases[live_rows]
            deadlines = deadlines[live_rows]
            works = works[live_rows]
            ids = ids[live_rows]
            t1 = t1[live_rows]
            t2 = t2[live_rows]
            density = density[live_rows]
        members = (releases >= t1[:, None]) & (deadlines <= t2[:, None])
        mem_r, mem_c = np.nonzero(members)
        speeds[rows[mem_r], ids[mem_r, mem_c]] = density[mem_r]
        # retire the members, then collapse [t1, t2] exactly as the
        # per-instance rounds do
        works[members] = 0.0
        releases[members] = np.inf
        deadlines[members] = np.inf
        lo = t1[:, None]
        hi = t2[:, None]
        length = hi - lo
        releases = np.where(
            releases >= hi, releases - length, np.where(releases > lo, lo, releases)
        )
        deadlines = np.where(
            deadlines >= hi, deadlines - length, np.where(deadlines > lo, lo, deadlines)
        )
        alive = np.isfinite(deadlines)
        live_width = int(alive.sum(axis=1).max()) if len(alive) else 0
        if live_width == 0:
            break
        if live_width < releases.shape[1]:
            # stable-partition live jobs first and shrink the row width so
            # later rounds run on the smallest grid that still fits
            order = np.argsort(~alive, axis=1, kind="stable")
            releases = np.take_along_axis(releases, order, axis=1)[:, :live_width]
            deadlines = np.take_along_axis(deadlines, order, axis=1)[:, :live_width]
            works = np.take_along_axis(works, order, axis=1)[:, :live_width]
            ids = np.take_along_axis(ids, order, axis=1)[:, :live_width]
    return speeds


def edf_energy_speeds(
    instance: Instance,
    power: PowerFunction,
    speeds: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Energy and per-job average speeds of the EDF realisation, fast.

    Computes exactly what ``edf_schedule_at_speeds(...).energy`` and
    ``.speeds`` would (same thresholds, same piece-merge criteria, same
    float operation order — the results are bitwise identical) without
    constructing ``Piece``/``Schedule`` objects, which dominate the cost for
    small instances.  The batched solver tier realises its planned speeds
    through this path; ``tests/test_batched_kernels.py`` pins it to the
    schedule-building one.
    """
    _require_deadlines(instance)
    speeds = np.asarray(speeds, dtype=float)
    if speeds.shape != (instance.n_jobs,):
        raise InvalidInstanceError("need one speed per job")
    if np.any(speeds <= 0.0) or np.any(~np.isfinite(speeds)):
        raise InvalidInstanceError("speeds must be finite and positive")

    n = instance.n_jobs
    order = np.argsort(instance.releases, kind="stable")
    releases = instance.releases[order].tolist()
    deadline_arr = instance.deadlines
    deadlines = deadline_arr[order].tolist()
    remaining = instance.works[order].astype(float).tolist()
    job_ids = order.tolist()
    speed_list = speeds[order].tolist()

    pending: list[tuple[float, int]] = []  # (deadline, original job id) heap
    nxt = 0
    t = releases[0] if n else 0.0
    piece_jobs: list[int] = []
    piece_starts: list[float] = []
    piece_ends: list[float] = []
    piece_speeds: list[float] = []
    slot_of = [0] * n  # original job id -> sorted slot
    for slot, jid in enumerate(job_ids):
        slot_of[jid] = slot
    for _ in range(10 * n * (n + 1) + 10):
        while nxt < n and releases[nxt] <= t + 1e-12:
            heapq.heappush(pending, (deadlines[nxt], job_ids[nxt]))
            nxt += 1
        while pending and remaining[slot_of[pending[0][1]]] <= 1e-12:
            heapq.heappop(pending)
        if not pending:
            if nxt >= n:
                break
            t = releases[nxt]
            continue
        job = pending[0][1]
        slot = slot_of[job]
        speed = speed_list[slot]
        finish_time = t + remaining[slot] / speed
        next_release = releases[nxt] if nxt < n else math.inf
        end = finish_time if finish_time < next_release else next_release
        if end > t + 1e-15:
            if (
                piece_jobs
                and piece_jobs[-1] == job
                and math.isclose(piece_ends[-1], t, abs_tol=1e-12)
                and math.isclose(piece_speeds[-1], speed, rel_tol=1e-12)
            ):
                piece_ends[-1] = end
                piece_speeds[-1] = speed
            else:
                piece_jobs.append(job)
                piece_starts.append(t)
                piece_ends.append(end)
                piece_speeds.append(speed)
            remaining[slot] -= speed * (end - t)
        t = end
    else:  # pragma: no cover - defensive
        raise InfeasibleError("EDF simulation did not terminate")

    jobs = np.array(piece_jobs, dtype=np.intp)
    starts = np.array(piece_starts)
    ends = np.array(piece_ends)
    piece_speed_arr = np.array(piece_speeds)
    durations = ends - starts
    energy = float(np.sum(power_eval(power, piece_speed_arr) * durations))
    total_time = np.bincount(jobs, weights=durations, minlength=n)
    total_work = np.bincount(jobs, weights=piece_speed_arr * durations, minlength=n)
    with np.errstate(divide="ignore", invalid="ignore"):
        job_speeds = np.where(total_time > 0, total_work / total_time, math.nan)
    return energy, job_speeds

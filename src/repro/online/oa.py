"""Optimal Available (OA) online speed scaling.

OA is the second online algorithm proposed by Yao, Demers and Shenker and
shown ``alpha**alpha``-competitive by Bansal, Kimbrel and Pruhs (both papers
are cited in the related-work section of the paper under reproduction).  The
policy: whenever a job arrives, recompute the optimal (YDS) schedule for the
*currently remaining* work assuming no further arrivals, and follow it until
the next arrival.

The implementation simulates exactly that: between consecutive release times
it plans with :func:`repro.online.yds.yds_speeds` on the residual instance and
executes the plan's EDF schedule, truncating at the next release.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.job import Instance, Job
from ..core.power import PowerFunction
from ..core.schedule import Piece, Schedule
from ..exceptions import InvalidInstanceError
from .yds import edf_schedule_at_speeds, yds_speeds

__all__ = ["oa_schedule"]


def oa_schedule(instance: Instance, power: PowerFunction) -> Schedule:
    """Run the Optimal Available policy and return the resulting schedule."""
    if not instance.has_deadlines():
        raise InvalidInstanceError("OA requires deadlines on every job")

    releases = instance.releases
    events = sorted(set(float(r) for r in releases))
    remaining = instance.works.astype(float).copy()
    pieces: list[Piece] = []

    for k, now in enumerate(events):
        next_event = events[k + 1] if k + 1 < len(events) else math.inf
        # Build the residual instance: jobs released by `now` with unfinished
        # work, treated as released at `now` (their original release is in the
        # past), keeping their deadlines.
        active = [
            j
            for j in range(instance.n_jobs)
            if releases[j] <= now + 1e-12 and remaining[j] > 1e-12
        ]
        if not active:
            continue
        residual_jobs = [
            Job(
                index=i,
                release=now,
                work=float(remaining[j]),
                deadline=float(instance.deadlines[j]),
            )
            for i, j in enumerate(active)
        ]
        residual = Instance(residual_jobs, name="oa-residual")
        plan_speeds = yds_speeds(residual).speeds
        plan = edf_schedule_at_speeds(residual, power, plan_speeds)
        # execute the plan until the next release
        for piece in sorted(plan.pieces, key=lambda p: p.start):
            if piece.start >= next_event - 1e-15:
                break
            end = min(piece.end, next_event)
            if end <= piece.start + 1e-15:
                continue
            original_job = active[piece.job]
            done = piece.speed * (end - piece.start)
            remaining[original_job] -= done
            pieces.append(
                Piece(
                    job=original_job,
                    processor=0,
                    start=piece.start,
                    end=end,
                    speed=piece.speed,
                )
            )

    if np.any(remaining > 1e-6 * instance.works):
        # cannot happen for feasible instances: after the last release the plan
        # runs to completion unless a deadline has already been violated.
        bad = [int(i) for i in np.where(remaining > 1e-6 * instance.works)[0]]
        raise InvalidInstanceError(f"OA left unfinished work on jobs {bad}")
    return Schedule(instance, power, pieces)

"""Optimal Available (OA) online speed scaling.

OA is the second online algorithm proposed by Yao, Demers and Shenker and
shown ``alpha**alpha``-competitive by Bansal, Kimbrel and Pruhs (both papers
are cited in the related-work section of the paper under reproduction).  The
policy: whenever a job arrives, recompute the optimal (YDS) schedule for the
*currently remaining* work assuming no further arrivals, and follow it until
the next arrival.

Two implementations are provided:

* :func:`oa_schedule` -- the scalar reference.  It simulates the policy
  literally: between consecutive release times it plans with
  :func:`repro.online.yds.yds_speeds` on a freshly built residual instance
  and executes the plan's EDF schedule, truncating at the next release.
  Re-running the general critical-interval YDS per event makes it roughly
  cubic in the number of jobs.
* :func:`oa_schedule_incremental` -- the engine used everywhere else.  It
  exploits the fact that every residual instance OA plans over is a
  *common-release* instance (all residual jobs are available "now"), for
  which the YDS plan is just the prefix-density staircase
  (:func:`repro.core.kernels.common_release_prefix_speeds`).  The
  deadline-sorted residual-work arrays are maintained *incrementally* across
  releases — new arrivals are merged in by binary insertion and executed
  work is subtracted in place — so each event costs one O(m) hull pass plus
  a few vector operations instead of a full YDS solve.

``tests/test_online_equivalence.py`` pins the two implementations to each
other at 1e-9 relative energy across all deadline workload families.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.job import Instance, Job
from ..core.kernels import common_release_prefix_speeds
from ..core.power import PowerFunction
from ..core.schedule import Piece, Schedule
from ..exceptions import InfeasibleError, InvalidInstanceError
from .yds import edf_schedule_at_speeds, yds_speeds

__all__ = ["oa_schedule", "oa_schedule_incremental"]


def oa_schedule_incremental(instance: Instance, power: PowerFunction) -> Schedule:
    """Run Optimal Available with the incremental prefix-density planner.

    Maintains the residual jobs in one deadline-sorted structure across
    release events.  At each event the newly released jobs are merged in by
    binary insertion, the plan is recomputed as the upper hull of the
    residual cumulative-work staircase, and the plan is executed (jobs run
    back-to-back in deadline order at their staircase speeds) until the next
    release, subtracting the executed work in place.

    Produces schedules with the same energy as :func:`oa_schedule` (pinned
    at 1e-9 relative) at a fraction of the cost.
    """
    if not instance.has_deadlines():
        raise InvalidInstanceError("OA requires deadlines on every job")

    releases = instance.releases
    deadlines = instance.deadlines
    events = sorted(set(float(r) for r in releases))
    remaining = instance.works.astype(float).copy()
    pieces: list[Piece] = []

    # residual structure: original job indices sorted by deadline; jobs enter
    # at their release event and leave (lazily) once their work is exhausted.
    order = np.empty(0, dtype=np.intp)
    next_new = 0  # jobs[next_new:] have not been released yet (release order)
    n = instance.n_jobs

    for k, now in enumerate(events):
        next_event = events[k + 1] if k + 1 < len(events) else math.inf
        # merge newly released jobs into the deadline-sorted order
        first_new = next_new
        while next_new < n and releases[next_new] <= now + 1e-12:
            next_new += 1
        if next_new > first_new:
            new_jobs = np.arange(first_new, next_new, dtype=np.intp)
            # sort the arriving batch by deadline first: searchsorted positions
            # only interleave against the existing order, they do not order
            # same-position (same-event) arrivals among themselves
            new_jobs = new_jobs[np.argsort(deadlines[new_jobs], kind="stable")]
            positions = np.searchsorted(
                deadlines[order], deadlines[new_jobs], side="left"
            )
            order = np.insert(order, positions, new_jobs)
        # drop exhausted jobs (same residual-work threshold as the reference)
        order = order[remaining[order] > 1e-12]
        if len(order) == 0:
            continue
        res_deadlines = deadlines[order]
        if res_deadlines[0] <= now:
            raise InfeasibleError(
                f"job {int(order[0])} still has residual work at its deadline "
                f"{res_deadlines[0]:g} (time {now:g}); the instance is infeasible"
            )
        res_works = remaining[order]
        speeds = common_release_prefix_speeds(now, res_deadlines, res_works)
        # the plan runs jobs back-to-back in deadline order from `now`
        ends = now + np.cumsum(res_works / speeds)
        starts = np.empty_like(ends)
        starts[0] = now
        starts[1:] = ends[:-1]
        # execute the plan until the next release (same truncation guards as
        # the scalar reference loop)
        n_exec = int(np.searchsorted(starts, next_event - 1e-15, side="left"))
        for i in range(n_exec):
            end = min(float(ends[i]), next_event)
            start = float(starts[i])
            if end <= start + 1e-15:
                continue
            job = int(order[i])
            speed = float(speeds[i])
            remaining[job] -= speed * (end - start)
            pieces.append(
                Piece(job=job, processor=0, start=start, end=end, speed=speed)
            )

    if np.any(remaining > 1e-6 * instance.works):
        bad = [int(i) for i in np.where(remaining > 1e-6 * instance.works)[0]]
        raise InvalidInstanceError(f"OA left unfinished work on jobs {bad}")
    return Schedule(instance, power, pieces)


def oa_schedule(instance: Instance, power: PowerFunction) -> Schedule:
    """Run the Optimal Available policy and return the resulting schedule."""
    if not instance.has_deadlines():
        raise InvalidInstanceError("OA requires deadlines on every job")

    releases = instance.releases
    events = sorted(set(float(r) for r in releases))
    remaining = instance.works.astype(float).copy()
    pieces: list[Piece] = []

    for k, now in enumerate(events):
        next_event = events[k + 1] if k + 1 < len(events) else math.inf
        # Build the residual instance: jobs released by `now` with unfinished
        # work, treated as released at `now` (their original release is in the
        # past), keeping their deadlines.
        active = [
            j
            for j in range(instance.n_jobs)
            if releases[j] <= now + 1e-12 and remaining[j] > 1e-12
        ]
        if not active:
            continue
        residual_jobs = [
            Job(
                index=i,
                release=now,
                work=float(remaining[j]),
                deadline=float(instance.deadlines[j]),
            )
            for i, j in enumerate(active)
        ]
        residual = Instance(residual_jobs, name="oa-residual")
        plan_speeds = yds_speeds(residual).speeds
        plan = edf_schedule_at_speeds(residual, power, plan_speeds)
        # execute the plan until the next release
        for piece in sorted(plan.pieces, key=lambda p: p.start):
            if piece.start >= next_event - 1e-15:
                break
            end = min(piece.end, next_event)
            if end <= piece.start + 1e-15:
                continue
            original_job = active[piece.job]
            done = piece.speed * (end - piece.start)
            remaining[original_job] -= done
            pieces.append(
                Piece(
                    job=original_job,
                    processor=0,
                    start=piece.start,
                    end=end,
                    speed=piece.speed,
                )
            )

    if np.any(remaining > 1e-6 * instance.works):
        # cannot happen for feasible instances: after the last release the plan
        # runs to completion unless a deadline has already been violated.
        bad = [int(i) for i in np.where(remaining > 1e-6 * instance.works)[0]]
        raise InvalidInstanceError(f"OA left unfinished work on jobs {bad}")
    return Schedule(instance, power, pieces)

"""Registration hook: deadline-feasibility solvers (YDS + online) for the API.

Imported lazily by :mod:`repro.api.registry` on first registry access.  In
the bicriteria template these are all ``server``-mode energy minimisers: the
metric side is the hard per-job deadlines, so there is no budget argument —
the solvers return the (approximately) minimum feasible energy.  YDS is the
offline optimum; AVR, OA and BKP are the online algorithms measured against
it by :func:`repro.online.compete.competitive_sweep` (their registration
order here fixes the sweep's default algorithm order).
"""

from __future__ import annotations

from ..api.types import ProblemSpec, SolveRequest, SolverCapabilities

__all__ = ["register_solvers"]


def _energy_result(schedule) -> tuple:
    energy = schedule.energy
    return energy, energy, schedule.speeds, {}


def _run_yds(request: SolveRequest) -> tuple:
    from .yds import yds_schedule

    return _energy_result(yds_schedule(request.instance, request.power))


def _run_yds_batch(requests: list[SolveRequest]) -> list[tuple]:
    """Batched YDS: one structure-of-arrays plan pass over the whole chunk.

    ``yds_speeds_batch`` computes every instance's optimal per-job speeds in
    shared padded arrays; the EDF realisation (energy + realised per-job
    speeds) is then evaluated per instance by ``edf_energy_speeds``, which is
    bitwise-identical to ``yds_schedule(...).energy`` / ``.speeds``.
    """
    from .yds import edf_energy_speeds, yds_speeds_batch

    planned = yds_speeds_batch([request.instance for request in requests])
    results: list[tuple] = []
    for b, request in enumerate(requests):
        n = request.instance.n_jobs
        energy, job_speeds = edf_energy_speeds(
            request.instance, request.power, planned[b, :n]
        )
        results.append((energy, energy, job_speeds, {}))
    return results


def _run_avr_batch(requests: list[SolveRequest]) -> list[tuple]:
    """Batched AVR: one event-grid sweep builds every chunk member's profile."""
    from .avr import avr_speed_profiles_batch
    from .executor import execute_profile_edf

    profiles = avr_speed_profiles_batch([request.instance for request in requests])
    return [
        _energy_result(execute_profile_edf(request.instance, request.power, profile))
        for request, profile in zip(requests, profiles)
    ]


def _run_bkp_batch(requests: list[SolveRequest]) -> list[tuple]:
    """Batched BKP: share one packed release x deadline work grid per chunk."""
    from ..core.kernels import interval_work_grid_batched, pack_instances
    from .bkp import bkp_schedule

    batch = pack_instances([request.instance for request in requests])
    grid_r, grid_d, member = interval_work_grid_batched(
        batch.releases, batch.deadlines, batch.works, batch.mask
    )
    results: list[tuple] = []
    for b, request in enumerate(requests):
        n = request.instance.n_jobs
        schedule = bkp_schedule(
            request.instance,
            request.power,
            grid=(grid_r[b, :n], grid_d[b, :n], member[b, : n + 1, :n]),
        )
        results.append(_energy_result(schedule))
    return results


def _run_yds_anytime(request: SolveRequest) -> tuple:
    """Anytime YDS: certified AVR cut, exact escalation when the gap is big.

    The reported ``epsilon`` is the realized gap of the returned schedule's
    energy against the Jensen window lower bound (zero for the escalated
    exact path); the ``error-bound`` checker recomputes the bound.
    """
    from .anytime import anytime_min_energy

    target = float(request.options.get(
        "epsilon", request.accuracy if request.accuracy is not None else 0.1
    ))
    schedule, epsilon, kind = anytime_min_energy(
        request.instance, request.power, target
    )
    energy = schedule.energy
    extras = {
        "approximation": {
            "epsilon": float(epsilon),
            "bound_kind": kind,
            "certificate": "error-bound",
        },
    }
    return energy, energy, schedule.speeds, extras


def _run_avr(request: SolveRequest) -> tuple:
    from .avr import avr_schedule

    return _energy_result(avr_schedule(request.instance, request.power))


def _run_oa(request: SolveRequest) -> tuple:
    from .oa import oa_schedule_incremental

    return _energy_result(oa_schedule_incremental(request.instance, request.power))


def _run_bkp(request: SolveRequest) -> tuple:
    from .bkp import bkp_schedule

    return _energy_result(bkp_schedule(request.instance, request.power))


def register_solvers(registry) -> None:
    """Register the deadline-feasibility solvers (YDS, AVR, OA, BKP)."""

    def caps(
        name: str, summary: str, online: bool, batch_kernel: bool = False
    ) -> SolverCapabilities:
        return SolverCapabilities(
            name=name,
            spec=ProblemSpec(objective="energy", mode="server", online=online),
            summary=summary,
            budget_kind="none",
            batchable=True,
            batch_kernel=batch_kernel,
            needs_deadlines=True,
            certificates=("competitive-ratio",) if online else ("yds-density",),
        )

    registry.register(
        caps(
            "yds",
            "offline-optimal deadline-feasible energy (YDS)",
            online=False,
            batch_kernel=True,
        ),
        _run_yds,
        batch_fn=_run_yds_batch,
    )
    registry.register(
        SolverCapabilities(
            name="yds-anytime",
            spec=ProblemSpec(objective="energy", mode="server", online=False),
            summary="anytime deadline-feasible energy: certified AVR cut, "
                    "exact YDS escalation",
            budget_kind="none",
            needs_deadlines=True,
            certificates=("error-bound",),
            variant_of="yds",
            approximate=True,
            bound_kind="jensen-gap",
        ),
        _run_yds_anytime,
    )
    registry.register(
        caps(
            "avr",
            "Average Rate online heuristic (deadline-feasible)",
            online=True,
            batch_kernel=True,
        ),
        _run_avr,
        batch_fn=_run_avr_batch,
    )
    registry.register(
        caps("oa", "Optimal Available online algorithm (incremental engine)", online=True),
        _run_oa,
    )
    registry.register(
        caps(
            "bkp",
            "Bansal-Kimbrel-Pruhs online algorithm (discretised)",
            online=True,
            batch_kernel=True,
        ),
        _run_bkp,
        batch_fn=_run_bkp_batch,
    )

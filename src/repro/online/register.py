"""Registration hook: deadline-feasibility solvers (YDS + online) for the API.

Imported lazily by :mod:`repro.api.registry` on first registry access.  In
the bicriteria template these are all ``server``-mode energy minimisers: the
metric side is the hard per-job deadlines, so there is no budget argument —
the solvers return the (approximately) minimum feasible energy.  YDS is the
offline optimum; AVR, OA and BKP are the online algorithms measured against
it by :func:`repro.online.compete.competitive_sweep` (their registration
order here fixes the sweep's default algorithm order).
"""

from __future__ import annotations

from ..api.types import ProblemSpec, SolveRequest, SolverCapabilities

__all__ = ["register_solvers"]


def _energy_result(schedule) -> tuple:
    energy = schedule.energy
    return energy, energy, schedule.speeds, {}


def _run_yds(request: SolveRequest) -> tuple:
    from .yds import yds_schedule

    return _energy_result(yds_schedule(request.instance, request.power))


def _run_avr(request: SolveRequest) -> tuple:
    from .avr import avr_schedule

    return _energy_result(avr_schedule(request.instance, request.power))


def _run_oa(request: SolveRequest) -> tuple:
    from .oa import oa_schedule_incremental

    return _energy_result(oa_schedule_incremental(request.instance, request.power))


def _run_bkp(request: SolveRequest) -> tuple:
    from .bkp import bkp_schedule

    return _energy_result(bkp_schedule(request.instance, request.power))


def register_solvers(registry) -> None:
    """Register the deadline-feasibility solvers (YDS, AVR, OA, BKP)."""

    def caps(name: str, summary: str, online: bool) -> SolverCapabilities:
        return SolverCapabilities(
            name=name,
            spec=ProblemSpec(objective="energy", mode="server", online=online),
            summary=summary,
            budget_kind="none",
            batchable=True,
            needs_deadlines=True,
            certificates=("competitive-ratio",) if online else ("yds-density",),
        )

    registry.register(
        caps("yds", "offline-optimal deadline-feasible energy (YDS)", online=False),
        _run_yds,
    )
    registry.register(
        caps("avr", "Average Rate online heuristic (deadline-feasible)", online=True),
        _run_avr,
    )
    registry.register(
        caps("oa", "Optimal Available online algorithm (incremental engine)", online=True),
        _run_oa,
    )
    registry.register(
        caps("bkp", "Bansal-Kimbrel-Pruhs online algorithm (discretised)", online=True),
        _run_bkp,
    )

"""Competitive-ratio evaluation pipeline for the online algorithms.

The online algorithms (AVR, OA, BKP) carry worst-case competitive-ratio
guarantees against the offline optimum (YDS); this module measures the
*empirical* ratios on whole workload grids and makes that measurement a
first-class, batchable scenario:

* the sweep is the cartesian grid
  ``{algorithm} x {alpha} x {workload family} x {size} x {seed}``,
* every (family, size, seed) cell is materialised once as an
  :class:`~repro.core.job.Instance` and pushed through the batch engine
  (:func:`repro.batch.solve_many`), so the sweep inherits its chunked
  process-pool parallelism and deterministic result ordering,
* the output is a machine-readable payload (plain dicts/lists/floats) with
  one ``cell`` per grid point and one ``summary`` row per
  (algorithm, alpha, family) aggregate, ready to be dumped as JSON —
  reruns with equal parameters produce byte-identical dumps.

Exposed on the command line as ``repro compete`` (see :mod:`repro.cli`) and
measured by ``benchmarks/bench_online_competitive.py`` (which writes
``BENCH_online.json``).

The workload families deliberately include the two adversarial generators
(:func:`~repro.workloads.generators.staircase_deadline_instance` and
:func:`~repro.workloads.generators.nested_interval_instance`) — the regimes
where the AVR/OA ratios are known to degrade toward their theoretical
bounds — next to the benign Poisson-laxity family.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..api.registry import REGISTRY
from ..batch import solve_many

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ResultCache
from ..core.job import Instance
from ..core.power import PolynomialPower
from ..exceptions import InvalidInstanceError
from ..workloads import (
    deadline_instance,
    nested_interval_instance,
    staircase_deadline_instance,
)

__all__ = [
    "ALGORITHMS",
    "FAMILIES",
    "RATIO_BOUNDS",
    "CompetitiveCell",
    "competitive_sweep",
]

#: Online algorithms the sweep knows about, enumerated from the central
#: registry (their registration order in :mod:`repro.online.register` fixes
#: the sweep's deterministic default order: avr, oa, bkp).
ALGORITHMS: tuple[str, ...] = REGISTRY.find(online=True)

#: Workload families: name -> (n_jobs, seed) -> deadline-carrying instance.
FAMILIES: Mapping[str, Callable[[int, int], Instance]] = {
    "deadline": lambda n, seed: deadline_instance(n, seed=seed, laxity=3.0),
    "staircase": lambda n, seed: staircase_deadline_instance(n, seed=seed),
    "nested": lambda n, seed: nested_interval_instance(n, seed=seed),
}

#: Theoretical worst-case energy ratios against YDS, as functions of alpha.
RATIO_BOUNDS: Mapping[str, Callable[[float], float]] = {
    "avr": lambda alpha: 2.0 ** (alpha - 1.0) * alpha**alpha,
    "oa": lambda alpha: alpha**alpha,
    "bkp": lambda alpha: 2.0 * (alpha / (alpha - 1.0)) ** alpha * math.e**alpha,
}


@dataclass(frozen=True)
class CompetitiveCell:
    """One grid point of the sweep: an algorithm's energy ratio vs YDS."""

    algorithm: str
    alpha: float
    family: str
    n_jobs: int
    seed: int
    energy: float
    optimal_energy: float
    ratio: float


def _aggregate(cells: list[CompetitiveCell]) -> list[dict[str, Any]]:
    """One summary row per (algorithm, alpha, family), in sweep order."""
    rows: list[dict[str, Any]] = []
    seen: dict[tuple[str, float, str], dict[str, Any]] = {}
    for cell in cells:
        key = (cell.algorithm, cell.alpha, cell.family)
        row = seen.get(key)
        if row is None:
            row = {
                "algorithm": cell.algorithm,
                "alpha": cell.alpha,
                "family": cell.family,
                "cells": 0,
                "mean_ratio": 0.0,
                "max_ratio": -math.inf,
                "min_ratio": math.inf,
                "bound": float(RATIO_BOUNDS[cell.algorithm](cell.alpha)),
            }
            seen[key] = row
            rows.append(row)
        row["cells"] += 1
        row["mean_ratio"] += cell.ratio  # finalised to a mean below
        row["max_ratio"] = max(row["max_ratio"], cell.ratio)
        row["min_ratio"] = min(row["min_ratio"], cell.ratio)
    for row in rows:
        row["mean_ratio"] = row["mean_ratio"] / row["cells"]
    return rows


def competitive_sweep(
    algorithms: Sequence[str] = ALGORITHMS,
    alphas: Sequence[float] = (2.0, 3.0),
    families: Sequence[str] = ("deadline", "staircase", "nested"),
    sizes: Sequence[int] = (8, 12),
    seeds: int = 3,
    workers: int = 1,
    cache: "ResultCache | None" = None,
    stride: int = 1,
) -> dict[str, Any]:
    """Run the full competitive-ratio grid and return the JSON-ready payload.

    Parameters
    ----------
    algorithms:
        Batch-solver names from :data:`ALGORITHMS`.
    alphas:
        Exponents of the polynomial power function ``speed ** alpha``.
    families:
        Keys of :data:`FAMILIES`.
    sizes:
        Instance sizes (number of jobs) per family.
    seeds:
        Number of seeds per (family, size) cell; seeds run ``0 .. seeds-1``.
    workers:
        Forwarded to :func:`repro.batch.solve_many` (process-pool fan-out).
    cache:
        Optional :class:`~repro.cache.ResultCache` forwarded to every
        :func:`~repro.batch.solve_many` pass.  The instance grid is shared
        across the alpha axis (and between the YDS baseline and the online
        algorithms), so overlapping sweeps — wider alpha grids over the same
        families, reruns after adding an algorithm — pay for each
        (instance, power, solver) cell once (``repro compete --cache-dir``
        on the command line).
    stride:
        Truncated sweep: keep every ``stride``-th (family, size, seed) grid
        cell (default 1 = the full grid).  A cheap smoke-level estimate of
        the same ratios — the truncation is recorded in the payload's
        ``parameters`` (both the stride and the surviving cell count), never
        applied silently, and a given ``(grid, stride)`` pair is
        deterministic, so truncated reruns are byte-identical too.

    Returns
    -------
    dict
        ``{"parameters": ..., "cells": [...], "summary": [...]}`` with plain
        JSON types throughout; equal parameters give byte-identical dumps.
    """
    for algorithm in algorithms:
        # one dispatch surface: an algorithm is valid iff the registry knows
        # it as an online solver
        if algorithm not in ALGORITHMS:
            raise InvalidInstanceError(
                f"unknown online algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
    for family in families:
        if family not in FAMILIES:
            raise InvalidInstanceError(
                f"unknown workload family {family!r}; known: {sorted(FAMILIES)}"
            )
    if seeds <= 0:
        raise InvalidInstanceError("seeds must be positive")
    for size in sizes:
        if int(size) <= 0:
            raise InvalidInstanceError("sizes must be positive")
    if not algorithms or not alphas or not families or not sizes:
        raise InvalidInstanceError(
            "the sweep grid needs at least one algorithm, alpha, family and size"
        )
    stride = int(stride)
    if stride < 1:
        raise InvalidInstanceError(f"stride must be >= 1, got {stride}")

    # materialise the instance grid once; every solver run reuses it so the
    # batch engine's deterministic ordering aligns results across solvers
    grid: list[tuple[str, int, int]] = [
        (family, int(size), seed)
        for family in families
        for size in sizes
        for seed in range(int(seeds))
    ]
    full_cells = len(grid)
    if stride > 1:
        # truncated sweep: deterministic subsample, declared in the payload
        grid = grid[::stride]
    instances = [FAMILIES[family](size, seed) for family, size, seed in grid]

    cells: list[CompetitiveCell] = []
    # One solve_many pass per (alpha, algorithm).  The produced schedules are
    # actually alpha-independent (YDS speeds and the online policies are pure
    # geometry; only the energy evaluation uses the power function), so this
    # does N_alphas x the necessary solver work — deliberately: the batch
    # solvers return energies, not schedules, and routing every grid cell
    # through the same solve_many contract keeps the sweep on the engine's
    # deterministic, process-pool-parallel path.  Revisit if alpha grids grow.
    for alpha in alphas:
        power = PolynomialPower(float(alpha))
        optima = solve_many(
            instances, power, 0.0, solver="yds", workers=workers, cache=cache
        )
        for algorithm in algorithms:
            results = solve_many(
                instances, power, 0.0, solver=algorithm, workers=workers, cache=cache
            )
            for (family, size, seed), opt, res in zip(grid, optima, results):
                cells.append(
                    CompetitiveCell(
                        algorithm=algorithm,
                        alpha=float(alpha),
                        family=family,
                        n_jobs=size,
                        seed=seed,
                        energy=res.energy,
                        optimal_energy=opt.energy,
                        ratio=res.energy / opt.energy,
                    )
                )

    return {
        "kind": "competitive-sweep",
        "parameters": {
            "algorithms": list(algorithms),
            "alphas": [float(a) for a in alphas],
            "families": list(families),
            "sizes": [int(s) for s in sizes],
            "seeds": int(seeds),
            # recorded only when truncation actually happened, so full-grid
            # payloads (and their byte-pinned goldens) are unchanged
            **(
                {
                    "stride": stride,
                    "grid_cells": len(grid),
                    "full_grid_cells": full_cells,
                }
                if stride > 1
                else {}
            ),
        },
        "cells": [asdict(cell) for cell in cells],
        "summary": _aggregate(cells),
    }

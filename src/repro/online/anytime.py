"""Anytime deadline-feasible energy: a certified cut between AVR and YDS.

YDS is the offline optimum but pays several critical-interval rounds; AVR is
a one-pass heuristic whose energy can be checked against an independently
computable lower bound.  The *anytime* solver runs AVR first and accepts it
as the answer whenever its certified gap against the Jensen window bound is
within the requested accuracy, escalating to exact YDS otherwise.

The lower bound: for any window ``[t1, t2]`` the jobs whose whole
``[release, deadline]`` interval lies inside must complete ``W(t1, t2)``
units of work without leaving the window.  Because the power function is
convex with ``P(0) = 0``, spreading that work at constant speed
``W / (t2 - t1)`` over the whole window is the cheapest way to do it
(Jensen's inequality), so every feasible schedule spends at least
``(t2 - t1) * P(W / (t2 - t1))`` energy — and other jobs only add more.
Maximising over the release/deadline grid gives a bound that is *tight* on
the YDS critical interval when a single round covers all jobs.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.job import Instance
from ..core.power import PowerFunction
from ..core.schedule import Schedule
from ..exceptions import InvalidInstanceError

__all__ = ["anytime_min_energy", "jensen_energy_lower_bound"]


def jensen_energy_lower_bound(instance: Instance, power: PowerFunction) -> float:
    """Maximum window bound ``(t2-t1) * P(W(t1,t2)/(t2-t1))`` over the grid.

    Valid for every convex power function with ``P(0) = 0``; recomputed
    independently by the ``error-bound`` certificate checker, so the solver
    cannot overstate its own accuracy.
    """
    if not instance.has_deadlines():
        raise InvalidInstanceError(
            "the Jensen window bound requires every job to carry a deadline"
        )
    releases = instance.releases
    deadlines = instance.deadlines
    works = instance.works
    best = 0.0
    for t1 in np.unique(releases):
        inside_left = releases >= t1
        for t2 in np.unique(deadlines):
            window = float(t2 - t1)
            if window <= 0.0:
                continue
            work = float(works[inside_left & (deadlines <= t2)].sum())
            if work <= 0.0:
                continue
            best = max(best, power.energy(work, work / window))
    return float(best)


def anytime_min_energy(
    instance: Instance,
    power: PowerFunction,
    target_epsilon: float = 0.1,
) -> tuple[Schedule, float, str]:
    """AVR as an anytime cut, escalating to exact YDS when the gap is too big.

    Returns ``(schedule, certified_epsilon, bound_kind)``: either the AVR
    schedule with its certified relative gap against
    :func:`jensen_energy_lower_bound` (``bound_kind == "jensen-gap"``), or
    the exact YDS schedule with a zero gap (``bound_kind == "yds-exact"``).
    """
    from .avr import avr_schedule
    from .yds import yds_schedule

    target = float(target_epsilon)
    if not math.isfinite(target) or target <= 0.0:
        raise InvalidInstanceError(
            f"target_epsilon must be a finite value > 0, got {target_epsilon!r}"
        )
    lower = jensen_energy_lower_bound(instance, power)
    if lower > 0.0:
        cut = avr_schedule(instance, power)
        gap = max(0.0, cut.energy / lower - 1.0)
        if gap <= target:
            return cut, gap, "jensen-gap"
    return yds_schedule(instance, power), 0.0, "yds-exact"

"""The Bansal-Kimbrel-Pruhs (BKP) online speed-scaling algorithm.

The paper's related-work section cites Bansal et al.'s
``2 * (alpha/(alpha-1))**alpha * e**alpha``-competitive algorithm for
deadline-feasible speed scaling.  BKP sets the processor speed at time ``t``
to

    ``s(t) = max_{t' > t}  e * w(t, e*t - (e-1)*t', t') / (t' - t)``

where ``w(t, t1, t2)`` is the amount of work of jobs that have arrived by time
``t``, were released no earlier than ``t1`` and have deadline no later than
``t2``; pending work is processed in EDF order.

Unlike AVR, the BKP speed changes continuously between events, so the
simulation here discretises time: each interval between consecutive event
points (releases and deadlines) is split into ``steps_per_interval`` equal
slices and the speed is held constant (at the value computed at the slice
start) within a slice.  The discretisation error vanishes as the step count
grows; because holding an overestimate too long can shave a sliver of work off
the tail, the executor tolerates (and then rescales away) a tiny relative
work deficit, and the tests check deadline feasibility only up to the
discretisation tolerance.  This is an extension experiment (the paper itself
proves nothing new about BKP), so the approximate simulation is acceptable
and is documented as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.job import Instance
from ..core.kernels import interval_work_grid
from ..core.power import PowerFunction
from ..core.schedule import Schedule
from ..exceptions import InvalidInstanceError
from .executor import execute_profile_edf

__all__ = [
    "bkp_speed_at",
    "bkp_speed_profile",
    "bkp_speed_profile_reference",
    "bkp_schedule",
]


def bkp_speed_at(instance: Instance, t: float) -> float:
    """The BKP speed at time ``t`` (exact evaluation of the max over ``t'``).

    The maximum over ``t'`` only needs to consider deadlines of jobs released
    by ``t`` (the work function is piecewise constant in ``t'`` and changes
    only at deadlines), which keeps the evaluation exact and cheap.
    """
    releases = instance.releases
    deadlines = instance.deadlines
    works = instance.works
    arrived = releases <= t + 1e-12
    if not np.any(arrived):
        return 0.0
    e = math.e
    best = 0.0
    for t_prime in sorted(set(deadlines[arrived])):
        if t_prime <= t:
            continue
        t1 = e * t - (e - 1.0) * t_prime
        mask = arrived & (releases >= t1 - 1e-12) & (deadlines <= t_prime + 1e-12)
        work = float(np.sum(works[mask]))
        if work <= 0.0:
            continue
        best = max(best, e * work / (t_prime - t))
    return best


def bkp_speed_profile(
    instance: Instance,
    steps_per_interval: int = 64,
    *,
    grid: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> list[tuple[float, float, float]]:
    """Discretised BKP speed profile between consecutive event points.

    Vectorised: the window work function ``w(t, t1, t2)`` is evaluated for a
    whole interval's slice grid at once as differences of the cumulative
    release x deadline work grid (:func:`repro.core.kernels.interval_work_grid`),
    instead of one :func:`bkp_speed_at` scan per slice.  The candidate set,
    tolerances and tie handling replicate the scalar evaluation exactly;
    the equivalence suite pins this function to
    :func:`bkp_speed_profile_reference` at 1e-9.

    ``grid`` optionally supplies a precomputed ``(grid_r, grid_d,
    member_work)`` triple.  Duplicate-keeping axes — one row of
    :func:`repro.core.kernels.interval_work_grid_batched` — are accepted:
    searchsorted reads at any duplicate index equal the unique-grid entry
    bitwise, so the profile is unchanged.  This is how the batched solver
    tier amortises the grid construction over a whole chunk.
    """
    if not instance.has_deadlines():
        raise InvalidInstanceError("BKP requires deadlines on every job")
    if steps_per_interval < 1:
        raise InvalidInstanceError("steps_per_interval must be >= 1")
    releases = instance.releases  # sorted (Instance orders jobs by release)
    deadlines = instance.deadlines
    works = instance.works
    e = math.e
    if grid is None:
        grid_r, grid_d, member = interval_work_grid(releases, deadlines, works)
    else:
        grid_r, grid_d, member = grid
    events = np.unique(np.concatenate([releases, deadlines]))

    segments: list[tuple[float, float, float]] = []
    for start, end in zip(events, events[1:]):
        grid = np.linspace(float(start), float(end), steps_per_interval + 1)
        ts = grid[:-1]
        speeds = np.zeros(len(ts))
        # the arrived set is constant per slice grid except in pathological
        # sub-1e-12 intervals, so group the slice times by arrived count
        counts = np.searchsorted(releases, ts + 1e-12, side="right")
        for cnt in np.unique(counts):
            sel = counts == cnt
            if cnt == 0:
                continue
            t_sel = ts[sel]
            # candidate t' values: distinct deadlines of arrived jobs
            candidates = np.unique(deadlines[:cnt])
            # w(t, t1, t') via the cumulative grid: release >= t1 - 1e-12
            # minus release > t + 1e-12, both with deadline <= t' + 1e-12
            b_idx = np.searchsorted(grid_d, candidates + 1e-12, side="right") - 1
            t1 = e * t_sel[np.newaxis, :] - (e - 1.0) * candidates[:, np.newaxis]
            a1 = np.searchsorted(grid_r, t1 - 1e-12, side="left")
            a2 = np.searchsorted(grid_r, t_sel + 1e-12, side="right")
            work = (
                member[a1, b_idx[:, np.newaxis]]
                - member[a2[np.newaxis, :], b_idx[:, np.newaxis]]
            )
            span = candidates[:, np.newaxis] - t_sel[np.newaxis, :]
            valid = (span > 0.0) & (work > 0.0)
            value = np.where(valid, e * work / np.where(valid, span, 1.0), 0.0)
            speeds[sel] = np.max(value, axis=0, initial=0.0)
        for a, b, s in zip(grid, grid[1:], speeds):
            segments.append((float(a), float(b), float(s)))
    return segments


def bkp_speed_profile_reference(
    instance: Instance, steps_per_interval: int = 64
) -> list[tuple[float, float, float]]:
    """Scalar reference profile: one :func:`bkp_speed_at` call per slice."""
    if not instance.has_deadlines():
        raise InvalidInstanceError("BKP requires deadlines on every job")
    if steps_per_interval < 1:
        raise InvalidInstanceError("steps_per_interval must be >= 1")
    events = np.unique(np.concatenate([instance.releases, instance.deadlines]))
    segments: list[tuple[float, float, float]] = []
    for start, end in zip(events, events[1:]):
        grid = np.linspace(float(start), float(end), steps_per_interval + 1)
        for a, b in zip(grid, grid[1:]):
            speed = bkp_speed_at(instance, float(a))
            segments.append((float(a), float(b), speed))
    return segments


def bkp_schedule(
    instance: Instance,
    power: PowerFunction,
    steps_per_interval: int = 64,
    work_tolerance: float = 1e-3,
    *,
    grid: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> Schedule:
    """Execute the (discretised) BKP policy and return the resulting schedule."""
    profile = bkp_speed_profile(
        instance, steps_per_interval=steps_per_interval, grid=grid
    )
    return execute_profile_edf(instance, power, profile, work_tolerance=work_tolerance)

"""Average Rate (AVR) online speed scaling (Yao, Demers, Shenker).

AVR is one of the two online heuristics proposed in the original YDS paper
and analysed by Bansal et al.; the paper under reproduction cites both in its
related-work section.  The policy: every active job ``i`` (released, deadline
not yet passed) contributes its *average rate* ``w_i / (d_i - r_i)``; the
processor runs at the sum of the active rates and processes pending work in
EDF order.

AVR is ``2**(alpha-1) * alpha**alpha``-competitive in energy against the
offline optimum (YDS); the benchmark ``bench_online_competitive`` measures the
empirical ratio on synthetic workloads, which is far smaller than the worst
case.

The processor speed changes only at releases and deadlines, so the profile is
exactly piecewise constant -- no discretisation is involved.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.job import Instance
from ..core.kernels import (
    pack_instances,
    stepwise_rate_profile,
    stepwise_rate_profile_batched,
)
from ..core.power import PowerFunction
from ..core.schedule import Schedule
from ..exceptions import InvalidInstanceError
from .executor import execute_profile_edf

__all__ = [
    "avr_speed_profile",
    "avr_speed_profiles_batch",
    "avr_speed_profile_reference",
    "avr_schedule",
]


def avr_speed_profile(instance: Instance) -> list[tuple[float, float, float]]:
    """The AVR processor speed as a piecewise-constant profile.

    Returns ``(start, end, speed)`` segments between consecutive event points
    (releases and deadlines).  Segments of zero speed are included so the
    profile covers the whole horizon.

    Built on the :func:`repro.core.kernels.stepwise_rate_profile` event-grid
    kernel (scatter-add of rate deltas + one cumulative sum) instead of one
    activity scan per segment; pinned to
    :func:`avr_speed_profile_reference` at 1e-9 by the equivalence suite.
    """
    if not instance.has_deadlines():
        raise InvalidInstanceError("AVR requires deadlines on every job")
    releases = instance.releases
    deadlines = instance.deadlines
    rates = instance.works / (deadlines - releases)
    events, levels = stepwise_rate_profile(releases, deadlines, rates)
    return [
        (float(a), float(b), float(s))
        for a, b, s in zip(events, events[1:], levels)
    ]


def avr_speed_profiles_batch(
    instances: Sequence[Instance],
) -> list[list[tuple[float, float, float]]]:
    """AVR profiles for a whole chunk of instances via one batched sweep.

    Packs the chunk and runs
    :func:`repro.core.kernels.stepwise_rate_profile_batched` once; each row's
    duplicate/padding segments (zero length or non-finite end) are dropped,
    which recovers exactly the per-instance
    :func:`avr_speed_profile` list — bitwise, since the dup-grid scatter and
    cumulative sum only interleave exact ``+ 0.0`` terms.  Pinned by
    ``tests/test_batched_kernels.py``.
    """
    for instance in instances:
        if not instance.has_deadlines():
            raise InvalidInstanceError("AVR requires deadlines on every job")
    batch = pack_instances(instances)
    with np.errstate(invalid="ignore"):
        rates = np.where(
            batch.mask,
            batch.works / (batch.deadlines - batch.releases),
            0.0,
        )
    events, levels = stepwise_rate_profile_batched(
        batch.releases, batch.deadlines, rates, batch.mask
    )
    profiles: list[list[tuple[float, float, float]]] = []
    for b in range(batch.batch_size):
        row_events = events[b]
        row_levels = levels[b]
        profiles.append(
            [
                (float(a), float(c), float(s))
                for a, c, s in zip(row_events, row_events[1:], row_levels)
                if c > a and math.isfinite(c)
            ]
        )
    return profiles


def avr_speed_profile_reference(
    instance: Instance,
) -> list[tuple[float, float, float]]:
    """Scalar reference for :func:`avr_speed_profile` (one scan per segment)."""
    if not instance.has_deadlines():
        raise InvalidInstanceError("AVR requires deadlines on every job")
    releases = instance.releases
    deadlines = instance.deadlines
    works = instance.works
    rates = works / (deadlines - releases)
    events = np.unique(np.concatenate([releases, deadlines]))
    segments: list[tuple[float, float, float]] = []
    for start, end in zip(events, events[1:]):
        mid = 0.5 * (start + end)
        active = (releases <= mid) & (mid < deadlines)
        speed = float(np.sum(rates[active]))
        segments.append((float(start), float(end), speed))
    return segments


def avr_schedule(instance: Instance, power: PowerFunction) -> Schedule:
    """Execute AVR and return the resulting schedule (always meets deadlines).

    Feasibility holds because, integrated over any job's window, the profile
    provides at least that job's average rate, and EDF never wastes speed on
    jobs that could be postponed past another job's deadline.
    """
    profile = avr_speed_profile(instance)
    return execute_profile_edf(instance, power, profile)

"""Deadline-based speed scaling: the YDS substrate and the online algorithms.

The paper's primary results are offline; its related-work and future-work
sections lean on the deadline-feasibility model of Yao, Demers and Shenker.
This subpackage provides:

* :mod:`~repro.online.yds` -- the optimal offline algorithm (used as a
  baseline/oracle for the makespan server problem and as OA's planner),
* :mod:`~repro.online.avr` -- Average Rate (vectorised event-grid profile),
* :mod:`~repro.online.oa` -- Optimal Available (scalar reference plus the
  incremental prefix-density engine :func:`~repro.online.oa.oa_schedule_incremental`),
* :mod:`~repro.online.bkp` -- the Bansal-Kimbrel-Pruhs algorithm
  (vectorised profile on the cumulative work grid),
* :mod:`~repro.online.executor` -- EDF execution of speed profiles (heap
  hot loop plus the retained scalar reference),
* :mod:`~repro.online.compete` -- the competitive-ratio evaluation pipeline
  (grid sweeps through :func:`repro.batch.solve_many`, ``repro compete``).

The online algorithms are *extension* experiments: the paper lists online
power-aware scheduling as future work and cites these algorithms; the
benchmark ``bench_online_competitive`` measures their empirical energy ratios
against YDS and writes ``BENCH_online.json``.
"""

from .avr import avr_schedule, avr_speed_profile, avr_speed_profile_reference
from .bkp import (
    bkp_schedule,
    bkp_speed_at,
    bkp_speed_profile,
    bkp_speed_profile_reference,
)
from .compete import ALGORITHMS, FAMILIES, RATIO_BOUNDS, competitive_sweep
from .executor import execute_profile_edf, execute_profile_edf_reference
from .oa import oa_schedule, oa_schedule_incremental
from .yds import (
    YDSResult,
    edf_schedule_at_speeds,
    yds_schedule,
    yds_speeds,
    yds_speeds_reference,
)

__all__ = [
    "avr_schedule",
    "avr_speed_profile",
    "avr_speed_profile_reference",
    "bkp_schedule",
    "bkp_speed_at",
    "bkp_speed_profile",
    "bkp_speed_profile_reference",
    "ALGORITHMS",
    "FAMILIES",
    "RATIO_BOUNDS",
    "competitive_sweep",
    "execute_profile_edf",
    "execute_profile_edf_reference",
    "oa_schedule",
    "oa_schedule_incremental",
    "YDSResult",
    "edf_schedule_at_speeds",
    "yds_schedule",
    "yds_speeds",
    "yds_speeds_reference",
]

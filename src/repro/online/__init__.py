"""Deadline-based speed scaling: the YDS substrate and the online algorithms.

The paper's primary results are offline; its related-work and future-work
sections lean on the deadline-feasibility model of Yao, Demers and Shenker.
This subpackage provides:

* :mod:`~repro.online.yds` -- the optimal offline algorithm (used as a
  baseline/oracle for the makespan server problem and as OA's planner),
* :mod:`~repro.online.avr` -- Average Rate,
* :mod:`~repro.online.oa` -- Optimal Available,
* :mod:`~repro.online.bkp` -- the Bansal-Kimbrel-Pruhs algorithm,
* :mod:`~repro.online.executor` -- EDF execution of speed profiles.

The online algorithms are *extension* experiments: the paper lists online
power-aware scheduling as future work and cites these algorithms; the
benchmark ``bench_online_competitive`` measures their empirical energy ratios
against YDS.
"""

from .avr import avr_schedule, avr_speed_profile
from .bkp import bkp_schedule, bkp_speed_at, bkp_speed_profile
from .executor import execute_profile_edf
from .oa import oa_schedule
from .yds import (
    YDSResult,
    edf_schedule_at_speeds,
    yds_schedule,
    yds_speeds,
    yds_speeds_reference,
)

__all__ = [
    "avr_schedule",
    "avr_speed_profile",
    "bkp_schedule",
    "bkp_speed_at",
    "bkp_speed_profile",
    "execute_profile_edf",
    "oa_schedule",
    "YDSResult",
    "edf_schedule_at_speeds",
    "yds_schedule",
    "yds_speeds",
    "yds_speeds_reference",
]

"""EDF execution of a processor speed profile.

The online algorithms AVR and BKP decide the *processor speed* as a function
of time and process pending jobs in earliest-deadline-first order at that
speed.  This module turns a piecewise-constant speed profile plus an instance
into an explicit :class:`~repro.core.schedule.Schedule`, by an event-driven
simulation whose events are segment boundaries, job releases and job
completions.

Feasibility is not assumed: if the profile does not provide enough speed the
simulation simply produces a schedule that misses deadlines (or leaves work
unfinished, which raises), and the caller/test decides how to treat that.
This keeps the executor honest as an *observer* of whatever policy produced
the profile.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

import numpy as np

from ..core.job import Instance
from ..core.power import PowerFunction
from ..core.schedule import Piece, Schedule
from ..exceptions import InfeasibleError, InvalidInstanceError

__all__ = ["execute_profile_edf", "execute_profile_edf_reference"]


def execute_profile_edf(
    instance: Instance,
    power: PowerFunction,
    segments: Sequence[tuple[float, float, float]],
    work_tolerance: float = 1e-6,
) -> Schedule:
    """Run EDF on a piecewise-constant processor speed profile.

    Parameters
    ----------
    segments:
        ``(start, end, speed)`` triples, non-overlapping, in any order.  Speed
        zero segments (or gaps between segments) are idle time.
    work_tolerance:
        Relative tolerance on leftover work: if any job has more than this
        fraction of its work unfinished when the profile ends, the profile was
        infeasible and :class:`InfeasibleError` is raised.

    This is the array/heap hot loop: released pending jobs live in a
    ``(deadline, index)`` min-heap and each inner step costs O(log n) instead
    of the reference implementation's three full-array scans, which matters
    for the finely discretised BKP profiles (tens of thousands of segments).
    Pinned to :func:`execute_profile_edf_reference` by the equivalence suite.
    """
    if not instance.has_deadlines():
        raise InvalidInstanceError("profile execution requires deadlines (EDF ordering)")
    segs = sorted(((float(a), float(b), float(s)) for a, b, s in segments), key=lambda x: x[0])
    starts_arr = np.array([s[0] for s in segs])
    ends_arr = np.array([s[1] for s in segs])
    if np.any(starts_arr[1:] < ends_arr[:-1] - 1e-12):
        raise InvalidInstanceError("speed profile segments overlap")

    remaining = instance.works.astype(float).copy()
    releases = instance.releases  # sorted: Instance orders jobs by release
    deadlines = instance.deadlines
    n = instance.n_jobs
    pieces: list[Piece] = []
    # (deadline, index) heap of released jobs; lazily cleaned of finished ones
    pending: list[tuple[float, int]] = []
    next_job = 0  # jobs[next_job:] not yet pushed (release order)

    for seg_start, seg_end, speed in segs:
        t = seg_start
        while next_job < n and releases[next_job] <= t + 1e-12:
            heapq.heappush(pending, (float(deadlines[next_job]), next_job))
            next_job += 1
        guard = 0
        while t < seg_end - 1e-15:
            guard += 1
            if guard > 4 * n + 8:  # pragma: no cover - defensive
                raise InfeasibleError("profile execution did not advance")
            while pending and remaining[pending[0][1]] <= 1e-12:
                heapq.heappop(pending)
            if not pending:
                if next_job >= n:
                    break  # everything released is done; rest of profile idles
                t = min(max(float(releases[next_job]), t), seg_end)
                while next_job < n and releases[next_job] <= t + 1e-12:
                    heapq.heappush(pending, (float(deadlines[next_job]), next_job))
                    next_job += 1
                continue
            if speed <= 0.0:
                break
            job = pending[0][1]
            finish = t + remaining[job] / speed
            next_release = float(releases[next_job]) if next_job < n else math.inf
            end = min(finish, next_release, seg_end)
            if end > t + 1e-15:
                pieces.append(Piece(job=job, processor=0, start=t, end=end, speed=speed))
                remaining[job] -= speed * (end - t)
            t = end
            while next_job < n and releases[next_job] <= t + 1e-12:
                heapq.heappush(pending, (float(deadlines[next_job]), next_job))
                next_job += 1

    leftovers = remaining / instance.works
    if np.any(leftovers > work_tolerance):
        bad = [int(i) for i in np.where(leftovers > work_tolerance)[0]]
        raise InfeasibleError(
            f"speed profile finished with unprocessed work on jobs {bad}; "
            "the profile does not complete the instance"
        )
    return Schedule(instance, power, _conserve_work(instance, pieces))


def execute_profile_edf_reference(
    instance: Instance,
    power: PowerFunction,
    segments: Sequence[tuple[float, float, float]],
    work_tolerance: float = 1e-6,
) -> Schedule:
    """Scalar reference for :func:`execute_profile_edf`.

    Re-scans the full remaining/release arrays at every step exactly as the
    seed implementation did; kept as the correctness anchor the heap-based
    hot loop is pinned against.
    """
    if not instance.has_deadlines():
        raise InvalidInstanceError("profile execution requires deadlines (EDF ordering)")
    segs = sorted(((float(a), float(b), float(s)) for a, b, s in segments), key=lambda x: x[0])
    for (a1, b1, _), (a2, _, _) in zip(segs, segs[1:]):
        if a2 < b1 - 1e-12:
            raise InvalidInstanceError("speed profile segments overlap")

    remaining = instance.works.astype(float).copy()
    releases = instance.releases
    deadlines = instance.deadlines
    pieces: list[Piece] = []

    for seg_start, seg_end, speed in segs:
        t = seg_start
        guard = 0
        while t < seg_end - 1e-15:
            guard += 1
            if guard > 4 * instance.n_jobs + 8:  # pragma: no cover - defensive
                raise InfeasibleError("profile execution did not advance")
            unfinished = np.where(remaining > 1e-12)[0]
            if len(unfinished) == 0:
                break
            available = unfinished[releases[unfinished] <= t + 1e-12]
            if len(available) == 0:
                future = releases[unfinished]
                nxt = float(future.min())
                t = min(max(nxt, t), seg_end)
                continue
            if speed <= 0.0:
                break
            job = int(available[np.argmin(deadlines[available])])
            finish = t + remaining[job] / speed
            future = unfinished[releases[unfinished] > t + 1e-12]
            next_release = float(releases[future].min()) if len(future) else math.inf
            end = min(finish, next_release, seg_end)
            if end > t + 1e-15:
                pieces.append(Piece(job=job, processor=0, start=t, end=end, speed=speed))
                remaining[job] -= speed * (end - t)
            t = end

    leftovers = remaining / instance.works
    if np.any(leftovers > work_tolerance):
        bad = [int(i) for i in np.where(leftovers > work_tolerance)[0]]
        raise InfeasibleError(
            f"speed profile finished with unprocessed work on jobs {bad}; "
            "the profile does not complete the instance"
        )
    # absorb sub-tolerance leftovers by stretching each job's final piece is
    # unnecessary -- Schedule.validate uses a work tolerance -- but rescale the
    # recorded piece speeds so that work is conserved exactly for accounting.
    return Schedule(instance, power, _conserve_work(instance, pieces))


def _conserve_work(instance: Instance, pieces: list[Piece]) -> list[Piece]:
    """Rescale each job's piece speeds so the executed work matches exactly.

    Discretisation can leave a tiny work deficit (well below the tolerance);
    scaling the speeds of the job's pieces by the common factor removes it
    without changing any start or end time.
    """
    executed = np.zeros(instance.n_jobs)
    for piece in pieces:
        executed[piece.job] += piece.work
    factors = np.ones(instance.n_jobs)
    nonzero = executed > 0
    factors[nonzero] = instance.works[nonzero] / executed[nonzero]
    adjusted = [
        Piece(
            job=p.job,
            processor=p.processor,
            start=p.start,
            end=p.end,
            speed=p.speed * float(factors[p.job]),
        )
        for p in pieces
    ]
    return adjusted

"""Pluggable persistence backends for :class:`~repro.cache.ResultCache`.

ROADMAP item 5: the cache's identity is the content-addressed key, not
the medium it is stored on.  This package separates the two — the cache
keeps its LRU front, counters and degradation policy, and delegates
persistence to a :class:`CacheStore`:

* :class:`MemoryStore` — unbounded in-process dict; several caches in one
  process can share it.
* :class:`DiskJSONStore` — the original sharded-JSON directory, byte-for-
  byte identical to what ``ResultCache(directory=...)`` always wrote.
* :class:`SqliteStore` — one WAL-mode SQLite file, safe for concurrent
  writers across processes; the first backend N serve processes can
  genuinely share.

The same key doubles as the consistent-hash key for a future remote
store, which would be the fourth implementation of this contract.
Select a backend by name with :func:`open_store` (what ``repro serve
--cache-backend`` calls) or construct one directly and pass it as
``ResultCache(store=...)``.
"""

from __future__ import annotations

from pathlib import Path

from .base import ENTRY_KIND, CacheStore, validate_entry
from .disk_json import DiskJSONStore
from .memory import MemoryStore
from .sqlite import SqliteStore

__all__ = [
    "ENTRY_KIND",
    "STORE_BACKENDS",
    "CacheStore",
    "DiskJSONStore",
    "MemoryStore",
    "SqliteStore",
    "open_store",
    "validate_entry",
]

#: Backend names accepted by :func:`open_store` (and the serve CLI).
STORE_BACKENDS = ("memory", "disk-json", "sqlite")

#: Suffixes under which a ``directory`` argument is already a database file.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(
    backend: str,
    directory: str | Path | None = None,
    codec: str = "json",
) -> CacheStore:
    """Construct a :class:`CacheStore` by backend name.

    ``directory`` is required for the persistent backends.  For
    ``"sqlite"`` it may point at the database file itself (any of
    ``.sqlite`` / ``.sqlite3`` / ``.db``) or at a directory, in which
    case the store lives at ``<directory>/cache.sqlite3`` — so one
    ``--cache-dir`` flag serves every backend.  ``codec`` selects the
    per-row envelope encoding of the sqlite backend (ignored by the
    others, whose formats are pinned).
    """
    if backend == "memory":
        return MemoryStore()
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {backend!r}; expected one of {sorted(STORE_BACKENDS)}"
        )
    if directory is None:
        raise ValueError(f"cache backend {backend!r} needs a directory")
    if backend == "disk-json":
        return DiskJSONStore(directory)
    path = Path(directory)
    if path.suffix not in _SQLITE_SUFFIXES:
        path = path / "cache.sqlite3"
    return SqliteStore(path, codec=codec)

"""SQLite-backed :class:`CacheStore` (WAL mode) — the shared-tier backend.

One database file replaces the sharded-JSON directory when several serve
processes on one box must share a cache tier: WAL journaling gives
single-writer/many-reader concurrency without readers blocking writers,
and the content-address key is the primary key, so concurrent same-key
writes from different processes are idempotent upserts rather than
racing renames.  ``busy_timeout`` absorbs writer contention instead of
surfacing ``database is locked`` errors.

Result envelopes are stored as per-row blobs in either the JSON or the
binary envelope codec (:mod:`repro.io`); the codec is recorded per row,
so a store opened with ``codec="binary"`` still reads rows written as
JSON and vice versa.  A corrupted or foreign database file degrades to
misses on read and :class:`OSError` on write — never a crash — which
plugs straight into :class:`~repro.cache.ResultCache`'s memory-only
degradation and re-probe machinery.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterator

from .base import ENTRY_KIND, CacheStore, validate_entry

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    solver TEXT,
    codec TEXT NOT NULL,
    envelope BLOB NOT NULL
) WITHOUT ROWID
"""


class SqliteStore(CacheStore):
    """Cache entries in one SQLite database (safe across processes)."""

    backend = "sqlite"

    def __init__(
        self,
        path: str | Path,
        codec: str = "json",
        busy_timeout: float = 30.0,
    ) -> None:
        from ..io import ENVELOPE_CODECS

        if codec not in ENVELOPE_CODECS:
            raise ValueError(
                f"unknown envelope codec {codec!r}; expected one of {sorted(ENVELOPE_CODECS)}"
            )
        self.path = Path(path)
        self.codec = codec
        self.busy_timeout = float(busy_timeout)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # one connection per thread (sqlite3 connections are not safe to
        # share across threads); all are tracked so close() can drop them
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: list[sqlite3.Connection] = []
        self._closed = False

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if self._closed:
            raise sqlite3.ProgrammingError("store is closed")
        conn = sqlite3.connect(str(self.path), timeout=self.busy_timeout)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
            conn.execute(_SCHEMA)
            conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        self._local.conn = conn
        with self._conns_lock:
            self._conns.append(conn)
        return conn

    # ------------------------------------------------------------------
    # envelope blobs
    # ------------------------------------------------------------------
    def _encode(self, envelope: dict[str, Any]) -> bytes:
        if self.codec == "binary":
            from ..io import binary_envelope_encode

            return binary_envelope_encode(envelope)
        return json.dumps(envelope, sort_keys=True).encode("utf-8")

    @staticmethod
    def _decode(blob: bytes, codec: str) -> Any:
        if codec == "binary":
            from ..io import binary_envelope_decode

            return binary_envelope_decode(blob)
        return json.loads(bytes(blob).decode("utf-8"))

    # ------------------------------------------------------------------
    # CacheStore contract
    # ------------------------------------------------------------------
    def read(self, key: str) -> tuple[dict[str, Any] | None, bool]:
        try:
            row = self._conn().execute(
                "SELECT solver, codec, envelope FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            return None, True
        if row is None:
            return None, False
        solver, codec, blob = row
        try:
            envelope = self._decode(blob, codec)
        except Exception:
            return None, True
        entry = validate_entry(
            {"kind": ENTRY_KIND, "key": key, "solver": solver, "result": envelope},
            key,
        )
        return (entry, False) if entry is not None else (None, True)

    def write(self, key: str, entry: dict[str, Any]) -> None:
        try:
            blob = self._encode(entry["result"])
            conn = self._conn()
            conn.execute(
                "INSERT INTO entries (key, solver, codec, envelope) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET "
                "solver = excluded.solver, codec = excluded.codec, "
                "envelope = excluded.envelope",
                (key, entry.get("solver"), self.codec, blob),
            )
            conn.commit()
        except sqlite3.Error as exc:
            raise OSError(f"sqlite cache store at {self.path}: {exc}") from exc

    def purge(self, solver: str | None = None) -> set[str]:
        try:
            conn = self._conn()
            if solver is None:
                rows = conn.execute("SELECT key FROM entries").fetchall()
                conn.execute("DELETE FROM entries")
            else:
                rows = conn.execute(
                    "SELECT key FROM entries WHERE solver = ?", (solver,)
                ).fetchall()
                conn.execute("DELETE FROM entries WHERE solver = ?", (solver,))
            conn.commit()
        except sqlite3.Error:
            return set()
        return {key for (key,) in rows}

    def keys(self) -> Iterator[str]:
        try:
            rows = self._conn().execute("SELECT key FROM entries ORDER BY key").fetchall()
        except sqlite3.Error:
            return iter(())
        return iter([key for (key,) in rows])

    def __len__(self) -> int:
        try:
            (count,) = self._conn().execute("SELECT COUNT(*) FROM entries").fetchone()
        except sqlite3.Error:
            return 0
        return int(count)

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
            self._closed = True
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        self._local = threading.local()

    def describe(self) -> str:
        return f"sqlite:{self.path}"

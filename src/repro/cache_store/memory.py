"""In-process dict-backed :class:`CacheStore`.

The simplest shared tier: several :class:`~repro.cache.ResultCache`
instances in one process (e.g. per-tenant caches over one pool, or
tests) can hand the same ``MemoryStore`` around and see each other's
puts.  Unlike the cache's own LRU front it is unbounded and survives
cache-level :meth:`~repro.cache.ResultCache.invalidate` only for other
solvers' entries — it is a *store*, not a second front.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from .base import CacheStore, validate_entry

__all__ = ["MemoryStore"]


class MemoryStore(CacheStore):
    """Unbounded thread-safe dict store (single-process only)."""

    backend = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}

    def read(self, key: str) -> tuple[dict[str, Any] | None, bool]:
        with self._lock:
            data = self._entries.get(key)
        if data is None:
            return None, False
        entry = validate_entry(data, key)
        return (entry, False) if entry is not None else (None, True)

    def write(self, key: str, entry: dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = entry

    def purge(self, solver: str | None = None) -> set[str]:
        with self._lock:
            if solver is None:
                dropped = set(self._entries)
                self._entries.clear()
                return dropped
            dropped = {
                key
                for key, entry in self._entries.items()
                if entry.get("solver") == solver
            }
            for key in dropped:
                del self._entries[key]
            return dropped

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> str:
        return f"memory:{len(self)} entries"

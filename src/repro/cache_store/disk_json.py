"""Sharded-JSON directory :class:`CacheStore` — the original disk tier.

This is the exact on-disk format :class:`~repro.cache.ResultCache` has
always written (golden-pinned): entries live in 256 shard directories
(the first two hex digits of the key) as ``<key>.json`` files containing
``json.dumps(entry, sort_keys=True)``, written atomically via a hidden
temp file + :func:`os.replace`, so a killed process never leaves a torn
entry behind.  Safe to share between runs and processes (the content
address makes concurrent same-key writes idempotent).

Temp-file names carry the pid, the thread id and a process-wide
monotonic counter: two threads (or two processes) writing the same key
at once must never share a temp path, or one writer's ``os.replace`` /
cleanup ``unlink`` races the other's and a healthy cache degrades to
memory-only on a spurious :class:`OSError`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path
from typing import Any, Iterator

from .base import CacheStore, validate_entry

__all__ = ["DiskJSONStore"]

#: Process-wide monotonic suffix: makes temp paths unique even within one
#: thread (e.g. a retry racing its own interrupted predecessor's cleanup).
_TMP_COUNTER = itertools.count()


class DiskJSONStore(CacheStore):
    """One JSON file per entry under ``directory/key[:2]/<key>.json``."""

    backend = "disk-json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _temp_path(self, path: Path) -> Path:
        """A collision-free sibling temp path for one atomic write."""
        suffix = f"{os.getpid()}.{threading.get_ident()}.{next(_TMP_COUNTER)}"
        return path.with_name(f".{path.name}.{suffix}.tmp")

    def read(self, key: str) -> tuple[dict[str, Any] | None, bool]:
        path = self._entry_path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None, False
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None, True
        entry = validate_entry(data, key)
        return (entry, False) if entry is not None else (None, True)

    def write(self, key: str, entry: dict[str, Any]) -> None:
        path = self._entry_path(key)
        tmp = self._temp_path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:  # never leave a torn temp file behind
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - racing cleanup
                pass
            raise

    def _entry_files(self) -> Iterator[Path]:
        for shard in sorted(self.directory.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.glob("*.json"))

    def purge(self, solver: str | None = None) -> set[str]:
        dropped: set[str] = set()
        for path in list(self._entry_files()):
            if solver is not None:
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    data = None
                if data is not None and data.get("solver") != solver:
                    continue
            try:
                path.unlink()
                dropped.add(path.stem)
            except OSError:  # pragma: no cover - racing deleter
                pass
        return dropped

    def keys(self) -> Iterator[str]:
        for path in self._entry_files():
            yield path.stem

    def describe(self) -> str:
        return str(self.directory)

"""The ``CacheStore`` contract: what a shared cache tier must provide.

:class:`~repro.cache.ResultCache` keeps its in-process LRU front and its
counters; everything below that — where entries persist, how they are
encoded, which processes can see them — is a :class:`CacheStore`.  The
contract is deliberately tiny (read / write / purge over opaque entry
dicts keyed by the content address) so that a remote tier can implement
it later with the same key acting as a consistent-hash key.

Entries are the exact dicts :class:`~repro.cache.ResultCache` builds::

    {"kind": "cache-entry", "key": <hex key>, "solver": <name>,
     "result": <repro.io.result_to_dict envelope>}

Stores validate that shape on read and report anything else as *corrupt*
(a miss, never a crash).  Writes raise :class:`OSError` on store failure;
the cache's degradation machinery (one-time warning, bounded re-probe)
lives above the store, so every backend inherits it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator

__all__ = ["ENTRY_KIND", "CacheStore", "validate_entry"]

#: The ``kind`` tag of every persisted cache entry, across all backends.
ENTRY_KIND = "cache-entry"


def validate_entry(data: Any, key: str) -> dict[str, Any] | None:
    """The entry dict if ``data`` is a well-formed entry for ``key``, else ``None``."""
    if (
        not isinstance(data, dict)
        or data.get("kind") != ENTRY_KIND
        or data.get("key") != key
        or not isinstance(data.get("result"), dict)
    ):
        return None
    return data


class CacheStore(ABC):
    """Abstract persistent tier behind :class:`~repro.cache.ResultCache`.

    Implementations must be safe to call from multiple threads; whether
    multiple *processes* can share one store is a per-backend property
    (:class:`~repro.cache_store.SqliteStore` and
    :class:`~repro.cache_store.DiskJSONStore` can,
    :class:`~repro.cache_store.MemoryStore` cannot).
    """

    #: Stable backend name, as accepted by :func:`repro.cache_store.open_store`.
    backend: str = "abstract"

    @abstractmethod
    def read(self, key: str) -> tuple[dict[str, Any] | None, bool]:
        """One lookup: ``(entry, corrupt)``.

        ``(entry, False)`` on a well-formed hit, ``(None, False)`` on a
        clean miss, ``(None, True)`` when something was there but could
        not be decoded or failed validation.  Never raises for store
        reasons.
        """

    @abstractmethod
    def write(self, key: str, entry: dict[str, Any]) -> None:
        """Persist ``entry`` under ``key`` (last writer wins).

        Raises :class:`OSError` when the store cannot accept the write —
        the caller owns degradation policy.
        """

    @abstractmethod
    def purge(self, solver: str | None = None) -> set[str]:
        """Delete entries (all, or one solver's); returns the deleted keys.

        Best-effort: entries that vanish concurrently are skipped, and
        unreadable entries are deleted (they could belong to anyone).
        """

    def keys(self) -> Iterator[str]:
        """Iterate the keys currently present (a snapshot, not a lock)."""
        return iter(())

    def close(self) -> None:
        """Release backend resources; further use is undefined."""

    def describe(self) -> str:
        """One-line human description (used by ``ResultCache.__repr__``)."""
        return self.backend

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"

"""Content-addressed result cache for the solver matrix.

The serving scenario repeats itself: sweeps re-solve the same instances for
several algorithms, long-running services see the same request envelope twice,
and a killed batch re-submits work it already finished.  All of those are the
same question — *has this exact solve been done before?* — which this module
answers with content addressing:

* :func:`request_cache_key` hashes the canonical
  :func:`repro.io.request_to_dict` envelope with SHA-256.  Instance arrays
  (releases, works, deadlines, weights) enter as their raw float64 bytes, so
  keying is exact, not repr-dependent; the instance *name* is deliberately
  excluded (two identically-shaped instances are the same content).  The key
  also covers the resolved solver name, its :func:`capability_fingerprint`,
  the budget, the power parameters, the processor count and the options — a
  change to any of them (including re-registering the solver with different
  capability metadata) changes the key, so stale entries are never returned.
* :class:`ResultCache` stores :class:`~repro.api.types.SolveResult` envelopes
  behind that key: an in-process LRU front (bounded entry count) over an
  optional persistent :class:`~repro.cache_store.CacheStore` backend —
  sharded JSON files (the original format), a WAL-mode SQLite database
  shared by concurrent processes, or a plain dict (see
  :mod:`repro.cache_store`).  Corrupted or foreign persisted entries are
  treated as misses, never crashes.

Because entries round-trip through :func:`repro.io.result_to_dict` /
:func:`~repro.io.result_from_dict`, a cache hit is byte-identical to a fresh
solve (floats survive JSON exactly, speeds come back as the same float64
bytes) — and it remains certificate-checkable as data via
:func:`repro.api.verify`.

Consumers: the batch engine (:func:`repro.batch.solve_stream` /
``repro batch --cache-dir``), the competitive-ratio sweep
(:func:`repro.online.compete.competitive_sweep`) and the request loop of
``repro serve`` (:mod:`repro.service`).  Measured by
``benchmarks/bench_cache_throughput.py`` (writes ``BENCH_cache.json``).
"""

from __future__ import annotations

import errno
import hashlib
import json
import threading
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from .cache_store import ENTRY_KIND, CacheStore, DiskJSONStore
from .exceptions import ReproError
from .faults import CACHE_WRITE, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from .api.registry import SolverRegistry
    from .api.types import SolveRequest, SolveResult, SolverCapabilities

__all__ = [
    "CacheStats",
    "ResultCache",
    "capability_fingerprint",
    "instance_digest",
    "request_cache_key",
]

#: Bump when the key derivation changes incompatibly; part of every key, so
#: old on-disk stores simply miss instead of returning wrongly-keyed entries.
_KEY_VERSION = 1

_ENTRY_KIND = ENTRY_KIND


def _canonical_json(payload: Any) -> bytes:
    """The one canonical JSON encoding every hash in this module uses."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@lru_cache(maxsize=64)
def capability_fingerprint(capabilities: "SolverCapabilities") -> str:
    """SHA-256 over a solver's full capability metadata.

    Part of every cache key: re-registering a solver with different
    capabilities (new certificate kinds, changed preconditions, a different
    matrix cell) changes the fingerprint and therefore invalidates every
    entry produced under the old registration.  Memoised — capability
    objects are tiny frozen dataclasses the registry holds for the life of
    the process.
    """
    from .io import capabilities_to_dict

    return hashlib.sha256(_canonical_json(capabilities_to_dict(capabilities))).hexdigest()


#: Memoised digests of live Instance objects (id -> (weakref, digest)): a
#: sweep looks the same instance up once per (solver, alpha) combination, and
#: rebuilding four job arrays per lookup would dominate the cache-hit path.
#: Entries evict themselves when the instance is garbage-collected, and an
#: id-reuse race is caught by the identity check against the weakref.
_DIGESTS: dict[int, tuple[weakref.ref, str]] = {}


def instance_digest(instance) -> str:
    """SHA-256 over an instance's content arrays (name excluded).

    Byte-normalised: releases, works, deadlines (``inf`` for "none") and
    weights enter as raw float64 bytes.  Also used by the batch engine's
    run-dir journal to fingerprint what a resumable run was started with.
    """
    cache_key = id(instance)
    entry = _DIGESTS.get(cache_key)
    if entry is not None and entry[0]() is instance:
        return entry[1]
    h = hashlib.sha256()
    for array in (
        instance.releases,
        instance.works,
        instance.deadlines,
        instance.weights,
    ):
        h.update(np.ascontiguousarray(array, dtype=np.float64).tobytes())
    digest = h.hexdigest()
    try:
        ref = weakref.ref(
            instance, lambda _, k=cache_key: _DIGESTS.pop(k, None)
        )
    except TypeError:  # pragma: no cover - non-weakrefable instance stand-in
        return digest
    _DIGESTS[cache_key] = (ref, digest)
    return digest


def request_cache_key(
    request: "SolveRequest", registry: "SolverRegistry | None" = None
) -> str:
    """The content-addressed cache key of one solve request.

    Canonical SHA-256 over the :func:`repro.io.request_to_dict` envelope with
    the instance section replaced by its byte-normalised
    :func:`instance_digest`, the solver resolved to a concrete name, and the
    solver's :func:`capability_fingerprint` mixed in.  Raises
    :class:`~repro.exceptions.UnknownSolverError` (via the registry) when the
    request names no registered solver, and ``TypeError`` when the request's
    options are not JSON-encodable — callers that must not fail use
    :meth:`ResultCache.get`, which maps both to a miss.
    """
    from .api.registry import REGISTRY
    from .io import power_to_dict

    reg = REGISTRY if registry is None else registry
    name = request.solver if request.solver is not None else reg.resolve(request.spec)
    payload = {
        "version": _KEY_VERSION,
        "kind": "solve-request",
        "solver": name,
        "capabilities": capability_fingerprint(reg.capabilities(name)),
        "instance": instance_digest(request.instance),
        "power": power_to_dict(request.power),
        "budget": request.budget,
        "processors": request.processors,
        "options": dict(request.options),
    }
    return hashlib.sha256(_canonical_json(payload)).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`ResultCache`'s lifetime (monotone, in-process)."""

    gets: int = 0
    hits: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_entries: int = 0
    uncacheable: int = 0
    invalidated: int = 0
    disk_errors: int = 0
    disk_probes: int = 0
    disk_recoveries: int = 0
    disk_degraded: bool = False

    @property
    def hit_rate(self) -> float:
        """Hits per get (0.0 when nothing was looked up yet)."""
        return self.hits / self.gets if self.gets else 0.0


class ResultCache:
    """Content-addressed store of :class:`~repro.api.types.SolveResult` envelopes.

    Parameters
    ----------
    directory:
        Root of the classic on-disk backend — shorthand for
        ``store=DiskJSONStore(directory)``: entries live in 256 shard
        directories (the first two hex digits of the key) as ``<key>.json``
        files, written atomically (temp file + rename), so a killed process
        never leaves a torn entry behind — and a torn or foreign file is a
        miss, not a crash.  ``None`` (without a ``store``) keeps the cache
        purely in-process.
    max_memory_entries:
        Bound of the in-process LRU front (least-recently-used entries are
        evicted first; with a persistent store they remain readable from it).
    registry:
        The solver registry keys are resolved against; defaults to the
        process-wide :data:`repro.api.REGISTRY`.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; the ``cache-write`` site is
        consulted before each store write (chaos tests inject ``ENOSPC``
        deterministically through it).
    store:
        An explicit :class:`~repro.cache_store.CacheStore` backend (memory /
        disk-json / sqlite); mutually exclusive with ``directory``.  Two
        caches handed the same store share entries — across processes when
        the backend supports it (:class:`~repro.cache_store.SqliteStore`,
        :class:`~repro.cache_store.DiskJSONStore`).
    disk_probe_interval:
        After a store write fails, one write per this many puts is retried
        as a probe; a probe that succeeds re-enables the store.  Keeps a
        transient ``ENOSPC`` from disabling persistence for the rest of a
        long-running serve loop while still writing (and warning) at most
        once per interval while the store stays broken.

    Only successful results are stored (error envelopes are never cached).
    Requests that cannot be keyed — unknown solver, non-JSON options — are
    counted as ``uncacheable`` and behave as misses.  All operations are
    thread-safe (the TCP transport of ``repro serve`` shares one cache
    across connections).

    Store writes are best-effort: when the store fails (``ENOSPC``, a
    permissions change, a vanished mount) the cache degrades to memory-only
    with a one-time :class:`RuntimeWarning` instead of propagating — a full
    disk must never kill a serve loop.  Failures are tallied as
    ``disk_errors`` in :meth:`stats` (probe attempts and recoveries as
    ``disk_probes`` / ``disk_recoveries``); existing persisted entries
    remain readable throughout.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_memory_entries: int = 1024,
        registry: "SolverRegistry | None" = None,
        fault_plan: FaultPlan | None = None,
        store: CacheStore | None = None,
        disk_probe_interval: int = 32,
    ) -> None:
        if max_memory_entries < 0:
            raise ValueError(
                f"max_memory_entries must be >= 0, got {max_memory_entries}"
            )
        if disk_probe_interval < 1:
            raise ValueError(
                f"disk_probe_interval must be >= 1, got {disk_probe_interval}"
            )
        if store is not None and directory is not None:
            raise ValueError("pass either directory= or store=, not both")
        if store is None and directory is not None:
            store = DiskJSONStore(directory)
        self.store = store
        # kept for back-compat with the directory-shaped API (repr, tools
        # poking at the sharded layout); None for non-directory backends
        self.directory = getattr(store, "directory", None)
        self.max_memory_entries = int(max_memory_entries)
        self.disk_probe_interval = int(disk_probe_interval)
        self._registry = registry
        # one lock around every stateful operation: the threaded TCP serve
        # transport shares a single cache across connection handlers
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._gets = 0
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt = 0
        self._uncacheable = 0
        self._invalidated = 0
        self._disk_errors = 0
        self._disk_probes = 0
        self._disk_recoveries = 0
        self._disk_write_failed = False
        self._puts_since_disk_fail = 0
        # bumped by invalidate(): a lock-free store read that started before
        # the bump must not resurrect its entry into the memory front
        self._generation = 0
        self._fault_plan = fault_plan

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    def key_for(self, request: "SolveRequest") -> str:
        """The cache key of ``request`` under this cache's registry."""
        return request_cache_key(request, registry=self._registry)

    def _try_key(self, request: "SolveRequest") -> str | None:
        try:
            return self.key_for(request)
        except (ReproError, TypeError, ValueError):
            self._uncacheable += 1
            return None

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, request: "SolveRequest") -> "SolveResult | None":
        """The cached result for ``request``, or ``None`` on a miss.

        Never raises for cache reasons: an unkeyable request, a missing
        entry and a corrupted on-disk entry all come back as ``None``
        (tallied separately in :meth:`stats`).
        """
        from .io import result_from_dict

        with self._lock:
            self._gets += 1
            key = self._try_key(request)
            if key is None:
                self._misses += 1
                return None
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self._memory_hits += 1
                envelope = entry["result"]
            else:
                envelope = None
                generation = self._generation
        if envelope is not None:
            return result_from_dict(envelope)
        # store read and parse happen outside the lock so one slow lookup
        # cannot serialise every other thread of a TCP serve transport
        entry, corrupt = self._read_store(key)
        with self._lock:
            if corrupt:
                self._corrupt += 1
            if entry is not None and self._generation != generation:
                # an invalidate() ran while we were reading: the entry we
                # hold predates it, so remembering (or returning) it would
                # resurrect what the caller just dropped — treat as a miss
                entry = None
            if entry is not None:
                self._disk_hits += 1
                self._remember(key, entry)
            else:
                self._misses += 1
        return None if entry is None else result_from_dict(entry["result"])

    def _read_store(self, key: str) -> tuple[dict[str, Any] | None, bool]:
        """One store lookup: ``(entry, corrupt)`` — lock-free, counters later."""
        if self.store is None:
            return None, False
        return self.store.read(key)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(self, request: "SolveRequest", result: "SolveResult") -> str | None:
        """Store a successful result; returns its key (``None`` if not stored)."""
        from .io import result_to_dict

        if not result.ok:
            with self._lock:
                self._uncacheable += 1
            return None
        return self.put_envelope(request, result_to_dict(result))

    def put_envelope(
        self, request: "SolveRequest", envelope: dict[str, Any]
    ) -> str | None:
        """Store an already-serialised ``result_to_dict`` envelope.

        The write-behind path of the batch engine: workers ship envelopes
        (plain JSON-ready dicts) back to the parent, which stores them
        without another serialisation pass.
        """
        with self._lock:
            if envelope.get("status") != "ok":
                self._uncacheable += 1
                return None
            key = self._try_key(request)
            if key is None:
                return None
            entry = {
                "kind": _ENTRY_KIND,
                "key": key,
                "solver": envelope.get("solver"),
                "result": envelope,
            }
            self._remember(key, entry)
            self._puts += 1
        # store write outside the lock (concurrent puts of the same key race
        # benignly: identical content under the same key, last one wins)
        self._write_store(key, entry)
        return key

    def _remember(self, key: str, entry: dict[str, Any]) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _write_store(self, key: str, entry: dict[str, Any]) -> None:
        """Best-effort store write: a failing store degrades to memory-only.

        ``ENOSPC`` / ``EACCES`` / any other ``OSError`` must not propagate —
        a full disk killing a long-running serve loop is exactly the failure
        mode this guards.  The first failure disables further store writes
        (one warning, ``disk_errors`` tallied), but not forever: every
        ``disk_probe_interval`` puts one write is retried as a probe, and a
        probe that lands re-enables the store (``disk_recoveries``).  Reads
        keep working throughout.
        """
        if self.store is None:
            return
        probe = False
        with self._lock:
            if self._disk_write_failed:
                self._puts_since_disk_fail += 1
                if self._puts_since_disk_fail < self.disk_probe_interval:
                    return
                self._puts_since_disk_fail = 0
                self._disk_probes += 1
                probe = True
        try:
            if self._fault_plan is not None:
                rule = self._fault_plan.fire(CACHE_WRITE)
                if rule is not None:
                    raise OSError(
                        errno.ENOSPC,
                        rule.message or "injected cache disk-write failure",
                    )
            self.store.write(key, entry)
        except OSError as exc:
            with self._lock:
                self._disk_errors += 1
                first = not self._disk_write_failed
                self._disk_write_failed = True
                self._puts_since_disk_fail = 0
            if first:
                warnings.warn(
                    f"result cache disk store ({self.store.describe()}) failed "
                    f"to write ({exc}); continuing memory-only — existing "
                    "persisted entries remain readable",
                    RuntimeWarning,
                    stacklevel=3,
                )
        else:
            if probe:
                with self._lock:
                    self._disk_write_failed = False
                    self._disk_recoveries += 1
                    self._puts_since_disk_fail = 0

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def invalidate(self, solver: str | None = None) -> int:
        """Drop entries (all of them, or one solver's).

        Returns the number of *distinct* entries dropped (an entry present
        in both the memory front and the persistent store counts once).
        Capability *changes* invalidate implicitly — the fingerprint is part
        of the key — so this is for operational eviction: a solver was found
        buggy, or the store must shrink.
        """
        with self._lock:
            dropped: set[str] = set()
            if solver is None:
                dropped.update(self._memory)
                self._memory.clear()
            else:
                for key in [
                    k for k, e in self._memory.items() if e.get("solver") == solver
                ]:
                    del self._memory[key]
                    dropped.add(key)
            if self.store is not None:
                dropped.update(self.store.purge(solver))
            self._invalidated += len(dropped)
            # any lock-free store read in flight now holds a pre-invalidate
            # entry; the generation bump stops it from being remembered
            self._generation += 1
            return len(dropped)

    def stats(self) -> CacheStats:
        """A snapshot of this cache's counters."""
        with self._lock:
            hits = self._memory_hits + self._disk_hits
            return CacheStats(
                gets=self._gets,
                hits=hits,
                memory_hits=self._memory_hits,
                disk_hits=self._disk_hits,
                misses=self._misses,
                puts=self._puts,
                corrupt_entries=self._corrupt,
                uncacheable=self._uncacheable,
                invalidated=self._invalidated,
                disk_errors=self._disk_errors,
                disk_probes=self._disk_probes,
                disk_recoveries=self._disk_recoveries,
                disk_degraded=self._disk_write_failed,
            )

    def __len__(self) -> int:
        """Entries in the in-process front (disk entries are unbounded)."""
        return len(self._memory)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = "memory" if self.store is None else self.store.describe()
        s = self.stats()
        return (
            f"ResultCache(backend={backend!r}, entries={len(self)}, "
            f"hits={s.hits}, misses={s.misses})"
        )

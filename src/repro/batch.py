"""Batch solving engine: many instances through one API, optionally in parallel.

The serving scenario the ROADMAP targets is not "solve one instance" but
"solve a stream of instances": sweeps over workloads, parameter studies, and
request batches.  This module provides :func:`solve_many`, which runs any
*batchable* solver from the central registry (:data:`repro.api.REGISTRY`)
over a list of instances with

* chunked process-pool parallelism (``workers=N``) for CPU-bound fan-out,
* deterministic result ordering — results come back aligned with the input
  list regardless of worker count or chunk boundaries, byte-identical to the
  serial path (the workers run exactly the same code on the same inputs),
* picklable, structured results (:class:`BatchResult`).

Dispatch goes through :meth:`repro.api.SolverRegistry.run`, the same path as
``repro.solve`` and the CLI, so the batch engine cannot drift from the rest
of the API.  The legacy module-level :data:`SOLVERS` mapping survives only as
a deprecated read-only view of the registry's batchable solvers.

Exposed on the command line as ``repro batch`` (see :mod:`repro.cli`), and
measured by ``benchmarks/bench_batch_throughput.py``.
"""

from __future__ import annotations

import math
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .api.registry import REGISTRY
from .api.types import SolveRequest
from .core.job import Instance
from .core.power import PowerFunction
from .exceptions import InvalidInstanceError, VerificationError

__all__ = ["BatchResult", "SOLVERS", "solve_many"]


@dataclass(frozen=True)
class BatchResult:
    """Result of one instance inside a :func:`solve_many` batch.

    ``value`` is the solver's objective (makespan for ``laptop``, minimum
    energy for ``server``, total flow for ``flow``, schedule energy for
    ``yds``); ``energy`` is the energy actually consumed by the returned
    speed assignment.
    """

    index: int
    solver: str
    n_jobs: int
    value: float
    energy: float
    speeds: np.ndarray


# ----------------------------------------------------------------------
# deprecated registry view
# ----------------------------------------------------------------------

class _DeprecatedSolversView(Mapping):
    """Read-only, deprecated view of the registry's batchable solvers.

    Pre-registry code dispatched through ``batch.SOLVERS[name]`` with the
    contract ``(instance, power, budget) -> (value, energy, speeds)``.  This
    view keeps that contract alive (now routed through the registry) while
    warning on lookups; enumerate :data:`repro.api.REGISTRY` instead.
    """

    def _names(self) -> tuple[str, ...]:
        return REGISTRY.find(batchable=True)

    def __getitem__(self, name: str) -> Callable:
        warnings.warn(
            "repro.batch.SOLVERS is deprecated; dispatch through "
            "repro.api.REGISTRY / repro.solve instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if name not in self._names():
            raise KeyError(name)

        def legacy_solver(instance: Instance, power: PowerFunction, budget: float):
            result = REGISTRY.run(
                SolveRequest(instance=instance, power=power, solver=name, budget=budget)
            )
            return result.value, result.energy, result.speeds

        return legacy_solver

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SOLVERS(deprecated view of {list(self._names())})"


#: Deprecated: name -> (instance, power, budget) -> (value, energy, speeds).
#: A read-only view of the batchable solvers in :data:`repro.api.REGISTRY`;
#: new code should build a :class:`repro.api.SolveRequest` and call
#: :func:`repro.solve` (or enumerate the registry) instead.
SOLVERS: Mapping[str, Callable] = _DeprecatedSolversView()


def _solve_chunk(payload: tuple) -> list[BatchResult]:
    """Worker entry point: solve one chunk of (index, instance, budget) items.

    Must stay module-level (and take a single picklable argument) so the
    process pool can ship it to workers; solver lookup happens by name in the
    worker, against the worker's own registry bootstrap.
    """
    solver_name, power, items, verify = payload
    if verify:
        # lazy: repro.verify pulls solver machinery the plain path never needs
        from .verify import verify as verify_result
    out = []
    for index, instance, budget in items:
        request = SolveRequest(
            instance=instance, power=power, solver=solver_name, budget=budget
        )
        result = REGISTRY.run(request)
        if verify:
            # certificate-check in the worker, next to the solve; a failed
            # report raises VerificationError naming the instance
            report = verify_result(request, result)
            if not report.ok:
                raise VerificationError(
                    f"instance {index}: verification failed for solver "
                    f"{solver_name!r}: {report.error_summary()}"
                )
        out.append(
            BatchResult(
                index=index,
                solver=solver_name,
                n_jobs=instance.n_jobs,
                value=float(result.value),
                energy=float(result.energy),
                speeds=result.speeds,
            )
        )
    return out


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def solve_many(
    instances: Iterable[Instance],
    power: PowerFunction,
    budgets: float | Sequence[float],
    solver: str = "laptop",
    workers: int = 1,
    chunk_size: int | None = None,
    verify: bool = False,
) -> list[BatchResult]:
    """Solve many instances with one solver, optionally across processes.

    Parameters
    ----------
    instances:
        The problem instances.
    power:
        Shared power function (must be picklable for ``workers > 1``; the
        built-in power functions are).
    budgets:
        One budget per instance, or a single scalar broadcast to all.
        Interpreted per solver (energy budget, makespan target, ...).
    solver:
        The name of a batchable solver in :data:`repro.api.REGISTRY`.
    workers:
        ``<= 1`` solves serially in-process; otherwise a process pool with
        this many workers.  Results are identical either way.
    chunk_size:
        Items per worker task; defaults to ``ceil(len / (workers * 4))`` so
        each worker gets several chunks for load balancing.
    verify:
        Certificate-check every result in the worker that produced it
        (:func:`repro.verify.verify`); a failed report raises
        :class:`~repro.exceptions.VerificationError` naming the instance.

    Returns
    -------
    list[BatchResult]
        In input order (``result[i].index == i``), deterministically.

    Raises
    ------
    UnknownSolverError
        If ``solver`` is not registered (carries the known solver names).
    InvalidInstanceError
        If ``solver`` is registered but not batchable, or the budget list
        does not match the instance list.
    VerificationError
        If ``verify=True`` and any result fails its certificate checks.
    """
    capabilities = REGISTRY.capabilities(solver)  # raises UnknownSolverError
    if not capabilities.batchable:
        raise InvalidInstanceError(
            f"solver {solver!r} is not batchable; batchable solvers: "
            f"{sorted(REGISTRY.find(batchable=True))}"
        )
    instance_list = list(instances)
    count = len(instance_list)
    if count == 0:
        return []
    if np.isscalar(budgets):
        budget_list = [float(budgets)] * count  # type: ignore[arg-type]
    else:
        budget_list = [float(b) for b in budgets]  # type: ignore[union-attr]
        if len(budget_list) != count:
            raise InvalidInstanceError(
                f"got {len(budget_list)} budgets for {count} instances; "
                "pass one per instance or a single scalar"
            )
    items = list(zip(range(count), instance_list, budget_list))

    if workers <= 1:
        return _solve_chunk((solver, power, items, verify))

    if chunk_size is None:
        chunk_size = max(1, math.ceil(count / (workers * 4)))
    chunks = [items[i : i + chunk_size] for i in range(0, count, chunk_size)]
    payloads = [(solver, power, chunk, verify) for chunk in chunks]
    max_workers = min(workers, len(chunks))
    results: list[BatchResult] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        # pool.map preserves submission order, so flattening the chunk
        # results reconstructs the input order exactly.
        for chunk_result in pool.map(_solve_chunk, payloads):
            results.extend(chunk_result)
    return results

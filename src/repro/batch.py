"""Batch solving engine: many instances through one API, streaming, resumable.

The serving scenario the ROADMAP targets is not "solve one instance" but
"solve a stream of instances": sweeps over workloads, parameter studies, and
request batches.  This module provides the streaming engine:

* :func:`solve_stream` -- a generator yielding one :class:`BatchResult` per
  instance, in input order, as chunks complete.  Results are produced
  incrementally (bounded memory in the result dimension: at most a window of
  in-flight chunks is held), with

  - chunked process-pool parallelism (``workers=N``) for CPU-bound fan-out,
  - content-addressed caching (``cache=ResultCache(...)``): every item is
    looked up before dispatch and written behind after it solves (and, with
    ``verify=True``, only after its certificate checks pass), so repeated
    instances cost one solve,
  - resumable runs (``run_dir=...``): completed results are journalled to
    ``<run_dir>/journal.jsonl`` as they are yielded, and a re-invoked run
    over the same inputs skips finished work and reproduces the same
    results byte for byte (``repro batch --run-dir`` on the command line);

* :func:`solve_many` -- the materialised form, a thin ``list()`` wrapper over
  :func:`solve_stream`, byte-identical to the streaming path.

Dispatch goes through :meth:`repro.api.SolverRegistry.run`, the same path as
``repro.solve`` and the CLI, so the batch engine cannot drift from the rest
of the API.  Cache-miss items are additionally bucketed by job count and —
when the solver registered a structure-of-arrays batched kernel
(``capabilities.batch_kernel``) — whole buckets go through
:meth:`repro.api.SolverRegistry.run_batch` in one kernel call, byte-identical
to the per-item path and an order of magnitude cheaper on fleets of small
same-shape instances (``batch_kernel="auto"|"on"|"off"`` controls this).
The legacy module-level :data:`SOLVERS` mapping survives only as
a deprecated read-only view of the registry's batchable solvers.

Exposed on the command line as ``repro batch`` (see :mod:`repro.cli`), and
measured by ``benchmarks/bench_batch_throughput.py`` and
``benchmarks/bench_cache_throughput.py``.
"""

from __future__ import annotations

import json
import math
import os
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .api.registry import REGISTRY
from .api.types import SolveRequest, SolveResult
from .cache import ResultCache, instance_digest
from .core.job import Instance
from .core.power import PowerFunction
from .exceptions import InvalidInstanceError, VerificationError, WorkerTimeoutError
from .io import ENVELOPE_CODECS
from .faults import (
    JOURNAL_TORN,
    SOLVER_SLOW,
    WORKER_EXCEPTION,
    WORKER_HANG,
    FaultPlan,
    InjectedFault,
)

__all__ = ["BatchResult", "SOLVERS", "solve_many", "solve_stream"]


@dataclass(frozen=True)
class BatchResult:
    """Result of one instance inside a :func:`solve_stream` batch.

    ``value`` is the solver's objective (makespan for ``laptop``, minimum
    energy for ``server``, total flow for ``flow``, schedule energy for
    ``yds``); ``energy`` is the energy actually consumed by the returned
    speed assignment.

    A failed item — today only a chunk that exceeded ``chunk_timeout`` —
    carries its stable code in ``error_code`` (with NaN value/energy and
    empty speeds); such rows are never journalled or cached, so a resumed
    run retries them.
    """

    index: int
    solver: str
    n_jobs: int
    value: float
    energy: float
    speeds: np.ndarray
    error_code: str | None = None
    error_message: str | None = None

    @property
    def ok(self) -> bool:
        """Whether this item actually solved (no error attached)."""
        return self.error_code is None


# ----------------------------------------------------------------------
# deprecated registry view
# ----------------------------------------------------------------------

class _DeprecatedSolversView(Mapping):
    """Read-only, deprecated view of the registry's batchable solvers.

    Pre-registry code dispatched through ``batch.SOLVERS[name]`` with the
    contract ``(instance, power, budget) -> (value, energy, speeds)``.  This
    view keeps that contract alive (now routed through the registry) while
    warning on lookups; enumerate :data:`repro.api.REGISTRY` instead.
    """

    def _names(self) -> tuple[str, ...]:
        return REGISTRY.find(batchable=True)

    def __getitem__(self, name: str) -> Callable:
        warnings.warn(
            "repro.batch.SOLVERS is deprecated; dispatch through "
            "repro.api.REGISTRY / repro.solve instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if name not in self._names():
            raise KeyError(name)

        def legacy_solver(instance: Instance, power: PowerFunction, budget: float):
            result = REGISTRY.run(
                SolveRequest(instance=instance, power=power, solver=name, budget=budget)
            )
            return result.value, result.energy, result.speeds

        return legacy_solver

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SOLVERS(deprecated view of {list(self._names())})"


#: Deprecated: name -> (instance, power, budget) -> (value, energy, speeds).
#: A read-only view of the batchable solvers in :data:`repro.api.REGISTRY`;
#: new code should build a :class:`repro.api.SolveRequest` and call
#: :func:`repro.solve` (or enumerate the registry) instead.
SOLVERS: Mapping[str, Callable] = _DeprecatedSolversView()


def _fire_item_faults(fault_plan: FaultPlan, index: int) -> None:
    """Consult the worker-site fault rules for one instance index.

    Worker-site faults match on the instance index, so the decision is
    identical no matter which worker process (or dispatch path) draws the
    chunk.
    """
    rule = fault_plan.fire(WORKER_HANG, ordinal=index)
    if rule is not None:
        fault_plan.sleep(rule)
    rule = fault_plan.fire(SOLVER_SLOW, ordinal=index)
    if rule is not None:
        fault_plan.sleep(rule)
    rule = fault_plan.fire(WORKER_EXCEPTION, ordinal=index)
    if rule is not None:
        raise InjectedFault(
            rule.message or f"injected worker crash at instance {index}"
        )


def _solve_chunk(payload: tuple) -> list[tuple[BatchResult, dict | bytes | None]]:
    """Worker entry point: solve one chunk of (index, instance, budget) items.

    Must stay module-level (and take a single picklable argument) so the
    process pool can ship it to workers; solver lookup happens by name in the
    worker, against the worker's own registry bootstrap.  Returns one
    ``(BatchResult, envelope)`` pair per item, where ``envelope`` is the
    write-behind payload of the full result when ``with_envelopes`` is set —
    the JSON-ready :func:`repro.io.result_to_dict` dict under
    ``wire_codec="json"``, its :func:`repro.io.binary_envelope_encode` bytes
    under ``"binary"`` — and ``None`` otherwise.

    ``batch_kernel`` (``"auto"`` / ``"on"`` / ``"off"``) selects the
    structure-of-arrays tier: unless it is ``"off"``, items are bucketed by
    job count and each bucket is dispatched through
    :meth:`repro.api.SolverRegistry.run_batch` when the solver registered a
    batched kernel.  Under ``"auto"`` a singleton bucket keeps the reference
    per-instance path (packing one instance gains nothing); ``"on"`` forces
    the batched kernel even then.  Results are byte-identical either way.
    """
    (
        solver_name, power, items, verify, with_envelopes, fault_plan,
        batch_kernel, wire_codec,
    ) = payload
    if verify:
        # lazy: repro.verify pulls solver machinery the plain path never needs
        from .verify import verify as verify_result
    if with_envelopes:
        from .io import binary_envelope_encode, result_to_dict

        def _ship(result: SolveResult):
            envelope = result_to_dict(result)
            # "binary" ships the envelope as one compact frame instead of a
            # pickled dict-of-lists; the parent decodes before write-behind
            # and the round trip is bit-exact, so cache bytes are identical
            return (
                binary_envelope_encode(envelope)
                if wire_codec == "binary"
                else envelope
            )
    requests = [
        SolveRequest(
            instance=instance, power=power, solver=solver_name, budget=budget
        )
        for _, instance, budget in items
    ]
    batched = batch_kernel != "off" and REGISTRY.get(solver_name).batch_fn is not None
    results: list[SolveResult]
    if batched:
        # fault rules fire per item, in index order, *before* the batched
        # solve: a chunk that raises is lost atomically on both paths, so the
        # observable fault behaviour matches the per-item loop below
        if fault_plan is not None:
            for index, _, _ in items:
                _fire_item_faults(fault_plan, index)
        results = [None] * len(items)  # type: ignore[list-item]
        buckets: dict[int, list[int]] = {}
        for pos, (_, instance, _) in enumerate(items):
            buckets.setdefault(instance.n_jobs, []).append(pos)
        for positions in buckets.values():
            if batch_kernel == "auto" and len(positions) < 2:
                for pos in positions:
                    results[pos] = REGISTRY.run(requests[pos])
            else:
                for pos, result in zip(
                    positions,
                    REGISTRY.run_batch([requests[pos] for pos in positions]),
                ):
                    results[pos] = result
    else:
        results = []
        for (index, _, _), request in zip(items, requests):
            if fault_plan is not None:
                _fire_item_faults(fault_plan, index)
            results.append(REGISTRY.run(request))
    out = []
    for (index, instance, _), request, result in zip(items, requests, results):
        if verify:
            # certificate-check in the worker, next to the solve; a failed
            # report raises VerificationError naming the instance
            report = verify_result(request, result)
            if not report.ok:
                raise VerificationError(
                    f"instance {index}: verification failed for solver "
                    f"{solver_name!r}: {report.error_summary()}"
                )
        out.append(
            (
                BatchResult(
                    index=index,
                    solver=solver_name,
                    n_jobs=instance.n_jobs,
                    value=float(result.value),
                    energy=float(result.energy),
                    speeds=result.speeds,
                ),
                _ship(result) if with_envelopes else None,
            )
        )
    return out


# ----------------------------------------------------------------------
# resumable runs: the run-dir journal
# ----------------------------------------------------------------------

class _RunJournal:
    """Append-only journal of completed batch items under one run directory.

    ``manifest.json`` fingerprints the run's inputs (solver, power, budgets,
    instance content digests) so a directory cannot silently be resumed with
    different work; ``journal.jsonl`` holds one completed result per line,
    appended and flushed *before* the result is yielded, so a killed run
    loses at most the in-flight items.  The manifest is written atomically
    (temp file + rename, like cache shards): a kill at any point leaves
    either no manifest or a complete one, never a torn file a resume would
    misread.  Rows round-trip through JSON float repr exactly, making a
    resumed capture byte-identical to an uninterrupted one.
    """

    MANIFEST = "manifest.json"
    JOURNAL = "journal.jsonl"

    def __init__(
        self,
        run_dir: str | Path,
        fingerprint: str,
        solver: str,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        from .io import batch_result_from_dict

        self._fault_plan = fault_plan
        self.directory = Path(run_dir)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / self.MANIFEST
        manifest = {"kind": "batch-run", "format": 1,
                    "solver": solver, "fingerprint": fingerprint}
        if manifest_path.exists():
            try:
                existing = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise InvalidInstanceError(
                    f"unreadable run manifest {manifest_path}: {exc}"
                ) from exc
            if existing.get("kind") != "batch-run":
                raise InvalidInstanceError(
                    f"{self.directory} is not a batch run directory "
                    f"(manifest kind={existing.get('kind')!r})"
                )
            if existing.get("fingerprint") != fingerprint:
                raise InvalidInstanceError(
                    f"run directory {self.directory} was created for a "
                    "different batch (solver, power, budgets or instances "
                    "changed); use a fresh --run-dir"
                )
        else:
            tmp = manifest_path.with_name(
                f".{manifest_path.name}.{os.getpid()}.tmp"
            )
            tmp.write_text(
                json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, manifest_path)
        self.completed: dict[int, BatchResult] = {}
        journal_path = self.directory / self.JOURNAL
        if journal_path.exists():
            text = journal_path.read_text(encoding="utf-8")
            trusted = 0  # length of the prefix of complete, parseable rows
            for line in text.splitlines(keepends=True):
                # a row is only trusted if its newline made it to disk; a
                # torn tail line from a killed writer ends the prefix, and
                # nothing after it can be trusted either (append-only file)
                if not line.endswith("\n"):
                    break
                try:
                    row = json.loads(line)
                    result = batch_result_from_dict(row, solver=solver)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    break
                self.completed[result.index] = result
                trusted += len(line)
            if trusted < len(text):
                # drop the torn tail before appending, so the next resume
                # does not see new rows concatenated onto the fragment
                journal_path.write_text(text[:trusted], encoding="utf-8")
        self._fh = journal_path.open("a", encoding="utf-8")

    def record(self, result: BatchResult, name: str) -> None:
        from .io import batch_result_to_dict

        text = json.dumps(batch_result_to_dict(result, name=name)) + "\n"
        if self._fault_plan is not None:
            rule = self._fault_plan.fire(JOURNAL_TORN)
            if rule is not None:
                # simulate a kill mid-append: half the row reaches disk with
                # no trailing newline, then the "process" dies
                self._fh.write(text[: max(1, len(text) // 2)])
                self._fh.flush()
                raise InjectedFault(
                    rule.message or "injected kill mid-journal-append"
                )
        self._fh.write(text)
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def _run_fingerprint(
    solver: str,
    power: PowerFunction,
    budget_list: list[float],
    instance_list: list[Instance],
) -> str:
    import hashlib

    from .io import power_to_dict

    payload = {
        "solver": solver,
        "power": power_to_dict(power),
        "budgets": budget_list,
        "instances": [instance_digest(inst) for inst in instance_list],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

#: Items per chunk on the serial path: small enough that results stream
#: promptly, large enough that per-chunk overhead stays negligible.
_SERIAL_CHUNK = 16


def solve_stream(
    instances: Iterable[Instance],
    power: PowerFunction,
    budgets: float | Sequence[float] | np.ndarray,
    solver: str = "laptop",
    workers: int = 1,
    chunk_size: int | None = None,
    verify: bool = False,
    cache: ResultCache | None = None,
    run_dir: str | Path | None = None,
    chunk_timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    batch_kernel: str = "auto",
    wire_codec: str = "json",
) -> Iterator[BatchResult]:
    """Solve many instances with one solver, yielding results as they complete.

    A generator: results come out in input order (``result.index == i``), one
    chunk at a time, so a consumer can process, persist or forward each
    result while later ones are still being solved.  Memory stays bounded in
    the result dimension — at most a small window of in-flight chunks is
    held, never the whole batch of results.  (The *instances* iterable is
    materialised up front: budget broadcasting, chunking and the resume
    journal all need the full input list.)

    Parameters
    ----------
    instances:
        The problem instances.
    power:
        Shared power function (must be picklable for ``workers > 1``; the
        built-in power functions are).
    budgets:
        One budget per instance, or a single scalar broadcast to all
        (Python floats, numpy scalars and 0-d arrays all count as scalars).
        Interpreted per solver (energy budget, makespan target, ...).
    solver:
        The name of a batchable solver in :data:`repro.api.REGISTRY`.
    workers:
        ``<= 1`` solves serially in-process; otherwise a process pool with
        this many workers.  Results are identical either way.
    chunk_size:
        Items per dispatch unit; defaults to ``16`` serially and
        ``ceil(len / (workers * 4))`` with a pool, so each worker gets
        several chunks for load balancing.
    verify:
        Certificate-check every result (:func:`repro.verify.verify`); a
        failed report raises :class:`~repro.exceptions.VerificationError`
        naming the instance.  Fresh solves are checked in the worker that
        produced them; cache hits and journal-replayed rows — which may
        predate verification or have been tampered with on disk — are
        re-checked in the parent.  With a cache, only verified results are
        written behind.
    cache:
        A :class:`~repro.cache.ResultCache`: every item is looked up before
        dispatch (hits skip the solver entirely and are byte-identical to a
        fresh solve) and successful results are stored after solving.
    run_dir:
        Directory journalling this run (created if needed).  Completed
        results are appended to ``journal.jsonl`` before being yielded; a
        rerun with identical inputs replays them instead of re-solving, so a
        killed run resumes where it stopped and produces the same results
        byte for byte.  Reusing the directory with *different* inputs raises
        :class:`~repro.exceptions.InvalidInstanceError` (the manifest
        fingerprints the inputs).
    chunk_timeout:
        Pool path only (``workers > 1``): seconds a dispatched chunk may run
        before it is declared hung.  On expiry the worker pool is killed and
        rebuilt, the other in-flight chunks are resubmitted, and the failed
        chunk's unsolved items come back as error rows with the stable
        ``worker-timeout`` code — one hung worker fails its chunk, not the
        stream.  Error rows are never journalled or cached, so a resumed
        run retries them.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` consulted at the
        deterministic chaos sites (``worker-exception`` / ``worker-hang`` /
        ``solver-slow`` match on instance index; ``journal-torn`` on the
        journal's append counter).
    batch_kernel:
        Structure-of-arrays dispatch policy for cache-miss items.  ``"auto"``
        (default) buckets same-shape items and routes buckets of two or more
        through the solver's batched kernel when it registered one
        (``capabilities.batch_kernel``); ``"on"`` forces the batched kernel
        for every item and raises if the solver has none; ``"off"`` keeps
        the reference per-instance path.  Results are byte-identical across
        all three settings.
    wire_codec:
        Envelope format workers use to ship write-behind cache payloads back
        to the parent: ``"json"`` (default) sends the plain
        :func:`~repro.io.result_to_dict` dict, ``"binary"`` sends one
        compact :func:`~repro.io.binary_envelope_encode` frame (cheaper to
        pickle for speed-heavy results).  The parent decodes before caching,
        so stored entries — and every yielded result — are byte-identical
        across both settings.

    Raises
    ------
    UnknownSolverError
        If ``solver`` is not registered (carries the known solver names).
    InvalidInstanceError
        If ``solver`` is registered but not batchable, the budget list does
        not match the instance list, ``run_dir`` belongs to a different
        batch, or ``batch_kernel`` is ``"on"`` for a solver with no batched
        kernel (or not one of ``"auto"`` / ``"on"`` / ``"off"``).
    VerificationError
        If ``verify=True`` and any result fails its certificate checks.
    """
    capabilities = REGISTRY.capabilities(solver)  # raises UnknownSolverError
    if not capabilities.batchable:
        raise InvalidInstanceError(
            f"solver {solver!r} is not batchable; batchable solvers: "
            f"{sorted(REGISTRY.find(batchable=True))}"
        )
    if batch_kernel not in ("auto", "on", "off"):
        raise InvalidInstanceError(
            f"batch_kernel must be 'auto', 'on' or 'off', got {batch_kernel!r}"
        )
    if batch_kernel == "on" and not capabilities.batch_kernel:
        raise InvalidInstanceError(
            f"batch_kernel='on' but solver {solver!r} registers no batched "
            f"kernel; solvers with one: {sorted(REGISTRY.find(batch_kernel=True))}"
        )
    if wire_codec not in ENVELOPE_CODECS:
        raise InvalidInstanceError(
            f"wire_codec must be one of {sorted(ENVELOPE_CODECS)}, "
            f"got {wire_codec!r}"
        )
    instance_list = list(instances)
    count = len(instance_list)
    if count == 0:
        # still claim/validate the run directory: an empty batch must not
        # silently adopt (or leave unclaimed) a directory the fingerprint
        # guard would otherwise police
        if run_dir is not None:
            _RunJournal(
                run_dir, _run_fingerprint(solver, power, [], []), solver
            ).close()
        return iter(())
    # np.ndim, not np.isscalar: a 0-d numpy array (np.asarray(5.0)) is not a
    # scalar to np.isscalar but must broadcast like one
    if np.ndim(budgets) == 0:
        budget_list = [float(budgets)] * count  # type: ignore[arg-type]
    else:
        budget_list = [float(b) for b in budgets]  # type: ignore[union-attr]
        if len(budget_list) != count:
            raise InvalidInstanceError(
                f"got {len(budget_list)} budgets for {count} instances; "
                "pass one per instance or a single scalar"
            )
    items = list(zip(range(count), instance_list, budget_list))
    if chunk_size is None:
        chunk_size = (
            _SERIAL_CHUNK if workers <= 1
            else max(1, math.ceil(count / (workers * 4)))
        )
    chunks = [items[i : i + chunk_size] for i in range(0, count, chunk_size)]

    journal = (
        _RunJournal(
            run_dir,
            _run_fingerprint(solver, power, budget_list, instance_list),
            solver,
            fault_plan=fault_plan,
        )
        if run_dir is not None
        else None
    )
    return _stream_chunks(
        chunks, solver, power, workers, verify, cache, journal,
        chunk_timeout, fault_plan, batch_kernel, wire_codec,
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may hold a hung worker, without waiting for it.

    ``shutdown(wait=False)`` alone leaves a hung worker process running (and
    its non-daemon management machinery joining at interpreter exit), so the
    worker processes are killed first.  ``_processes`` is private executor
    state; guarded, because losing the kill only costs a leaked process for
    the life of the run, never correctness.
    """
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.kill()
    except Exception:  # pragma: no cover - racing executor teardown
        pass
    pool.shutdown(wait=False, cancel_futures=True)


def _timeout_result(
    item: tuple[int, Instance, float], solver: str, chunk_timeout: float
) -> BatchResult:
    """The error row for one item of a chunk that exceeded ``chunk_timeout``."""
    index, instance, _ = item
    return BatchResult(
        index=index,
        solver=solver,
        n_jobs=instance.n_jobs,
        value=float("nan"),
        energy=float("nan"),
        speeds=np.zeros(0),
        error_code=WorkerTimeoutError.code,
        error_message=(
            f"chunk containing instance {index} exceeded the per-chunk "
            f"timeout of {chunk_timeout:g}s; worker pool was recycled"
        ),
    )


def _stream_chunks(
    chunks: list[list[tuple[int, Instance, float]]],
    solver: str,
    power: PowerFunction,
    workers: int,
    verify: bool,
    cache: ResultCache | None,
    journal: _RunJournal | None,
    chunk_timeout: float | None,
    fault_plan: FaultPlan | None,
    batch_kernel: str,
    wire_codec: str,
) -> Iterator[BatchResult]:
    """The generator behind :func:`solve_stream` (validation already done)."""
    want_envelopes = cache is not None
    if verify:
        from .verify import verify as verify_fn

    def _request(item: tuple[int, Instance, float]) -> SolveRequest:
        index, instance, budget = item
        return SolveRequest(
            instance=instance, power=power, solver=solver, budget=budget
        )

    def _check_resolved(item, result: SolveResult, source: str) -> None:
        """verify=True covers results that skipped the solver, too: a cache
        hit or journal row may have been produced without verification (or
        tampered with on disk since)."""
        report = verify_fn(_request(item), result)
        if not report.ok:
            raise VerificationError(
                f"instance {item[0]}: verification failed for {source} result "
                f"of solver {solver!r}: {report.error_summary()}"
            )

    def _plan(chunk):
        """Split a chunk into already-resolved results and items to solve.

        Journal and cache reads happen here, in the parent process, so the
        LRU front is shared across the whole run and workers only ever see
        genuine misses.
        """
        resolved: dict[int, tuple[BatchResult, bool]] = {}
        missing: list[tuple[int, Instance, float]] = []
        for item in chunk:
            index, instance, budget = item
            if journal is not None and index in journal.completed:
                replay = journal.completed[index]
                if verify:
                    _check_resolved(
                        item,
                        SolveResult(
                            solver=solver, status="ok", value=replay.value,
                            energy=replay.energy, speeds=replay.speeds,
                        ),
                        "journal-replayed",
                    )
                resolved[index] = (replay, False)
                continue
            if cache is not None:
                hit = cache.get(_request(item))
                if hit is not None:
                    if verify:
                        _check_resolved(item, hit, "cached")
                    resolved[index] = (
                        BatchResult(
                            index=index,
                            solver=solver,
                            n_jobs=instance.n_jobs,
                            value=float(hit.value),
                            energy=float(hit.energy),
                            speeds=hit.speeds,
                        ),
                        True,
                    )
                    continue
            missing.append(item)
        return resolved, missing

    def _emit(chunk, resolved, solved):
        """Merge resolved and freshly-solved items back into input order."""
        solved_iter = iter(solved)
        for item in chunk:
            index, instance, _ = item
            if index in resolved:
                result, record = resolved[index]
            else:
                result, envelope = next(solved_iter)
                record = True
                if cache is not None and envelope is not None:
                    if isinstance(envelope, (bytes, bytearray)):
                        from .io import binary_envelope_decode

                        envelope = binary_envelope_decode(envelope)
                    # write-behind: this point is only reached after the
                    # worker's verify (when enabled) passed
                    cache.put_envelope(_request(item), envelope)
            if record and result.ok and journal is not None:
                journal.record(result, name=instance.name)
            yield result

    def _emit_timed_out(chunk, resolved):
        """Input-order rows for a hung chunk: resolved items pass through,
        unsolved ones become ``worker-timeout`` error rows (not journalled,
        so a resumed run retries them)."""
        for item in chunk:
            index, instance, _ = item
            if index in resolved:
                result, record = resolved[index]
                if record and result.ok and journal is not None:
                    journal.record(result, name=instance.name)
                yield result
            else:
                yield _timeout_result(item, solver, chunk_timeout)

    try:
        if workers <= 1:
            for chunk in chunks:
                resolved, missing = _plan(chunk)
                solved = (
                    _solve_chunk(
                        (solver, power, missing, verify, want_envelopes,
                         fault_plan, batch_kernel, wire_codec)
                    )
                    if missing
                    else []
                )
                yield from _emit(chunk, resolved, solved)
            return
        max_workers = min(workers, len(chunks))
        # Bound the in-flight window: enough chunks to keep every worker fed
        # while the head of the line streams out, never the whole batch.
        window = max(2 * max_workers, 2)
        pool = ProcessPoolExecutor(max_workers=max_workers)
        # pending entries are mutable: [chunk, resolved, missing, future,
        # submitted_at] — pool recovery rewrites futures in place
        pending: deque = deque()

        def _submit(missing):
            if not missing:
                return None
            return pool.submit(
                _solve_chunk,
                (solver, power, missing, verify, want_envelopes, fault_plan,
                 batch_kernel, wire_codec),
            )

        def _drain_one():
            nonlocal pool
            chunk, resolved, missing, future, submitted_at = pending.popleft()
            if future is None:
                yield from _emit(chunk, resolved, [])
                return
            if chunk_timeout is None:
                yield from _emit(chunk, resolved, future.result())
                return
            # per-chunk budget runs from submission, not from this drain
            remaining = chunk_timeout - (time.monotonic() - submitted_at)
            try:
                solved = future.result(timeout=max(remaining, 0.05))
            except FuturesTimeoutError:
                # a hung worker cannot be interrupted: kill the whole pool,
                # rebuild it, and resubmit every other in-flight chunk (a
                # chunk that already finished keeps its completed result)
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                for entry in pending:
                    stale = entry[3]
                    if stale is None:
                        continue
                    if (
                        stale.done()
                        and not stale.cancelled()
                        and stale.exception() is None
                    ):
                        continue
                    entry[3] = _submit(entry[2])
                    entry[4] = time.monotonic()
                yield from _emit_timed_out(chunk, resolved)
                return
            yield from _emit(chunk, resolved, solved)

        try:
            for chunk in chunks:
                resolved, missing = _plan(chunk)
                pending.append(
                    [chunk, resolved, missing, _submit(missing), time.monotonic()]
                )
                while len(pending) >= window:
                    yield from _drain_one()
            while pending:
                yield from _drain_one()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    finally:
        if journal is not None:
            journal.close()


def solve_many(
    instances: Iterable[Instance],
    power: PowerFunction,
    budgets: float | Sequence[float] | np.ndarray,
    solver: str = "laptop",
    workers: int = 1,
    chunk_size: int | None = None,
    verify: bool = False,
    cache: ResultCache | None = None,
    run_dir: str | Path | None = None,
    chunk_timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    batch_kernel: str = "auto",
    wire_codec: str = "json",
) -> list[BatchResult]:
    """Solve many instances and return the full result list.

    A thin ``list()`` wrapper over :func:`solve_stream` — same parameters,
    same deterministic input-order results, byte-identical output; use the
    generator directly when the batch is large or results should be consumed
    as they complete.
    """
    return list(
        solve_stream(
            instances,
            power,
            budgets,
            solver=solver,
            workers=workers,
            chunk_size=chunk_size,
            verify=verify,
            cache=cache,
            run_dir=run_dir,
            chunk_timeout=chunk_timeout,
            fault_plan=fault_plan,
            batch_kernel=batch_kernel,
            wire_codec=wire_codec,
        )
    )

"""Batch solving engine: many instances through one API, optionally in parallel.

The serving scenario the ROADMAP targets is not "solve one instance" but
"solve a stream of instances": sweeps over workloads, parameter studies, and
request batches.  This module provides :func:`solve_many`, which runs any of
the registered solvers over a list of instances with

* chunked process-pool parallelism (``workers=N``) for CPU-bound fan-out,
* deterministic result ordering — results come back aligned with the input
  list regardless of worker count or chunk boundaries, byte-identical to the
  serial path (the workers run exactly the same code on the same inputs),
* picklable, structured results (:class:`BatchResult`).

Exposed on the command line as ``repro batch`` (see :mod:`repro.cli`), and
measured by ``benchmarks/bench_batch_throughput.py``.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from .core.job import Instance
from .core.power import PowerFunction
from .exceptions import InvalidInstanceError

__all__ = ["BatchResult", "SOLVERS", "solve_many"]


@dataclass(frozen=True)
class BatchResult:
    """Result of one instance inside a :func:`solve_many` batch.

    ``value`` is the solver's objective (makespan for ``laptop``, minimum
    energy for ``server``, total flow for ``flow``, schedule energy for
    ``yds``); ``energy`` is the energy actually consumed by the returned
    speed assignment.
    """

    index: int
    solver: str
    n_jobs: int
    value: float
    energy: float
    speeds: np.ndarray


# ----------------------------------------------------------------------
# solver registry
# ----------------------------------------------------------------------

def _solve_laptop(instance: Instance, power: PowerFunction, budget: float):
    from .makespan.incmerge import incmerge

    result = incmerge(instance, power, budget)
    return result.makespan, result.energy, result.speeds


def _solve_server(instance: Instance, power: PowerFunction, target: float):
    from .makespan.incmerge import incmerge
    from .makespan.server import minimum_energy_for_makespan

    energy = minimum_energy_for_makespan(instance, power, target)
    result = incmerge(instance, power, energy)
    return energy, result.energy, result.speeds


def _solve_flow(instance: Instance, power: PowerFunction, budget: float):
    from .flow import equal_work_flow_laptop

    result = equal_work_flow_laptop(instance, power, budget)
    return result.flow, result.energy, result.speeds


def _solve_yds(instance: Instance, power: PowerFunction, budget: float):
    from .online.yds import yds_schedule

    schedule = yds_schedule(instance, power)
    energy = schedule.energy
    return energy, energy, schedule.speeds


def _solve_avr(instance: Instance, power: PowerFunction, budget: float):
    from .online.avr import avr_schedule

    schedule = avr_schedule(instance, power)
    energy = schedule.energy
    return energy, energy, schedule.speeds


def _solve_oa(instance: Instance, power: PowerFunction, budget: float):
    from .online.oa import oa_schedule_incremental

    schedule = oa_schedule_incremental(instance, power)
    energy = schedule.energy
    return energy, energy, schedule.speeds


def _solve_bkp(instance: Instance, power: PowerFunction, budget: float):
    from .online.bkp import bkp_schedule

    schedule = bkp_schedule(instance, power)
    energy = schedule.energy
    return energy, energy, schedule.speeds


#: Registered batch solvers: name -> (instance, power, budget) -> (value, energy, speeds).
#: ``budget`` is the energy budget for ``laptop``/``flow``, the makespan
#: target for ``server``, and unused by the deadline-based solvers ``yds`` /
#: ``avr`` / ``oa`` / ``bkp`` (which need per-job deadlines on the instance
#: instead; ``oa`` runs the incremental engine).
SOLVERS: Mapping[str, Callable] = {
    "laptop": _solve_laptop,
    "server": _solve_server,
    "flow": _solve_flow,
    "yds": _solve_yds,
    "avr": _solve_avr,
    "oa": _solve_oa,
    "bkp": _solve_bkp,
}


def _solve_chunk(payload: tuple) -> list[BatchResult]:
    """Worker entry point: solve one chunk of (index, instance, budget) items.

    Must stay module-level (and take a single picklable argument) so the
    process pool can ship it to workers.
    """
    solver_name, power, items = payload
    solve = SOLVERS[solver_name]
    out = []
    for index, instance, budget in items:
        value, energy, speeds = solve(instance, power, budget)
        out.append(
            BatchResult(
                index=index,
                solver=solver_name,
                n_jobs=instance.n_jobs,
                value=float(value),
                energy=float(energy),
                speeds=np.asarray(speeds, dtype=float),
            )
        )
    return out


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------

def solve_many(
    instances: Iterable[Instance],
    power: PowerFunction,
    budgets: float | Sequence[float],
    solver: str = "laptop",
    workers: int = 1,
    chunk_size: int | None = None,
) -> list[BatchResult]:
    """Solve many instances with one solver, optionally across processes.

    Parameters
    ----------
    instances:
        The problem instances.
    power:
        Shared power function (must be picklable for ``workers > 1``; the
        built-in power functions are).
    budgets:
        One budget per instance, or a single scalar broadcast to all.
        Interpreted per solver (energy budget, makespan target, ...).
    solver:
        A key of :data:`SOLVERS`.
    workers:
        ``<= 1`` solves serially in-process; otherwise a process pool with
        this many workers.  Results are identical either way.
    chunk_size:
        Items per worker task; defaults to ``ceil(len / (workers * 4))`` so
        each worker gets several chunks for load balancing.

    Returns
    -------
    list[BatchResult]
        In input order (``result[i].index == i``), deterministically.
    """
    if solver not in SOLVERS:
        raise InvalidInstanceError(
            f"unknown batch solver {solver!r}; known solvers: {sorted(SOLVERS)}"
        )
    instance_list = list(instances)
    count = len(instance_list)
    if count == 0:
        return []
    if np.isscalar(budgets):
        budget_list = [float(budgets)] * count  # type: ignore[arg-type]
    else:
        budget_list = [float(b) for b in budgets]  # type: ignore[union-attr]
        if len(budget_list) != count:
            raise InvalidInstanceError(
                f"got {len(budget_list)} budgets for {count} instances; "
                "pass one per instance or a single scalar"
            )
    items = list(zip(range(count), instance_list, budget_list))

    if workers <= 1:
        return _solve_chunk((solver, power, items))

    if chunk_size is None:
        chunk_size = max(1, math.ceil(count / (workers * 4)))
    chunks = [items[i : i + chunk_size] for i in range(0, count, chunk_size)]
    payloads = [(solver, power, chunk) for chunk in chunks]
    max_workers = min(workers, len(chunks))
    results: list[BatchResult] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        # pool.map preserves submission order, so flattening the chunk
        # results reconstructs the input order exactly.
        for chunk_result in pool.map(_solve_chunk, payloads):
            results.extend(chunk_result)
    return results

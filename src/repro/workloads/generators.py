"""Synthetic workload generators.

The paper is a theory paper and reports no traces, so its figures use tiny
hand-constructed instances (provided in :mod:`repro.workloads.paper_instances`).
The benchmarks additionally need families of synthetic instances to measure
scaling behaviour, approximation gaps and online/offline energy ratios; this
module provides deterministic (seeded) generators for them:

* :func:`poisson_instance` -- exponential inter-arrival times, configurable
  work distribution (uniform / exponential / Pareto-heavy-tailed),
* :func:`bursty_instance` -- arrivals clustered into bursts separated by
  quiet gaps, the regime where the block structure of Section 3 is rich,
* :func:`equal_work_instance` -- equal-work jobs with Poisson arrivals (the
  model of the flow and multiprocessor results),
* :func:`partition_elements` -- integer multisets for the Theorem 11
  reduction, with a switch for planted yes-instances and no-instances,
* :func:`deadline_instance` -- jobs with laxity-controlled deadlines for the
  YDS/online extension experiments,
* :func:`staircase_deadline_instance` / :func:`nested_interval_instance` --
  adversarial deadline workloads (releases accumulating against a common
  deadline, and nested feasibility windows) in the regimes where the online
  algorithms' empirical competitive ratios are known to be bad,
* :func:`day_night_instance` / :func:`heavy_tail_instance` /
  :func:`mmpp_instance` -- trace families for the :mod:`repro.sim` replay
  driver: periodic day/night rate modulation, heavy-tailed (Pareto) works and
  inter-arrival gaps, and a two-state Markov-modulated Poisson process.  All
  three carry laxity-controlled deadlines so the online algorithms apply.

All generators take an explicit ``seed`` and are pure functions of their
arguments, so every benchmark run is reproducible.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from ..core.job import Instance
from ..exceptions import InvalidInstanceError

__all__ = [
    "poisson_instance",
    "bursty_instance",
    "equal_work_instance",
    "partition_elements",
    "deadline_instance",
    "zero_release_instance",
    "staircase_deadline_instance",
    "nested_interval_instance",
    "day_night_instance",
    "heavy_tail_instance",
    "mmpp_instance",
]

WorkDistribution = Literal["uniform", "exponential", "pareto"]


def _draw_works(
    rng: np.random.Generator, n: int, distribution: WorkDistribution, mean_work: float
) -> np.ndarray:
    if mean_work <= 0:
        raise InvalidInstanceError("mean_work must be positive")
    if distribution == "uniform":
        works = rng.uniform(0.2 * mean_work, 1.8 * mean_work, n)
    elif distribution == "exponential":
        works = rng.exponential(mean_work, n)
    elif distribution == "pareto":
        # Pareto with shape 2.5 has a finite mean; rescale to the target mean.
        shape = 2.5
        raw = rng.pareto(shape, n) + 1.0
        works = raw * mean_work * (shape - 1.0) / shape
    else:  # pragma: no cover - guarded by Literal
        raise InvalidInstanceError(f"unknown work distribution {distribution!r}")
    return np.maximum(works, 1e-3 * mean_work)


def poisson_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs with exponential inter-arrival times and configurable works."""
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if arrival_rate <= 0:
        raise InvalidInstanceError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        releases, works, name=name or f"poisson-n{n_jobs}-seed{seed}"
    )


def bursty_instance(
    n_jobs: int,
    seed: int,
    burst_size: int = 4,
    burst_span: float = 0.5,
    gap: float = 5.0,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs arriving in bursts: ``burst_size`` releases within ``burst_span``, then a quiet ``gap``."""
    if n_jobs <= 0 or burst_size <= 0:
        raise InvalidInstanceError("n_jobs and burst_size must be positive")
    rng = np.random.default_rng(seed)
    releases = []
    t = 0.0
    while len(releases) < n_jobs:
        within = np.sort(rng.uniform(0.0, burst_span, burst_size))
        for offset in within:
            releases.append(t + offset)
            if len(releases) == n_jobs:
                break
        t += gap
    releases = np.array(releases)
    releases -= releases[0]
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        releases, works, name=name or f"bursty-n{n_jobs}-seed{seed}"
    )


def equal_work_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    work: float = 1.0,
    name: str | None = None,
) -> Instance:
    """Equal-work jobs with Poisson arrivals (the Section 4/5 model)."""
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    return Instance.equal_work(
        releases, work=work, name=name or f"equal-work-n{n_jobs}-seed{seed}"
    )


def zero_release_instance(
    n_jobs: int,
    seed: int,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Unequal-work jobs all released at time zero (the Theorem 11 regime)."""
    rng = np.random.default_rng(seed)
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        np.zeros(n_jobs), works, name=name or f"zero-release-n{n_jobs}-seed{seed}"
    )


def partition_elements(
    n_elements: int,
    seed: int,
    max_value: int = 50,
    planted_yes: bool = True,
) -> list[int]:
    """Integer multisets for the Partition reduction of Theorem 11.

    Always returns exactly ``n_elements`` elements in ``[1, max_value]``.
    With ``planted_yes`` the multiset splits into two parts of equal sum (so
    a perfect partition certainly exists): for even ``n`` the parts are two
    copies of the same draws; for odd ``n`` one drawn element is split into
    two unequal positive parts (``1`` and ``v - 1``), which preserves the
    equal-sum plant while adding the extra element.  Otherwise elements are
    drawn at random and the total is forced odd, so no perfect partition can
    exist.
    """
    if n_elements < 2:
        raise InvalidInstanceError("need at least two elements")
    rng = np.random.default_rng(seed)
    if planted_yes:
        if n_elements % 2 == 1:
            if max_value < 3:
                raise InvalidInstanceError(
                    "planted yes-instances of odd size need max_value >= 3 "
                    "(one element is split into two unequal positive parts)"
                )
            # draw (n-1)//2 values and mirror them, then split the first
            # mirrored copy v into 1 and v-1: the sums stay equal and the
            # result has exactly n elements — no trimming, no retries
            splittable = int(rng.integers(3, max_value + 1))
            rest = [
                int(rng.integers(1, max_value + 1))
                for _ in range(n_elements // 2 - 1)
            ]
            half = [splittable] + rest
            other = [1, splittable - 1] + rest
            return half + other
        half = [int(rng.integers(1, max_value + 1)) for _ in range(n_elements // 2)]
        return half + list(half)
    elements = [int(rng.integers(1, max_value + 1)) for _ in range(n_elements)]
    if sum(elements) % 2 == 0:
        if max_value < 2:
            raise InvalidInstanceError(
                "no-instances need max_value >= 2 when n_elements is even "
                "(an all-ones multiset of even size cannot have an odd total)"
            )
        # flip the total's parity without leaving [1, max_value]
        elements[0] += 1 if elements[0] < max_value else -1
    return elements


def staircase_deadline_instance(
    n_jobs: int,
    seed: int,
    horizon: float = 1.0,
    decay: float = 0.75,
    work_jitter: float = 0.2,
    name: str | None = None,
) -> Instance:
    """Releases accumulating geometrically against a (nearly) common deadline.

    Job ``i`` is released at ``horizon * (1 - decay**i)`` with deadline
    ``horizon`` and work proportional to its remaining window
    ``horizon * decay**i`` (times a seeded jitter factor).  Every arrival
    therefore lands after the previous plan assumed the work was over,
    shrinking the laxity staircase-style — the adversarial regime of the
    classic ``alpha**alpha`` lower-bound construction for Optimal Available,
    where the online planner keeps discovering it ran too slowly.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    if not 0.0 < decay < 1.0:
        raise InvalidInstanceError("decay must lie strictly between 0 and 1")
    if not 0.0 <= work_jitter < 1.0:
        raise InvalidInstanceError("work_jitter must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    # cap the geometric span at six orders of magnitude, spread over all
    # jobs: windows below ~1e-6 * horizon would fall under the solvers'
    # absolute work/time thresholds (and eventually double-precision
    # resolution next to `horizon`) instead of stressing the planner
    decay = max(decay, 10.0 ** (-6.0 / max(n_jobs - 1, 1)))
    steps = decay ** np.arange(n_jobs)
    releases = horizon * (1.0 - steps)
    windows = horizon * steps  # deadline - release, strictly positive
    jitter = rng.uniform(1.0 - work_jitter, 1.0 + work_jitter, n_jobs)
    works = windows * jitter
    deadlines = np.full(n_jobs, float(horizon))
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"staircase-n{n_jobs}-seed{seed}",
    )


def nested_interval_instance(
    n_jobs: int,
    seed: int,
    horizon: float = 2.0,
    shrink: float = 0.65,
    work_jitter: float = 0.2,
    name: str | None = None,
) -> Instance:
    """Strictly nested feasibility windows sharing one centre.

    Job ``i`` has the window ``[c - h_i, c + h_i]`` with ``c = horizon / 2``
    and half-widths shrinking geometrically, and work proportional to its
    window length (times a seeded jitter factor).  Inner jobs force high
    speeds near the centre while the outer jobs' average rates pile on top —
    the nested-interval regime in which Average Rate's
    ``2**(alpha-1) * alpha**alpha`` competitive bound is approached.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    if not 0.0 < shrink < 1.0:
        raise InvalidInstanceError("shrink must lie strictly between 0 and 1")
    if not 0.0 <= work_jitter < 1.0:
        raise InvalidInstanceError("work_jitter must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    centre = 0.5 * horizon
    # same six-orders-of-magnitude cap as the staircase family (see there)
    shrink = max(shrink, 10.0 ** (-6.0 / max(n_jobs - 1, 1)))
    half_widths = centre * shrink ** np.arange(n_jobs)
    releases = centre - half_widths
    deadlines = centre + half_widths
    jitter = rng.uniform(1.0 - work_jitter, 1.0 + work_jitter, n_jobs)
    works = 2.0 * half_widths * jitter
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"nested-n{n_jobs}-seed{seed}",
    )


def _laxity_deadlines(
    releases: np.ndarray, seed: int, laxity: float, n_jobs: int
) -> np.ndarray:
    """Deadlines ``release + Uniform(0.5, 1.5) * laxity`` (shared idiom).

    Uses ``seed + 1`` for the slack stream, matching
    :func:`deadline_instance`, so arrival draws and slack draws stay
    decoupled: changing the arrival process does not re-shuffle slacks.
    """
    if laxity <= 0:
        raise InvalidInstanceError("laxity must be positive")
    rng = np.random.default_rng(seed + 1)
    return releases + rng.uniform(0.5, 1.5, n_jobs) * laxity


def day_night_instance(
    n_jobs: int,
    seed: int,
    period: float = 10.0,
    day_fraction: float = 0.5,
    day_rate: float = 2.0,
    night_rate: float = 0.3,
    mean_work: float = 1.0,
    laxity: float = 3.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Periodic day/night arrivals: a non-homogeneous Poisson process.

    The intensity alternates between ``day_rate`` on
    ``[k * period, k * period + day_fraction * period)`` and ``night_rate``
    for the rest of each period.  Arrivals are generated by inversion: unit
    exponential increments are mapped through the inverse of the integrated
    rate, walked piecewise across the day/night boundaries, so the trace is a
    pure function of ``seed``.  Deadlines follow the
    :func:`deadline_instance` laxity convention.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if period <= 0:
        raise InvalidInstanceError("period must be positive")
    if not 0.0 < day_fraction < 1.0:
        raise InvalidInstanceError("day_fraction must lie strictly between 0 and 1")
    if day_rate <= 0 or night_rate <= 0:
        raise InvalidInstanceError("day_rate and night_rate must be positive")
    rng = np.random.default_rng(seed)
    increments = rng.exponential(1.0, n_jobs)
    day_span = day_fraction * period
    releases = np.empty(n_jobs)
    t = 0.0
    for i, target in enumerate(increments):
        # consume `target` units of integrated rate starting from time t,
        # stepping through day/night segment boundaries
        remaining = target
        while True:
            phase = t % period
            if phase < day_span:
                rate, boundary = day_rate, day_span - phase
            else:
                rate, boundary = night_rate, period - phase
            capacity = rate * boundary
            if remaining <= capacity:
                t += remaining / rate
                break
            remaining -= capacity
            t += boundary
        releases[i] = t
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    deadlines = _laxity_deadlines(releases, seed, laxity, n_jobs)
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"day-night-n{n_jobs}-seed{seed}",
    )


def heavy_tail_instance(
    n_jobs: int,
    seed: int,
    gap_shape: float = 1.5,
    mean_gap: float = 1.0,
    mean_work: float = 1.0,
    laxity: float = 4.0,
    name: str | None = None,
) -> Instance:
    """Heavy-tailed bursty arrivals: Pareto inter-arrival gaps *and* works.

    Both the gaps and the works are Pareto with infinite variance
    (``gap_shape`` defaults to 1.5; works always use the shared
    ``"pareto"`` draw of :func:`_draw_works`), so occasional huge gaps
    separate clusters of closely-spaced jobs and occasional huge jobs land
    inside them -- the regime where static/sleep power and speed clamping
    both matter.  Deadlines follow the :func:`deadline_instance` laxity
    convention with a slightly larger default laxity so the big jobs stay
    feasible at realistic maximum speeds.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if gap_shape <= 1.0:
        raise InvalidInstanceError("gap_shape must exceed 1 (finite mean gaps)")
    if mean_gap <= 0:
        raise InvalidInstanceError("mean_gap must be positive")
    rng = np.random.default_rng(seed)
    # Lomax/Pareto-II draws rescaled to the requested mean gap
    raw = rng.pareto(gap_shape, n_jobs) + 1.0
    gaps = raw * mean_gap * (gap_shape - 1.0) / gap_shape
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    works = _draw_works(rng, n_jobs, "pareto", mean_work)
    deadlines = _laxity_deadlines(releases, seed, laxity, n_jobs)
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"heavy-tail-n{n_jobs}-seed{seed}",
    )


def mmpp_instance(
    n_jobs: int,
    seed: int,
    rates: tuple[float, float] = (3.0, 0.3),
    mean_dwell: tuple[float, float] = (2.0, 4.0),
    mean_work: float = 1.0,
    laxity: float = 3.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Two-state Markov-modulated Poisson arrivals.

    A hidden state alternates between 0 and 1 with exponential dwell times
    ``mean_dwell[state]``; while in state ``i`` arrivals are Poisson with
    rate ``rates[i]``.  Generated by competing exponentials (next arrival vs
    next state flip), so the trace is a pure function of ``seed``.  Deadlines
    follow the :func:`deadline_instance` laxity convention.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if min(rates) <= 0 or min(mean_dwell) <= 0:
        raise InvalidInstanceError("rates and mean_dwell must be positive")
    rng = np.random.default_rng(seed)
    releases = np.empty(n_jobs)
    t = 0.0
    state = 0
    flip_at = t + rng.exponential(mean_dwell[state])
    produced = 0
    while produced < n_jobs:
        arrival_gap = rng.exponential(1.0 / rates[state])
        if t + arrival_gap < flip_at:
            t += arrival_gap
            releases[produced] = t
            produced += 1
        else:
            t = flip_at
            state = 1 - state
            flip_at = t + rng.exponential(mean_dwell[state])
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    deadlines = _laxity_deadlines(releases, seed, laxity, n_jobs)
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"mmpp-n{n_jobs}-seed{seed}",
    )


def deadline_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    mean_work: float = 1.0,
    laxity: float = 3.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs with deadlines ``release + Uniform(0.5, 1.5) * laxity`` for the YDS/online experiments."""
    if laxity <= 0:
        raise InvalidInstanceError("laxity must be positive")
    base = poisson_instance(
        n_jobs,
        seed,
        arrival_rate=arrival_rate,
        mean_work=mean_work,
        work_distribution=work_distribution,
    )
    rng = np.random.default_rng(seed + 1)
    slack = rng.uniform(0.5, 1.5, n_jobs) * laxity
    deadlines = base.releases + slack
    return Instance.from_arrays(
        base.releases,
        base.works,
        deadlines=deadlines,
        name=name or f"deadline-n{n_jobs}-seed{seed}",
    )

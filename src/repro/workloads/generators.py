"""Synthetic workload generators.

The paper is a theory paper and reports no traces, so its figures use tiny
hand-constructed instances (provided in :mod:`repro.workloads.paper_instances`).
The benchmarks additionally need families of synthetic instances to measure
scaling behaviour, approximation gaps and online/offline energy ratios; this
module provides deterministic (seeded) generators for them:

* :func:`poisson_instance` -- exponential inter-arrival times, configurable
  work distribution (uniform / exponential / Pareto-heavy-tailed),
* :func:`bursty_instance` -- arrivals clustered into bursts separated by
  quiet gaps, the regime where the block structure of Section 3 is rich,
* :func:`equal_work_instance` -- equal-work jobs with Poisson arrivals (the
  model of the flow and multiprocessor results),
* :func:`partition_elements` -- integer multisets for the Theorem 11
  reduction, with a switch for planted yes-instances and no-instances,
* :func:`deadline_instance` -- jobs with laxity-controlled deadlines for the
  YDS/online extension experiments,
* :func:`staircase_deadline_instance` / :func:`nested_interval_instance` --
  adversarial deadline workloads (releases accumulating against a common
  deadline, and nested feasibility windows) in the regimes where the online
  algorithms' empirical competitive ratios are known to be bad.

All generators take an explicit ``seed`` and are pure functions of their
arguments, so every benchmark run is reproducible.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from ..core.job import Instance
from ..exceptions import InvalidInstanceError

__all__ = [
    "poisson_instance",
    "bursty_instance",
    "equal_work_instance",
    "partition_elements",
    "deadline_instance",
    "zero_release_instance",
    "staircase_deadline_instance",
    "nested_interval_instance",
]

WorkDistribution = Literal["uniform", "exponential", "pareto"]


def _draw_works(
    rng: np.random.Generator, n: int, distribution: WorkDistribution, mean_work: float
) -> np.ndarray:
    if mean_work <= 0:
        raise InvalidInstanceError("mean_work must be positive")
    if distribution == "uniform":
        works = rng.uniform(0.2 * mean_work, 1.8 * mean_work, n)
    elif distribution == "exponential":
        works = rng.exponential(mean_work, n)
    elif distribution == "pareto":
        # Pareto with shape 2.5 has a finite mean; rescale to the target mean.
        shape = 2.5
        raw = rng.pareto(shape, n) + 1.0
        works = raw * mean_work * (shape - 1.0) / shape
    else:  # pragma: no cover - guarded by Literal
        raise InvalidInstanceError(f"unknown work distribution {distribution!r}")
    return np.maximum(works, 1e-3 * mean_work)


def poisson_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs with exponential inter-arrival times and configurable works."""
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if arrival_rate <= 0:
        raise InvalidInstanceError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        releases, works, name=name or f"poisson-n{n_jobs}-seed{seed}"
    )


def bursty_instance(
    n_jobs: int,
    seed: int,
    burst_size: int = 4,
    burst_span: float = 0.5,
    gap: float = 5.0,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs arriving in bursts: ``burst_size`` releases within ``burst_span``, then a quiet ``gap``."""
    if n_jobs <= 0 or burst_size <= 0:
        raise InvalidInstanceError("n_jobs and burst_size must be positive")
    rng = np.random.default_rng(seed)
    releases = []
    t = 0.0
    while len(releases) < n_jobs:
        within = np.sort(rng.uniform(0.0, burst_span, burst_size))
        for offset in within:
            releases.append(t + offset)
            if len(releases) == n_jobs:
                break
        t += gap
    releases = np.array(releases)
    releases -= releases[0]
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        releases, works, name=name or f"bursty-n{n_jobs}-seed{seed}"
    )


def equal_work_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    work: float = 1.0,
    name: str | None = None,
) -> Instance:
    """Equal-work jobs with Poisson arrivals (the Section 4/5 model)."""
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    return Instance.equal_work(
        releases, work=work, name=name or f"equal-work-n{n_jobs}-seed{seed}"
    )


def zero_release_instance(
    n_jobs: int,
    seed: int,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Unequal-work jobs all released at time zero (the Theorem 11 regime)."""
    rng = np.random.default_rng(seed)
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        np.zeros(n_jobs), works, name=name or f"zero-release-n{n_jobs}-seed{seed}"
    )


def partition_elements(
    n_elements: int,
    seed: int,
    max_value: int = 50,
    planted_yes: bool = True,
) -> list[int]:
    """Integer multisets for the Partition reduction of Theorem 11.

    Always returns exactly ``n_elements`` elements in ``[1, max_value]``.
    With ``planted_yes`` the multiset splits into two parts of equal sum (so
    a perfect partition certainly exists): for even ``n`` the parts are two
    copies of the same draws; for odd ``n`` one drawn element is split into
    two unequal positive parts (``1`` and ``v - 1``), which preserves the
    equal-sum plant while adding the extra element.  Otherwise elements are
    drawn at random and the total is forced odd, so no perfect partition can
    exist.
    """
    if n_elements < 2:
        raise InvalidInstanceError("need at least two elements")
    rng = np.random.default_rng(seed)
    if planted_yes:
        if n_elements % 2 == 1:
            if max_value < 3:
                raise InvalidInstanceError(
                    "planted yes-instances of odd size need max_value >= 3 "
                    "(one element is split into two unequal positive parts)"
                )
            # draw (n-1)//2 values and mirror them, then split the first
            # mirrored copy v into 1 and v-1: the sums stay equal and the
            # result has exactly n elements — no trimming, no retries
            splittable = int(rng.integers(3, max_value + 1))
            rest = [
                int(rng.integers(1, max_value + 1))
                for _ in range(n_elements // 2 - 1)
            ]
            half = [splittable] + rest
            other = [1, splittable - 1] + rest
            return half + other
        half = [int(rng.integers(1, max_value + 1)) for _ in range(n_elements // 2)]
        return half + list(half)
    elements = [int(rng.integers(1, max_value + 1)) for _ in range(n_elements)]
    if sum(elements) % 2 == 0:
        if max_value < 2:
            raise InvalidInstanceError(
                "no-instances need max_value >= 2 when n_elements is even "
                "(an all-ones multiset of even size cannot have an odd total)"
            )
        # flip the total's parity without leaving [1, max_value]
        elements[0] += 1 if elements[0] < max_value else -1
    return elements


def staircase_deadline_instance(
    n_jobs: int,
    seed: int,
    horizon: float = 1.0,
    decay: float = 0.75,
    work_jitter: float = 0.2,
    name: str | None = None,
) -> Instance:
    """Releases accumulating geometrically against a (nearly) common deadline.

    Job ``i`` is released at ``horizon * (1 - decay**i)`` with deadline
    ``horizon`` and work proportional to its remaining window
    ``horizon * decay**i`` (times a seeded jitter factor).  Every arrival
    therefore lands after the previous plan assumed the work was over,
    shrinking the laxity staircase-style — the adversarial regime of the
    classic ``alpha**alpha`` lower-bound construction for Optimal Available,
    where the online planner keeps discovering it ran too slowly.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    if not 0.0 < decay < 1.0:
        raise InvalidInstanceError("decay must lie strictly between 0 and 1")
    if not 0.0 <= work_jitter < 1.0:
        raise InvalidInstanceError("work_jitter must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    # cap the geometric span at six orders of magnitude, spread over all
    # jobs: windows below ~1e-6 * horizon would fall under the solvers'
    # absolute work/time thresholds (and eventually double-precision
    # resolution next to `horizon`) instead of stressing the planner
    decay = max(decay, 10.0 ** (-6.0 / max(n_jobs - 1, 1)))
    steps = decay ** np.arange(n_jobs)
    releases = horizon * (1.0 - steps)
    windows = horizon * steps  # deadline - release, strictly positive
    jitter = rng.uniform(1.0 - work_jitter, 1.0 + work_jitter, n_jobs)
    works = windows * jitter
    deadlines = np.full(n_jobs, float(horizon))
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"staircase-n{n_jobs}-seed{seed}",
    )


def nested_interval_instance(
    n_jobs: int,
    seed: int,
    horizon: float = 2.0,
    shrink: float = 0.65,
    work_jitter: float = 0.2,
    name: str | None = None,
) -> Instance:
    """Strictly nested feasibility windows sharing one centre.

    Job ``i`` has the window ``[c - h_i, c + h_i]`` with ``c = horizon / 2``
    and half-widths shrinking geometrically, and work proportional to its
    window length (times a seeded jitter factor).  Inner jobs force high
    speeds near the centre while the outer jobs' average rates pile on top —
    the nested-interval regime in which Average Rate's
    ``2**(alpha-1) * alpha**alpha`` competitive bound is approached.
    """
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    if not 0.0 < shrink < 1.0:
        raise InvalidInstanceError("shrink must lie strictly between 0 and 1")
    if not 0.0 <= work_jitter < 1.0:
        raise InvalidInstanceError("work_jitter must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    centre = 0.5 * horizon
    # same six-orders-of-magnitude cap as the staircase family (see there)
    shrink = max(shrink, 10.0 ** (-6.0 / max(n_jobs - 1, 1)))
    half_widths = centre * shrink ** np.arange(n_jobs)
    releases = centre - half_widths
    deadlines = centre + half_widths
    jitter = rng.uniform(1.0 - work_jitter, 1.0 + work_jitter, n_jobs)
    works = 2.0 * half_widths * jitter
    return Instance.from_arrays(
        releases,
        works,
        deadlines=deadlines,
        name=name or f"nested-n{n_jobs}-seed{seed}",
    )


def deadline_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    mean_work: float = 1.0,
    laxity: float = 3.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs with deadlines ``release + Uniform(0.5, 1.5) * laxity`` for the YDS/online experiments."""
    if laxity <= 0:
        raise InvalidInstanceError("laxity must be positive")
    base = poisson_instance(
        n_jobs,
        seed,
        arrival_rate=arrival_rate,
        mean_work=mean_work,
        work_distribution=work_distribution,
    )
    rng = np.random.default_rng(seed + 1)
    slack = rng.uniform(0.5, 1.5, n_jobs) * laxity
    deadlines = base.releases + slack
    return Instance.from_arrays(
        base.releases,
        base.works,
        deadlines=deadlines,
        name=name or f"deadline-n{n_jobs}-seed{seed}",
    )

"""Synthetic workload generators.

The paper is a theory paper and reports no traces, so its figures use tiny
hand-constructed instances (provided in :mod:`repro.workloads.paper_instances`).
The benchmarks additionally need families of synthetic instances to measure
scaling behaviour, approximation gaps and online/offline energy ratios; this
module provides deterministic (seeded) generators for them:

* :func:`poisson_instance` -- exponential inter-arrival times, configurable
  work distribution (uniform / exponential / Pareto-heavy-tailed),
* :func:`bursty_instance` -- arrivals clustered into bursts separated by
  quiet gaps, the regime where the block structure of Section 3 is rich,
* :func:`equal_work_instance` -- equal-work jobs with Poisson arrivals (the
  model of the flow and multiprocessor results),
* :func:`partition_elements` -- integer multisets for the Theorem 11
  reduction, with a switch for planted yes-instances and no-instances,
* :func:`deadline_instance` -- jobs with laxity-controlled deadlines for the
  YDS/online extension experiments.

All generators take an explicit ``seed`` and are pure functions of their
arguments, so every benchmark run is reproducible.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from ..core.job import Instance
from ..exceptions import InvalidInstanceError

__all__ = [
    "poisson_instance",
    "bursty_instance",
    "equal_work_instance",
    "partition_elements",
    "deadline_instance",
    "zero_release_instance",
]

WorkDistribution = Literal["uniform", "exponential", "pareto"]


def _draw_works(
    rng: np.random.Generator, n: int, distribution: WorkDistribution, mean_work: float
) -> np.ndarray:
    if mean_work <= 0:
        raise InvalidInstanceError("mean_work must be positive")
    if distribution == "uniform":
        works = rng.uniform(0.2 * mean_work, 1.8 * mean_work, n)
    elif distribution == "exponential":
        works = rng.exponential(mean_work, n)
    elif distribution == "pareto":
        # Pareto with shape 2.5 has a finite mean; rescale to the target mean.
        shape = 2.5
        raw = rng.pareto(shape, n) + 1.0
        works = raw * mean_work * (shape - 1.0) / shape
    else:  # pragma: no cover - guarded by Literal
        raise InvalidInstanceError(f"unknown work distribution {distribution!r}")
    return np.maximum(works, 1e-3 * mean_work)


def poisson_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs with exponential inter-arrival times and configurable works."""
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    if arrival_rate <= 0:
        raise InvalidInstanceError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        releases, works, name=name or f"poisson-n{n_jobs}-seed{seed}"
    )


def bursty_instance(
    n_jobs: int,
    seed: int,
    burst_size: int = 4,
    burst_span: float = 0.5,
    gap: float = 5.0,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs arriving in bursts: ``burst_size`` releases within ``burst_span``, then a quiet ``gap``."""
    if n_jobs <= 0 or burst_size <= 0:
        raise InvalidInstanceError("n_jobs and burst_size must be positive")
    rng = np.random.default_rng(seed)
    releases = []
    t = 0.0
    while len(releases) < n_jobs:
        within = np.sort(rng.uniform(0.0, burst_span, burst_size))
        for offset in within:
            releases.append(t + offset)
            if len(releases) == n_jobs:
                break
        t += gap
    releases = np.array(releases)
    releases -= releases[0]
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        releases, works, name=name or f"bursty-n{n_jobs}-seed{seed}"
    )


def equal_work_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    work: float = 1.0,
    name: str | None = None,
) -> Instance:
    """Equal-work jobs with Poisson arrivals (the Section 4/5 model)."""
    if n_jobs <= 0:
        raise InvalidInstanceError("n_jobs must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate, n_jobs)
    releases = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    return Instance.equal_work(
        releases, work=work, name=name or f"equal-work-n{n_jobs}-seed{seed}"
    )


def zero_release_instance(
    n_jobs: int,
    seed: int,
    mean_work: float = 1.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Unequal-work jobs all released at time zero (the Theorem 11 regime)."""
    rng = np.random.default_rng(seed)
    works = _draw_works(rng, n_jobs, work_distribution, mean_work)
    return Instance.from_arrays(
        np.zeros(n_jobs), works, name=name or f"zero-release-n{n_jobs}-seed{seed}"
    )


def partition_elements(
    n_elements: int,
    seed: int,
    max_value: int = 50,
    planted_yes: bool = True,
) -> list[int]:
    """Integer multisets for the Partition reduction of Theorem 11.

    With ``planted_yes`` the multiset is built as two halves of equal sum (so a
    perfect partition certainly exists); otherwise elements are drawn at
    random and the total is forced odd, so no perfect partition can exist.
    """
    if n_elements < 2:
        raise InvalidInstanceError("need at least two elements")
    rng = np.random.default_rng(seed)
    if planted_yes:
        half = [int(rng.integers(1, max_value + 1)) for _ in range(n_elements // 2)]
        other = list(half)
        if n_elements % 2 == 1:
            # keep the sums equal by splitting one element into two halves
            value = int(rng.integers(2, max_value + 1))
            even = value if value % 2 == 0 else value + 1
            half.append(even)
            other.extend([even // 2, even // 2])
            elements = half + other
            elements = elements[:n_elements] if len(elements) > n_elements else elements
            # fall back to an even-sized planted instance if trimming broke the plant
            if sum(elements[: len(elements) // 2]) != sum(elements[len(elements) // 2:]):
                return partition_elements(n_elements + 1, seed, max_value, planted_yes)
            return elements
        return half + other
    elements = [int(rng.integers(1, max_value + 1)) for _ in range(n_elements)]
    if sum(elements) % 2 == 0:
        elements[0] += 1
    return elements


def deadline_instance(
    n_jobs: int,
    seed: int,
    arrival_rate: float = 1.0,
    mean_work: float = 1.0,
    laxity: float = 3.0,
    work_distribution: WorkDistribution = "uniform",
    name: str | None = None,
) -> Instance:
    """Jobs with deadlines ``release + Uniform(0.5, 1.5) * laxity`` for the YDS/online experiments."""
    if laxity <= 0:
        raise InvalidInstanceError("laxity must be positive")
    base = poisson_instance(
        n_jobs,
        seed,
        arrival_rate=arrival_rate,
        mean_work=mean_work,
        work_distribution=work_distribution,
    )
    rng = np.random.default_rng(seed + 1)
    slack = rng.uniform(0.5, 1.5, n_jobs) * laxity
    deadlines = base.releases + slack
    return Instance.from_arrays(
        base.releases,
        base.works,
        deadlines=deadlines,
        name=name or f"deadline-n{n_jobs}-seed{seed}",
    )

"""The concrete instances used in the paper's figures and proofs.

* :func:`figure1_instance` -- the three-job instance of Figures 1-3:
  ``r = (0, 5, 6)``, ``w = (5, 2, 1)``, ``power = speed**3``.  Its
  non-dominated curve has configuration changes at energies 8 and 17.
* :func:`theorem8_instance` -- the flow-hardness instance of Theorem 8:
  three unit-work jobs released at ``(0, 0, 1)``, energy budget 9,
  ``power = speed**3``.
* :func:`theorem11_example_elements` -- a small Partition multiset used in the
  examples and tests to exercise the Theorem 11 reduction end to end.
"""

from __future__ import annotations

from ..core.job import Instance
from ..core.power import PolynomialPower

__all__ = [
    "figure1_instance",
    "figure1_power",
    "FIGURE1_BREAKPOINTS",
    "FIGURE1_ENERGY_RANGE",
    "theorem8_instance",
    "theorem8_power",
    "THEOREM8_ENERGY_BUDGET",
    "theorem11_example_elements",
]

#: Energies at which the Figure 1 instance changes block configuration.
FIGURE1_BREAKPOINTS: tuple[float, float] = (8.0, 17.0)

#: Energy axis range plotted in the paper's Figure 1 (6 to 21).
FIGURE1_ENERGY_RANGE: tuple[float, float] = (6.0, 21.0)

#: Energy budget analysed in Theorem 8.
THEOREM8_ENERGY_BUDGET: float = 9.0


def figure1_instance() -> Instance:
    """The instance plotted in Figures 1-3 of the paper."""
    return Instance.from_arrays([0.0, 5.0, 6.0], [5.0, 2.0, 1.0], name="figure1")


def figure1_power() -> PolynomialPower:
    """The power function used for Figures 1-3 (``power = speed**3``)."""
    return PolynomialPower(3.0)


def theorem8_instance() -> Instance:
    """The equal-work instance of Theorem 8 (releases 0, 0, 1; unit work)."""
    return Instance.from_arrays([0.0, 0.0, 1.0], [1.0, 1.0, 1.0], name="theorem8")


def theorem8_power() -> PolynomialPower:
    """The power function of Theorem 8 (``power = speed**3``)."""
    return PolynomialPower(3.0)


def theorem11_example_elements() -> list[int]:
    """A small Partition yes-instance used to illustrate the Theorem 11 reduction."""
    return [3, 1, 1, 2, 2, 1]

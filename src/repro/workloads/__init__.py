"""Workloads: the paper's concrete instances plus seeded synthetic generators."""

from .generators import (
    bursty_instance,
    day_night_instance,
    deadline_instance,
    equal_work_instance,
    heavy_tail_instance,
    mmpp_instance,
    nested_interval_instance,
    partition_elements,
    poisson_instance,
    staircase_deadline_instance,
    zero_release_instance,
)
from .paper_instances import (
    FIGURE1_BREAKPOINTS,
    FIGURE1_ENERGY_RANGE,
    THEOREM8_ENERGY_BUDGET,
    figure1_instance,
    figure1_power,
    theorem8_instance,
    theorem8_power,
    theorem11_example_elements,
)

__all__ = [
    "bursty_instance",
    "day_night_instance",
    "deadline_instance",
    "heavy_tail_instance",
    "mmpp_instance",
    "equal_work_instance",
    "nested_interval_instance",
    "partition_elements",
    "poisson_instance",
    "staircase_deadline_instance",
    "zero_release_instance",
    "FIGURE1_BREAKPOINTS",
    "FIGURE1_ENERGY_RANGE",
    "THEOREM8_ENERGY_BUDGET",
    "figure1_instance",
    "figure1_power",
    "theorem8_instance",
    "theorem8_power",
    "theorem11_example_elements",
]

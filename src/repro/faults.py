"""Deterministic fault injection for the serving and batch tiers.

A robustness claim is only worth what its tests can reproduce.  This module
provides *seeded, scoped* fault injectors that the production code paths
carry as an explicit :class:`FaultPlan` — no monkeypatching, no global state
— so every chaos test replays the exact same failures in the exact same
places, run after run and process after process:

* ``worker-exception`` -- a solve raises a foreign exception (a crashed
  worker),
* ``worker-hang``      -- a solve blocks far beyond any reasonable deadline
  (a hung worker; the batch engine's per-chunk timeout and the serve loop's
  request deadline are what recover from it),
* ``solver-slow``      -- a solve takes ``delay`` seconds longer than it
  should (deadline-miss pressure without a full hang),
* ``cache-write``      -- the result cache's disk store raises ``ENOSPC``
  on write (:class:`repro.cache.ResultCache` must degrade to memory-only),
* ``journal-torn``     -- the batch run journal is killed mid-line, leaving
  a torn tail the next resume must tolerate,
* ``connection-drop``  -- the serve loop's transport drops a connection
  mid-response (the loop must keep serving other connections).

Injection points decide *where* a site is consulted; a :class:`FaultRule`
decides *whether* it fires there, either at explicit ordinals (``indices``
— e.g. "instance 3 hangs", deterministic even across worker processes) or
at a seeded ``rate`` (the decision for ordinal *k* is a pure function of
``(seed, site, k)`` via SHA-256, so it is reproducible regardless of
process, thread or interleaving).

Carried by :func:`repro.batch.solve_stream`, :class:`repro.cache.ResultCache`
and :class:`repro.service.AsyncServeLoop` (``repro serve --fault-plan
plan.json`` on the command line); ``tools/chaos_smoke.py`` runs the serve
loop under a canned plan in CI.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from .exceptions import InvalidInstanceError

__all__ = [
    "SITES",
    "WORKER_EXCEPTION",
    "WORKER_HANG",
    "SOLVER_SLOW",
    "CACHE_WRITE",
    "JOURNAL_TORN",
    "CONNECTION_DROP",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
]

WORKER_EXCEPTION = "worker-exception"
WORKER_HANG = "worker-hang"
SOLVER_SLOW = "solver-slow"
CACHE_WRITE = "cache-write"
JOURNAL_TORN = "journal-torn"
CONNECTION_DROP = "connection-drop"

#: Every known injection site; a rule naming anything else is rejected.
SITES: tuple[str, ...] = (
    WORKER_EXCEPTION,
    WORKER_HANG,
    SOLVER_SLOW,
    CACHE_WRITE,
    JOURNAL_TORN,
    CONNECTION_DROP,
)


class InjectedFault(RuntimeError):
    """An injected failure (raised where the real fault would have raised).

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: real crashes
    are foreign exceptions, so injected ones must be too — the serving tier
    maps both to the stable ``internal`` error code.
    """


def _seeded_unit(seed: int, site: str, ordinal: int) -> float:
    """A uniform [0, 1) draw that is a pure function of (seed, site, ordinal).

    Hash-based rather than ``random.Random`` so the decision is identical in
    every process and thread (``hash(str)`` is salted per process; SHA-256 is
    not).
    """
    digest = hashlib.sha256(f"{seed}:{site}:{ordinal}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One scoped injector: *when* a given site should fail.

    Parameters
    ----------
    site:
        One of :data:`SITES`.
    indices:
        Explicit ordinals at which the rule fires (for batch worker sites the
        ordinal is the instance index; for serve/cache/journal sites it is
        the site's running invocation count, starting at 0).
    rate:
        Probability of firing at any ordinal not listed in ``indices``;
        decided by the plan's seed (see :func:`_seeded_unit`), so a given
        ``(seed, site, ordinal)`` always decides the same way.
    delay:
        Seconds to sleep for ``worker-hang`` / ``solver-slow`` sites
        (hang defaults to :data:`FaultPlan.HANG_DELAY` when 0).
    message:
        Text carried by the injected error.
    """

    site: str
    indices: frozenset[int] = frozenset()
    rate: float = 0.0
    delay: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise InvalidInstanceError(
                f"unknown fault site {self.site!r}; known sites: {list(SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise InvalidInstanceError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.delay < 0:
            raise InvalidInstanceError(f"fault delay must be >= 0, got {self.delay}")
        object.__setattr__(self, "indices", frozenset(int(i) for i in self.indices))

    def applies(self, ordinal: int, seed: int) -> bool:
        """Whether this rule fires at ``ordinal`` under ``seed``."""
        if ordinal in self.indices:
            return True
        if self.rate > 0.0:
            return _seeded_unit(seed, self.site, ordinal) < self.rate
        return False

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "indices": sorted(self.indices),
            "rate": self.rate,
            "delay": self.delay,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(data, Mapping):
            raise InvalidInstanceError(
                f"not a fault-rule payload: expected an object, got {type(data).__name__}"
            )
        try:
            return cls(
                site=str(data["site"]),
                indices=frozenset(int(i) for i in data.get("indices", ())),
                rate=float(data.get("rate", 0.0)),
                delay=float(data.get("delay", 0.0)),
                message=str(data.get("message", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidInstanceError(f"malformed fault rule: {exc!r}") from exc


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s the production paths consult.

    The plan is explicit state threaded through the code under test — the
    batch engine, the cache and the serve loop each accept one — so chaos is
    opt-in, scoped and reproducible.  Thread-safe; picklable (worker
    processes receive a copy whose per-site counters restart, which is why
    batch worker sites match on the *instance index*, not the counter).
    """

    #: Default sleep for ``worker-hang`` rules whose ``delay`` is 0: long
    #: enough that only a timeout ends it, short enough that an abandoned
    #: daemon thread cannot outlive a test session by much.
    HANG_DELAY = 300.0

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self.rules = tuple(
            r if isinstance(r, FaultRule) else FaultRule.from_dict(r)
            for r in self.rules
        )
        self.seed = int(self.seed)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    # -- pickling: drop the lock, reset counters (see class docstring) -----
    def __getstate__(self) -> dict[str, Any]:
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.rules = state["rules"]
        self.seed = state["seed"]
        self._lock = threading.Lock()
        self._counters = {}
        self._fired = {}

    # ------------------------------------------------------------------
    def fire(self, site: str, ordinal: int | None = None) -> FaultRule | None:
        """The rule firing at this invocation of ``site``, or ``None``.

        ``ordinal`` identifies the invocation; when omitted, the plan's own
        per-site counter is used (each call consumes one tick).  The caller
        performs the actual failure action — raise, sleep, drop — so the
        plan itself stays side-effect free.
        """
        if site not in SITES:
            raise InvalidInstanceError(
                f"unknown fault site {site!r}; known sites: {list(SITES)}"
            )
        with self._lock:
            if ordinal is None:
                ordinal = self._counters.get(site, 0)
                self._counters[site] = ordinal + 1
            for rule in self.rules:
                if rule.site == site and rule.applies(ordinal, self.seed):
                    self._fired[site] = self._fired.get(site, 0) + 1
                    return rule
        return None

    def sleep(self, rule: FaultRule) -> None:
        """Serve a hang/slow rule's delay (hangs default to ``HANG_DELAY``)."""
        delay = rule.delay
        if delay == 0.0 and rule.site == WORKER_HANG:
            delay = self.HANG_DELAY
        if delay > 0.0:
            time.sleep(delay)

    def fired(self, site: str | None = None) -> int:
        """How many times rules fired (at one site, or in total)."""
        with self._lock:
            if site is not None:
                return self._fired.get(site, 0)
            return sum(self._fired.values())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "fault-plan",
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise InvalidInstanceError(
                f"not a fault-plan payload: expected an object, got {type(data).__name__}"
            )
        if data.get("kind") != "fault-plan":
            raise InvalidInstanceError(
                f"not a fault-plan payload: kind={data.get('kind')!r}"
            )
        rules = data.get("rules", ())
        if not isinstance(rules, Iterable) or isinstance(rules, (str, bytes)):
            raise InvalidInstanceError("fault-plan 'rules' must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in rules),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (``repro serve --fault-plan``)."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise InvalidInstanceError(
                f"unreadable fault plan {path}: {exc}"
            ) from exc
        return cls.from_dict(data)

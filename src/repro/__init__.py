"""repro -- reproduction of Bunde, "Power-aware scheduling for makespan and flow" (SPAA 2006).

Subpackage map (see README.md and DESIGN.md for the full tour):

* :mod:`repro.core` -- jobs, power functions, schedules, blocks, metrics,
  trade-off curves.
* :mod:`repro.makespan` -- uniprocessor makespan: IncMerge, the non-dominated
  frontier (Figures 1-3), the server problem, reference oracles and baselines.
* :mod:`repro.flow` -- uniprocessor total flow: convex and structural solvers,
  the Theorem 8 hard instance.
* :mod:`repro.multi` -- multiprocessor scheduling: cyclic assignment
  (Theorem 10), equal-work exact/approximate solvers, the Partition reduction
  (Theorem 11), exact search, heuristics and the PTAS-style scheme.
* :mod:`repro.online` -- the YDS substrate and the online algorithms
  (AVR, OA, BKP) used for the extension experiments.
* :mod:`repro.api` -- the unified solver surface: the central
  :class:`~repro.api.SolverRegistry` plus the typed
  :class:`~repro.api.SolveRequest` / :class:`~repro.api.SolveResult`
  envelopes served by :func:`repro.solve` (``repro solve`` on the command
  line).
* :mod:`repro.batch` -- the streaming batch engine: many instances through
  one solver, optionally across worker processes, with content-addressed
  caching and resumable runs (``repro batch`` on the command line).
* :mod:`repro.cache` -- the content-addressed result cache
  (:class:`~repro.cache.ResultCache`): canonical SHA-256 request keys, an
  in-process LRU front over an optional on-disk store.
* :mod:`repro.service` -- the ``repro serve`` request loop: JSON-lines
  solve-request envelopes in, result envelopes plus cache/latency metadata
  out, over stdin/stdout or TCP; the hardened
  :class:`~repro.service.AsyncServeLoop` adds deadlines, load shedding and
  graceful drain.
* :mod:`repro.faults` -- deterministic fault injection
  (:class:`~repro.faults.FaultPlan`): seeded, scoped chaos threaded through
  the batch engine, cache and serve loop for reproducible robustness tests.
* :mod:`repro.verify` -- certificate-based verification of solve results:
  structural feasibility/accounting checks plus the per-solver optimality
  certificates declared in the registry (``repro verify`` on the command
  line, :func:`repro.api.verify` in the library).
* :mod:`repro.discrete` -- discrete speed levels: named DVFS ladders and the
  two-level / nearest quantization of continuous plans and speed profiles.
* :mod:`repro.sim` -- trace-driven discrete-event simulation: arrival traces
  (CSV/JSON-lines), machine models (static power, sleep states, discrete
  levels), the deterministic replay engine and the
  {trace x machine x algorithm} scenario matrix (``repro sim`` /
  ``repro compete --machines`` on the command line).
* :mod:`repro.workloads` -- the paper's instances and synthetic generators.
* :mod:`repro.analysis` -- derivatives, breakpoints, tables, ASCII plots.
"""

from . import (
    analysis,
    api,
    batch,
    cache,
    core,
    discrete,
    faults,
    flow,
    io,
    makespan,
    multi,
    online,
    service,
    sim,
    verify,
    workloads,
)
from .api import (
    REGISTRY,
    ProblemSpec,
    SolveRequest,
    SolveResult,
    SolverCapabilities,
    SolverRegistry,
    list_solvers,
    solve,
)
from .batch import BatchResult, solve_many, solve_stream
from .cache import ResultCache
from .faults import FaultPlan
from .core import (
    CUBE,
    SQUARE,
    Instance,
    Job,
    PolynomialPower,
    PowerFunction,
    Schedule,
    TradeoffCurve,
)

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "api",
    "batch",
    "BatchResult",
    "solve_many",
    "solve_stream",
    "cache",
    "ResultCache",
    "core",
    "discrete",
    "faults",
    "FaultPlan",
    "flow",
    "io",
    "makespan",
    "multi",
    "online",
    "service",
    "sim",
    "verify",
    "workloads",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "SolverRegistry",
    "REGISTRY",
    "solve",
    "list_solvers",
    "Instance",
    "Job",
    "PowerFunction",
    "PolynomialPower",
    "CUBE",
    "SQUARE",
    "Schedule",
    "TradeoffCurve",
    "__version__",
]

"""`repro serve`: a long-running JSON-lines solve service.

The last mile between the solver matrix and a serving system: a request loop
that stays up, answers :class:`~repro.api.SolveRequest` envelopes and never
lets one bad request take the process down.  The protocol is JSON lines —
one request envelope (:func:`repro.io.request_to_dict` form, optionally
carrying a client-chosen ``"id"``) per input line, one response object per
output line:

.. code-block:: json

    {"kind": "serve-response", "id": null,
     "result": {"kind": "solve-result", "...": "..."},
     "serve": {"cache": "hit", "latency_ms": 0.31}}

``result`` is the uniform :func:`repro.io.result_to_dict` envelope (errors
come back as structured error results with stable codes — a malformed or
unparseable line gets an ``invalid-instance`` error response, and the loop
keeps serving).  ``serve`` carries the per-request serving metadata: whether
the answer came from the content-addressed cache (``"hit"`` / ``"miss"`` /
``"off"``), the wall-clock latency (omitted when ``timing=False``, which
makes transcripts byte-reproducible), and — with verification enabled —
whether the result passed its certificate checks.

Two transports share the one loop implementation:

* :func:`serve_stream` -- stdin/stdout (or any text-stream pair); returns a
  :class:`ServeStats` tally when the input reaches EOF,
* :func:`make_tcp_server` -- a threading TCP server whose every connection
  speaks the same line protocol.

Shutdown is clean in both: EOF (or a closed connection) ends the loop
normally, and the CLI turns SIGINT into an orderly exit with a final stats
line on stderr.  Exposed on the command line as ``repro serve`` (see
:mod:`repro.cli`); the CI smoke test (``tools/serve_smoke.py``) pipes two
identical envelopes through it and expects the second to be a cache hit.
"""

from __future__ import annotations

import io
import json
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, TextIO

from .api import SolveResult
from .api import solve as api_solve
from .api import verify as api_verify
from .cache import ResultCache
from .exceptions import InvalidInstanceError, ReproError
from .io import request_from_dict, result_to_dict

__all__ = ["ServeStats", "handle_request_line", "serve_stream", "make_tcp_server"]


@dataclass
class ServeStats:
    """Tally of one serve loop (or one TCP server's lifetime)."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    cache_hits: int = 0
    verify_failures: int = 0

    def merge(self, other: "ServeStats") -> None:
        self.requests += other.requests
        self.ok += other.ok
        self.errors += other.errors
        self.cache_hits += other.cache_hits
        self.verify_failures += other.verify_failures

    def summary(self) -> str:
        """One human-readable line (the CLI prints it to stderr on shutdown)."""
        parts = [f"{self.requests} request(s)", f"{self.cache_hits} cache hit(s)"]
        if self.errors:
            parts.append(f"{self.errors} error(s)")
        if self.verify_failures:
            parts.append(f"{self.verify_failures} verification failure(s)")
        return ", ".join(parts)


def handle_request_line(
    line: str,
    cache: ResultCache | None = None,
    verify: bool = False,
    timing: bool = True,
    stats: ServeStats | None = None,
) -> dict[str, Any]:
    """Answer one protocol line; always returns a response object.

    Never raises for request reasons: unparseable JSON and malformed
    envelopes become structured error results (stable codes from
    :mod:`repro.exceptions`), solver failures come back through the
    :func:`repro.solve` serving contract, and only programming errors
    propagate.
    """
    started = time.perf_counter()
    request = None
    request_id = None
    cache_state = "off" if cache is None else "miss"
    try:
        data = json.loads(line)
        if isinstance(data, dict):
            request_id = data.get("id")
        request = request_from_dict(data)
    except json.JSONDecodeError as exc:
        result = SolveResult.failure(
            "<request>", InvalidInstanceError(f"unparseable request line: {exc}")
        )
    except ReproError as exc:
        result = SolveResult.failure("<request>", exc)
    else:
        hit = cache.get(request) if cache is not None else None
        if hit is not None:
            cache_state = "hit"
            result = hit
        else:
            result = api_solve(request)

    serve_meta: dict[str, Any] = {"cache": cache_state}
    if verify and request is not None and result.ok:
        report = api_verify(request, result)
        serve_meta["verified"] = report.ok
        if not report.ok:
            serve_meta["findings"] = list(report.codes())
            if stats is not None:
                stats.verify_failures += 1
    if (
        cache is not None
        and cache_state == "miss"
        and request is not None
        and result.ok
        and serve_meta.get("verified", True)
    ):
        # write-behind, after verification (when enabled) passed
        cache.put(request, result)
    if timing:
        serve_meta["latency_ms"] = round((time.perf_counter() - started) * 1e3, 3)

    if stats is not None:
        stats.requests += 1
        if result.ok:
            stats.ok += 1
        else:
            stats.errors += 1
        if cache_state == "hit":
            stats.cache_hits += 1
    return {
        "kind": "serve-response",
        "id": request_id,
        "result": result_to_dict(result),
        "serve": serve_meta,
    }


def serve_stream(
    in_stream: Iterable[str] | TextIO,
    out_stream: TextIO,
    cache: ResultCache | None = None,
    verify: bool = False,
    timing: bool = True,
    stats: ServeStats | None = None,
) -> ServeStats:
    """Run the request loop over a text-stream pair until EOF.

    Blank lines are skipped; every other line gets exactly one response
    line, flushed immediately so pipelined clients see answers as they are
    produced.  Returns the loop's :class:`ServeStats`; pass your own
    ``stats`` to tally in place — it stays accurate even if the loop is
    interrupted mid-stream (how the CLI reports after SIGINT).
    """
    tally = ServeStats() if stats is None else stats
    for line in in_stream:
        if not line.strip():
            continue
        response = handle_request_line(
            line, cache=cache, verify=verify, timing=timing, stats=tally
        )
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
    return tally


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    """Threading TCP transport for the line protocol (one loop per connection)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        cache: ResultCache | None,
        verify: bool,
        timing: bool,
    ) -> None:
        super().__init__(address, _ServeConnectionHandler)
        self.cache = cache
        self.verify = verify
        self.timing = timing
        self.stats = ServeStats()
        self.stats_lock = threading.Lock()


class _ServeConnectionHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via make_tcp_server
        server: _ServeTCPServer = self.server  # type: ignore[assignment]
        reader = io.TextIOWrapper(self.rfile, encoding="utf-8")
        writer = io.TextIOWrapper(self.wfile, encoding="utf-8", write_through=True)
        try:
            local = serve_stream(
                reader,
                writer,
                cache=server.cache,
                verify=server.verify,
                timing=server.timing,
            )
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-response; nothing to salvage
        with server.stats_lock:
            server.stats.merge(local)


def make_tcp_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: ResultCache | None = None,
    verify: bool = False,
    timing: bool = True,
) -> _ServeTCPServer:
    """A bound (not yet serving) TCP server speaking the serve line protocol.

    ``port=0`` binds an ephemeral port; read the actual address from
    ``server.server_address``.  Connections share one cache, so a hit can be
    served to a different client than the one that paid for the miss.  Run
    with ``server.serve_forever()`` and stop with ``server.shutdown()`` (the
    CLI maps SIGINT to exactly that); aggregate counters live in
    ``server.stats``.
    """
    return _ServeTCPServer((host, port), cache=cache, verify=verify, timing=timing)

"""`repro serve`: a long-running JSON-lines solve service.

The last mile between the solver matrix and a serving system: a request loop
that stays up, answers :class:`~repro.api.SolveRequest` envelopes and never
lets one bad request take the process down.  The protocol is JSON lines —
one request envelope (:func:`repro.io.request_to_dict` form, optionally
carrying a client-chosen ``"id"`` and a ``"deadline_ms"`` budget) per input
line, one response object per output line:

.. code-block:: json

    {"kind": "serve-response", "id": null,
     "result": {"kind": "solve-result", "...": "..."},
     "serve": {"cache": "hit", "latency_ms": 0.31}}

``result`` is the uniform :func:`repro.io.result_to_dict` envelope (errors
come back as structured error results with stable codes — a malformed or
unparseable line gets an ``invalid-instance`` error response, and the loop
keeps serving).  ``serve`` carries the per-request serving metadata: whether
the answer came from the content-addressed cache (``"hit"`` / ``"miss"`` /
``"off"``), the wall-clock latency (omitted when ``timing=False``, which
makes transcripts byte-reproducible), and — with verification enabled —
whether the result passed its certificate checks.

Two loop implementations share the protocol:

* :func:`serve_stream` -- the synchronous reference loop over any
  text-stream pair; returns a :class:`ServeStats` tally at EOF.  This is
  the byte-pinned path (``tests/golden/serve_transcript.txt``).
* :class:`AsyncServeLoop` -- the hardened asyncio server behind the
  ``repro serve`` CLI, for both stdio and TCP.  It adds the robustness
  semantics a production tier needs:

  - **deadlines** -- a request carrying ``deadline_ms`` (or the server
    default) that expires while queued or mid-solve is answered with a
    structured ``deadline-exceeded`` envelope, never a late result; a
    solve thread hung past the deadline is abandoned and replaced.
  - **load shedding** -- admission is a bounded queue; beyond
    ``max_pending`` in-flight requests, new ones are shed immediately
    with an ``overloaded`` envelope whose ``serve.retry_after_ms`` is the
    server's backoff hint (EWMA service time × queue depth).
  - **graceful drain** -- SIGTERM/SIGINT (or EOF, or a ``drain`` control
    request) stops accepting, finishes the in-flight work, flushes every
    pending response and exits cleanly; the CLI then prints one final
    stats line to stderr.
  - **control requests** -- a line like ``{"op": "stats"}`` bypasses the
    solve queue and answers immediately with a ``serve-control`` envelope
    (``stats`` returns QPS, cache hit ratio, shed/deadline-miss counts and
    p50/p99 latency; ``ping`` answers trivially; ``drain`` initiates a
    graceful drain).
  - **fault injection** -- an explicit :class:`repro.faults.FaultPlan`
    threads seeded chaos (worker exception/hang, slow solver, connection
    drop) through the loop for reproducible robustness tests
    (``tools/chaos_smoke.py`` runs a canned plan in CI).

Per-connection response order always matches request order (responses are
funnelled through one writer per connection, so concurrent clients never
see torn or reordered lines), while requests from all connections share one
admission queue, one solve pool and one cache — a hit can be served to a
different client than the one that paid for the miss.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import queue as _queue_mod
import signal
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Iterable, TextIO

from .api import REGISTRY, SolveRequest, SolveResult
from .api import solve as api_solve
from .api import verify as api_verify
from .cache import ResultCache
from .exceptions import (
    DeadlineExceededError,
    InvalidInstanceError,
    OverloadedError,
    ReproError,
)
from .faults import (
    CONNECTION_DROP,
    SOLVER_SLOW,
    WORKER_EXCEPTION,
    WORKER_HANG,
    FaultPlan,
    InjectedFault,
)
from .io import (
    ENVELOPE_CODECS,
    binary_envelope_decode,
    encode_envelope,
    request_from_dict,
    serve_response_to_dict,
)

__all__ = ["ServeStats", "handle_request_line", "serve_stream", "AsyncServeLoop"]

#: Routing modes the serve loops understand.  ``off`` preserves the legacy
#: dispatch byte-for-byte; ``sla`` reroutes accuracy-carrying requests
#: through :meth:`repro.api.SolverRegistry.route` — exact when cheap,
#: certified-approximate under pressure.
ROUTING_MODES = ("off", "sla")

#: Admission-queue bound beyond which new solve requests are shed.
DEFAULT_MAX_PENDING = 64

#: Backoff hint handed out before any solve has completed (no EWMA yet).
_DEFAULT_RETRY_AFTER_MS = 50.0

#: Hard cap on one binary request frame; a length prefix beyond this is a
#: protocol violation (or garbage) and drops the connection rather than
#: letting one client make the server allocate gigabytes.
MAX_BINARY_FRAME_BYTES = 64 * 1024 * 1024

#: The binary frame length prefix (little-endian u32, matches repro.io).
_U32_STRUCT = struct.Struct("<I")


class _ConnState:
    """Per-connection wire state: which codec each direction speaks.

    The read side switches the moment a ``codec`` op is admitted (the
    client's next frame is already in the new format); the write side
    switches only after the acceptance response has been flushed in the
    old format, so the client always reads the acknowledgement in the
    codec it negotiated *from*.
    """

    __slots__ = ("read_codec", "write_codec", "binary_capable")

    def __init__(self, binary_capable: bool = False) -> None:
        self.read_codec = "json"
        self.write_codec = "json"
        self.binary_capable = binary_capable


class _CodecSwitch:
    """A resolved response that flips the write codec once it is flushed."""

    __slots__ = ("payload", "codec")

    def __init__(self, payload: dict[str, Any], codec: str) -> None:
        self.payload = payload
        self.codec = codec


#: Marker messages a transport's ``read_message`` can yield besides text
#: lines: an already-decoded binary payload, or a frame that failed to
#: decode (served a structured error instead of killing the connection).
_FRAME = "frame"
_FRAME_ERROR = "frame-error"


@dataclass
class ServeStats:
    """Tally of one serve loop (or one async server's lifetime)."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    cache_hits: int = 0
    verify_failures: int = 0
    shed: int = 0
    deadline_misses: int = 0
    routed: int = 0

    def merge(self, other: "ServeStats") -> None:
        self.requests += other.requests
        self.ok += other.ok
        self.errors += other.errors
        self.cache_hits += other.cache_hits
        self.verify_failures += other.verify_failures
        self.shed += other.shed
        self.deadline_misses += other.deadline_misses
        self.routed += other.routed

    def summary(self) -> str:
        """One human-readable line (the CLI prints it to stderr on shutdown)."""
        parts = [f"{self.requests} request(s)", f"{self.cache_hits} cache hit(s)"]
        if self.errors:
            parts.append(f"{self.errors} error(s)")
        if self.verify_failures:
            parts.append(f"{self.verify_failures} verification failure(s)")
        if self.shed:
            parts.append(f"{self.shed} shed")
        if self.deadline_misses:
            parts.append(f"{self.deadline_misses} deadline miss(es)")
        if self.routed:
            parts.append(f"{self.routed} routed")
        return ", ".join(parts)


def _route_request(
    request: SolveRequest, latency_budget_ms: float | None = None
) -> tuple[SolveRequest, Any]:
    """Route an accuracy-carrying request; returns ``(dispatch_request, decision)``.

    ``decision`` is ``None`` when routing does not apply (no accuracy knob).
    The dispatch request is the original with only its ``solver`` replaced,
    so accuracy/latency expectations survive into verification and the
    cache key reflects the solver that actually answered.
    """
    if request.accuracy is None:
        return request, None
    decision = REGISTRY.route(request, latency_budget_ms=latency_budget_ms)
    if decision.solver == request.solver:
        return request, decision
    return dataclasses.replace(request, solver=decision.solver), decision


def handle_request_line(
    line: str,
    cache: ResultCache | None = None,
    verify: bool = False,
    timing: bool = True,
    stats: ServeStats | None = None,
    routing: str = "off",
) -> dict[str, Any]:
    """Answer one protocol line; always returns a response object.

    Never raises for request reasons: unparseable JSON and malformed
    envelopes become structured error results (stable codes from
    :mod:`repro.exceptions`), solver failures come back through the
    :func:`repro.solve` serving contract, and only programming errors
    propagate.

    ``routing="sla"`` reroutes requests that carry an ``accuracy`` target
    through the registry's cost-model router (using the request's own
    ``latency_budget_ms``; this synchronous loop has no queue pressure
    signal).  The default ``"off"`` preserves legacy dispatch byte-for-byte.
    """
    if routing not in ROUTING_MODES:
        raise InvalidInstanceError(
            f"routing must be one of {ROUTING_MODES}, got {routing!r}"
        )
    started = time.perf_counter()
    request = None
    dispatch = None
    decision = None
    request_id = None
    cache_state = "off" if cache is None else "miss"
    try:
        data = json.loads(line)
        if isinstance(data, dict):
            request_id = data.get("id")
        request = request_from_dict(data)
    except json.JSONDecodeError as exc:
        result = SolveResult.failure(
            "<request>", InvalidInstanceError(f"unparseable request line: {exc}")
        )
    except ReproError as exc:
        result = SolveResult.failure("<request>", exc)
    else:
        dispatch = request
        if routing == "sla":
            dispatch, decision = _route_request(request)
        hit = cache.get(dispatch) if cache is not None else None
        if hit is not None:
            cache_state = "hit"
            result = hit
        else:
            result = api_solve(dispatch)

    serve_meta: dict[str, Any] = {"cache": cache_state}
    if decision is not None:
        serve_meta["routed_solver"] = decision.solver
    if result.ok and result.approximation is not None:
        serve_meta["epsilon"] = result.approximation.get("epsilon")
        certificate = result.approximation.get("certificate")
        if certificate is not None:
            serve_meta["certificate"] = certificate
    if verify and dispatch is not None and result.ok:
        report = api_verify(dispatch, result)
        serve_meta["verified"] = report.ok
        if not report.ok:
            serve_meta["findings"] = list(report.codes())
            if stats is not None:
                stats.verify_failures += 1
    if (
        cache is not None
        and cache_state == "miss"
        and dispatch is not None
        and result.ok
        and serve_meta.get("verified", True)
    ):
        # write-behind, after verification (when enabled) passed
        cache.put(dispatch, result)
    if timing:
        serve_meta["latency_ms"] = round((time.perf_counter() - started) * 1e3, 3)

    if stats is not None:
        stats.requests += 1
        if result.ok:
            stats.ok += 1
        else:
            stats.errors += 1
        if cache_state == "hit":
            stats.cache_hits += 1
        if decision is not None and dispatch is not request:
            stats.routed += 1
    return serve_response_to_dict(result, request_id, serve_meta)


def serve_stream(
    in_stream: Iterable[str] | TextIO,
    out_stream: TextIO,
    cache: ResultCache | None = None,
    verify: bool = False,
    timing: bool = True,
    stats: ServeStats | None = None,
    routing: str = "off",
) -> ServeStats:
    """Run the request loop over a text-stream pair until EOF.

    Blank lines are skipped; every other line gets exactly one response
    line, flushed immediately so pipelined clients see answers as they are
    produced.  Returns the loop's :class:`ServeStats`; pass your own
    ``stats`` to tally in place — it stays accurate even if the loop is
    interrupted mid-stream (how the CLI reports after SIGINT).
    """
    tally = ServeStats() if stats is None else stats
    for line in in_stream:
        if not line.strip():
            continue
        response = handle_request_line(
            line,
            cache=cache,
            verify=verify,
            timing=timing,
            stats=tally,
            routing=routing,
        )
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
    return tally


# ----------------------------------------------------------------------
# the async serving tier
# ----------------------------------------------------------------------

class _SolvePool:
    """Daemon-thread solve pool that survives hung solves.

    ``concurrent.futures.ThreadPoolExecutor`` is the obvious tool and the
    wrong one: its workers are non-daemon, so a single hung solve would
    block interpreter exit forever.  This pool's threads are daemons, and a
    worker abandoned past its deadline is *replaced* — capacity recovers
    while the hung thread is left to finish (or sleep) in the background.
    """

    def __init__(self, threads: int) -> None:
        self._work: _queue_mod.SimpleQueue = _queue_mod.SimpleQueue()
        self._threads = max(1, int(threads))
        for _ in range(self._threads):
            self._spawn()

    def _spawn(self) -> None:
        thread = threading.Thread(
            target=self._run, daemon=True, name="repro-serve-solve"
        )
        thread.start()

    def _run(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            fn, loop, fut, token = item
            if token["abandoned"]:
                continue  # shed before it ever started; replacement already exists
            token["started"] = True
            try:
                value = fn()
            except BaseException as exc:  # delivered, not raised: daemon thread
                self._deliver(loop, fut, exc, None)
            else:
                self._deliver(loop, fut, None, value)
            if token["abandoned"]:
                return  # a replacement thread took this slot while we hung

    @staticmethod
    def _deliver(loop: asyncio.AbstractEventLoop, fut: asyncio.Future,
                 exc: BaseException | None, value: Any) -> None:
        def _set() -> None:
            if fut.done():
                return  # abandoned (cancelled by wait_for); drop the late answer
            if exc is not None:
                fut.set_exception(exc)
            else:
                fut.set_result(value)

        with contextlib.suppress(RuntimeError):  # loop already closed
            loop.call_soon_threadsafe(_set)

    def submit(
        self, loop: asyncio.AbstractEventLoop, fn: Callable[[], Any]
    ) -> tuple[asyncio.Future, dict[str, bool]]:
        """Queue ``fn``; returns ``(future, token)`` — pass the token to
        :meth:`abandon` if the future times out."""
        fut: asyncio.Future = loop.create_future()
        token = {"abandoned": False, "started": False}
        self._work.put((fn, loop, fut, token))
        return fut, token

    def abandon(self, token: dict[str, bool]) -> None:
        """Give up on a submitted job; replace its thread if it already ran."""
        token["abandoned"] = True
        if token["started"]:
            self._spawn()

    def shutdown(self) -> None:
        for _ in range(self._threads):
            self._work.put(None)


class _Pending:
    """One admitted solve request waiting in (or leaving) the queue."""

    __slots__ = ("data", "request_id", "arrival", "deadline", "deadline_ms", "future")

    def __init__(self, data: Any, request_id: Any, arrival: float,
                 deadline: float | None, deadline_ms: float | None,
                 future: asyncio.Future) -> None:
        self.data = data
        self.request_id = request_id
        self.arrival = arrival
        self.deadline = deadline
        self.deadline_ms = deadline_ms
        self.future = future


class AsyncServeLoop:
    """The hardened asyncio serve loop (see module docstring for semantics).

    One instance serves one run: :meth:`run_stream` for a text-stream pair
    (the CLI's stdio mode) or :meth:`serve_tcp` for a TCP listener; tests
    and benchmarks use :meth:`start_in_thread` / :meth:`stop` to host a TCP
    server on a background thread.  ``stats`` tallies across the run;
    :meth:`stats_snapshot` is the ``{"op": "stats"}`` payload.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        verify: bool = False,
        timing: bool = True,
        default_deadline_ms: float | None = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        solve_threads: int = 1,
        fault_plan: FaultPlan | None = None,
        routing: str = "off",
    ) -> None:
        if max_pending < 1:
            raise InvalidInstanceError(f"max_pending must be >= 1, got {max_pending}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise InvalidInstanceError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        if routing not in ROUTING_MODES:
            raise InvalidInstanceError(
                f"routing must be one of {ROUTING_MODES}, got {routing!r}"
            )
        self.routing = routing
        self.cache = cache
        self.verify = verify
        self.timing = timing
        self.default_deadline_ms = default_deadline_ms
        self.max_pending = int(max_pending)
        self.solve_threads = max(1, int(solve_threads))
        self.fault_plan = fault_plan
        self.stats = ServeStats()
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_event: asyncio.Event | None = None
        self._queue: asyncio.Queue | None = None
        self._pool: _SolvePool | None = None
        self._workers: list[asyncio.Task] = []
        self._latencies: deque = deque(maxlen=4096)
        self._started_at = 0.0
        self._ewma_service_s: float | None = None
        self._signals_installed: list[int] = []
        self._thread: threading.Thread | None = None
        self._thread_ready: threading.Event | None = None

    # -- lifecycle ------------------------------------------------------
    def _setup(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        self._queue = asyncio.Queue()
        self._latencies = deque(maxlen=4096)
        self._started_at = time.monotonic()
        self._ewma_service_s = None
        self._pool = _SolvePool(self.solve_threads)
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(self.solve_threads)
        ]
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                continue  # not the main thread, or platform without signals
            self._signals_installed.append(sig)

    async def _teardown(self) -> None:
        assert self._queue is not None and self._pool is not None
        for _ in self._workers:
            self._queue.put_nowait(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._pool.shutdown()
        if self._loop is not None:
            for sig in self._signals_installed:
                with contextlib.suppress(Exception):
                    self._loop.remove_signal_handler(sig)
        self._signals_installed = []

    def request_drain(self) -> None:
        """Begin a graceful drain; safe to call from any thread (or a signal)."""
        loop, event = self._loop, self._drain_event
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    @property
    def draining(self) -> bool:
        return self._drain_event is not None and self._drain_event.is_set()

    # -- admission ------------------------------------------------------
    def _finish_immediate(
        self, result: SolveResult, request_id: Any,
        serve_meta: dict[str, Any], started: float,
    ) -> dict[str, Any]:
        if self.timing:
            serve_meta["latency_ms"] = round(
                (time.monotonic() - started) * 1e3, 3
            )
        self.stats.requests += 1
        if result.ok:
            self.stats.ok += 1
        else:
            self.stats.errors += 1
        return serve_response_to_dict(result, request_id, serve_meta)

    def _retry_after_ms(self) -> float:
        assert self._queue is not None
        ewma = self._ewma_service_s
        if ewma is None:
            return _DEFAULT_RETRY_AFTER_MS
        return max(1.0, round(ewma * (self._queue.qsize() + 1) * 1e3, 3))

    def _control_response(self, data: dict[str, Any], op: str) -> dict[str, Any]:
        response: dict[str, Any] = {
            "kind": "serve-control",
            "id": data.get("id"),
            "op": op,
        }
        if op == "stats":
            response["stats"] = self.stats_snapshot()
        elif op == "ping":
            response["ok"] = True
        elif op == "drain":
            self.request_drain()
            response["draining"] = True
        else:
            response["error"] = {
                "code": InvalidInstanceError.code,
                "message": f"unknown control op {op!r}; known ops: "
                           "['codec', 'drain', 'ping', 'stats']",
            }
        return response

    def _codec_response(
        self, data: dict[str, Any], conn: _ConnState
    ) -> tuple[dict[str, Any], str | None]:
        """The ``codec`` negotiation op: ``(response, accepted codec | None)``."""
        requested = data.get("codec")
        response: dict[str, Any] = {
            "kind": "serve-control",
            "id": data.get("id"),
            "op": "codec",
            "codec": requested,
            "accepted": False,
        }
        if requested not in ENVELOPE_CODECS:
            response["error"] = {
                "code": InvalidInstanceError.code,
                "message": f"unknown envelope codec {requested!r}; known codecs: "
                           f"{sorted(ENVELOPE_CODECS)}",
            }
            return response, None
        if requested == "binary" and not conn.binary_capable:
            response["error"] = {
                "code": InvalidInstanceError.code,
                "message": "binary codec needs a byte transport; this "
                           "connection is text-only (stdio)",
            }
            return response, None
        response["accepted"] = True
        return response, requested

    def _admit(self, message: Any, conn: _ConnState) -> asyncio.Future:
        """One request message in, one future of a response object out.

        ``message`` is a raw text line (JSON mode), an already-decoded
        binary frame payload (``(_FRAME, data)``) or a frame decode error
        (``(_FRAME_ERROR, message)``).  Control requests, malformed input
        and shed requests resolve immediately; everything else joins the
        bounded admission queue.
        """
        assert self._loop is not None and self._queue is not None
        arrival = time.monotonic()
        fut: asyncio.Future = self._loop.create_future()
        cache_state = "off" if self.cache is None else "miss"

        if isinstance(message, str):
            try:
                data = json.loads(message)
            except json.JSONDecodeError as exc:
                result = SolveResult.failure(
                    "<request>",
                    InvalidInstanceError(f"unparseable request line: {exc}"),
                )
                fut.set_result(
                    self._finish_immediate(result, None, {"cache": cache_state}, arrival)
                )
                return fut
        elif message[0] == _FRAME_ERROR:
            result = SolveResult.failure(
                "<request>",
                InvalidInstanceError(f"unparseable request frame: {message[1]}"),
            )
            fut.set_result(
                self._finish_immediate(result, None, {"cache": cache_state}, arrival)
            )
            return fut
        else:
            data = message[1]

        if isinstance(data, dict) and isinstance(data.get("op"), str):
            op = data["op"]
            if op == "codec":
                response, accepted = self._codec_response(data, conn)
                if accepted is not None:
                    # the client's next frame is already in the new codec;
                    # our side of the switch waits until this response is
                    # flushed (the writer unwraps the _CodecSwitch)
                    conn.read_codec = accepted
                    fut.set_result(_CodecSwitch(response, accepted))
                else:
                    fut.set_result(response)
                return fut
            fut.set_result(self._control_response(data, op))
            return fut

        request_id = data.get("id") if isinstance(data, dict) else None

        if self.draining or self._queue.qsize() >= self.max_pending:
            reason = (
                "server is draining"
                if self.draining
                else f"admission queue full ({self.max_pending} pending)"
            )
            retry_after = self._retry_after_ms()
            result = SolveResult.failure(
                "<serve>", OverloadedError(
                    f"request shed: {reason}; retry after {retry_after:g} ms",
                    retry_after_ms=retry_after,
                )
            )
            self.stats.shed += 1
            meta = {"cache": cache_state, "retry_after_ms": retry_after}
            fut.set_result(
                self._finish_immediate(result, request_id, meta, arrival)
            )
            return fut

        deadline_ms = self.default_deadline_ms
        if isinstance(data, dict) and data.get("deadline_ms") is not None:
            raw = data["deadline_ms"]
            if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
                result = SolveResult.failure(
                    "<request>", InvalidInstanceError(
                        f"deadline_ms must be a positive number, got {raw!r}"
                    )
                )
                fut.set_result(
                    self._finish_immediate(
                        result, request_id, {"cache": cache_state}, arrival
                    )
                )
                return fut
            deadline_ms = float(raw)

        deadline = None if deadline_ms is None else arrival + deadline_ms / 1e3
        self._queue.put_nowait(
            _Pending(data, request_id, arrival, deadline, deadline_ms, fut)
        )
        return fut

    # -- processing -----------------------------------------------------
    def _solve_job(self, request: Any) -> SolveResult:
        """Runs on a pool thread: fault injection wrapped around the solve."""
        plan = self.fault_plan
        if plan is not None:
            rule = plan.fire(WORKER_HANG)
            if rule is not None:
                plan.sleep(rule)
            rule = plan.fire(SOLVER_SLOW)
            if rule is not None:
                plan.sleep(rule)
            rule = plan.fire(WORKER_EXCEPTION)
            if rule is not None:
                raise InjectedFault(rule.message or "injected worker exception")
        return api_solve(request)

    def _deadline_result(self, pending: _Pending, where: str) -> SolveResult:
        self.stats.deadline_misses += 1
        return SolveResult.failure(
            "<serve>", DeadlineExceededError(
                f"deadline of {pending.deadline_ms:g} ms expired {where}"
            )
        )

    def _effective_budget_ms(self, request: SolveRequest, pending: _Pending) -> float | None:
        """The latency the router may spend on this request, load-adjusted.

        Starts from the tighter of the request's own ``latency_budget_ms``
        and the remaining serve deadline, then subtracts the queue pressure
        ahead of us (EWMA service time × queue depth) — the signal that
        makes the router shed to certified-approximate solvers under load.
        """
        assert self._queue is not None
        budget = request.latency_budget_ms
        if pending.deadline is not None:
            remaining = max(0.0, (pending.deadline - time.monotonic()) * 1e3)
            budget = remaining if budget is None else min(budget, remaining)
        ewma = self._ewma_service_s
        if budget is not None and ewma is not None:
            budget = max(0.0, budget - ewma * 1e3 * self._queue.qsize())
        return budget

    async def _process(self, pending: _Pending) -> dict[str, Any]:
        assert self._loop is not None and self._pool is not None
        cache = self.cache
        cache_state = "off" if cache is None else "miss"
        serve_meta: dict[str, Any] = {"cache": cache_state}
        request = None
        decision = None
        now = time.monotonic()

        if pending.deadline is not None and now >= pending.deadline:
            result = self._deadline_result(pending, "while queued")
        else:
            try:
                request = request_from_dict(pending.data)
            except ReproError as exc:
                result = SolveResult.failure("<request>", exc)
            else:
                if self.routing == "sla" and request.accuracy is not None:
                    original = request
                    request, decision = _route_request(
                        original,
                        latency_budget_ms=self._effective_budget_ms(
                            original, pending
                        ),
                    )
                    if request is not original:
                        self.stats.routed += 1
                hit = cache.get(request) if cache is not None else None
                if hit is not None:
                    cache_state = "hit"
                    serve_meta["cache"] = "hit"
                    result = hit
                else:
                    solve_fut, token = self._pool.submit(
                        self._loop, lambda: self._solve_job(request)
                    )
                    timeout = (
                        None
                        if pending.deadline is None
                        else max(pending.deadline - time.monotonic(), 0.001)
                    )
                    solve_started = time.monotonic()
                    try:
                        result = await asyncio.wait_for(solve_fut, timeout)
                    except asyncio.TimeoutError:
                        self._pool.abandon(token)
                        result = self._deadline_result(
                            pending, "mid-solve; worker abandoned"
                        )
                    except ReproError as exc:
                        result = SolveResult.failure(
                            request.solver or "<serve>", exc
                        )
                    except Exception as exc:  # foreign crash -> "internal"
                        result = SolveResult.failure(
                            request.solver or "<serve>", exc
                        )
                    else:
                        elapsed = time.monotonic() - solve_started
                        prev = self._ewma_service_s
                        self._ewma_service_s = (
                            elapsed if prev is None else 0.2 * elapsed + 0.8 * prev
                        )

        if decision is not None:
            serve_meta["routed_solver"] = decision.solver
        if result.ok and result.approximation is not None:
            serve_meta["epsilon"] = result.approximation.get("epsilon")
            certificate = result.approximation.get("certificate")
            if certificate is not None:
                serve_meta["certificate"] = certificate
        if self.verify and request is not None and result.ok:
            report = api_verify(request, result)
            serve_meta["verified"] = report.ok
            if not report.ok:
                serve_meta["findings"] = list(report.codes())
                self.stats.verify_failures += 1
        if (
            cache is not None
            and cache_state == "miss"
            and request is not None
            and result.ok
            and serve_meta.get("verified", True)
        ):
            cache.put(request, result)

        latency_ms = (time.monotonic() - pending.arrival) * 1e3
        self._latencies.append(latency_ms)
        if self.timing:
            serve_meta["latency_ms"] = round(latency_ms, 3)

        self.stats.requests += 1
        if result.ok:
            self.stats.ok += 1
        else:
            self.stats.errors += 1
        if cache_state == "hit":
            self.stats.cache_hits += 1
        return serve_response_to_dict(result, pending.request_id, serve_meta)

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            pending = await self._queue.get()
            if pending is None:
                return
            try:
                response = await self._process(pending)
            except Exception as exc:  # keep the worker alive, whatever happened
                response = serve_response_to_dict(
                    SolveResult.failure("<serve>", exc),
                    pending.request_id,
                    {"cache": "off" if self.cache is None else "miss"},
                )
                self.stats.requests += 1
                self.stats.errors += 1
            if not pending.future.done():
                pending.future.set_result(response)

    # -- stats ----------------------------------------------------------
    def stats_snapshot(self) -> dict[str, Any]:
        """The ``{"op": "stats"}`` payload: counters plus derived rates.

        Timing-derived fields (uptime, QPS, latency percentiles) are
        omitted when ``timing=False`` so transcripts stay reproducible.
        """
        s = self.stats
        snap: dict[str, Any] = {
            "requests": s.requests,
            "ok": s.ok,
            "errors": s.errors,
            "cache_hits": s.cache_hits,
            "cache_hit_ratio": (
                round(s.cache_hits / s.requests, 4) if s.requests else None
            ),
            "verify_failures": s.verify_failures,
            "shed": s.shed,
            "deadline_misses": s.deadline_misses,
            "pending": self._queue.qsize() if self._queue is not None else 0,
            "max_pending": self.max_pending,
            "draining": self.draining,
        }
        if self.routing == "sla":
            # only in sla mode: legacy snapshots stay byte-stable
            snap["routed"] = s.routed
        if self.timing:
            uptime = time.monotonic() - self._started_at
            snap["uptime_s"] = round(uptime, 3)
            snap["qps"] = round(s.requests / uptime, 3) if uptime > 0 else None
            latencies = sorted(self._latencies)
            if latencies:
                snap["latency_ms"] = {
                    "n": len(latencies),
                    "p50": round(_percentile(latencies, 0.50), 3),
                    "p99": round(_percentile(latencies, 0.99), 3),
                }
        return snap

    # -- connection plumbing --------------------------------------------
    async def _race_drain(self, awaitable: Awaitable[Any]) -> Any | None:
        """Await ``awaitable`` unless the drain begins first (then ``None``)."""
        assert self._drain_event is not None
        read_task = asyncio.ensure_future(awaitable)
        drain_task = asyncio.ensure_future(self._drain_event.wait())
        done, _ = await asyncio.wait(
            {read_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if read_task in done:
            drain_task.cancel()
            return read_task.result()
        read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await read_task
        return None

    async def _conn_loop(
        self,
        read_message: Callable[[], Awaitable[Any]],
        write_message: Callable[[dict[str, Any]], Awaitable[None]],
        abort: Callable[[], None] | None = None,
        conn: _ConnState | None = None,
    ) -> None:
        """One connection: read messages, admit, write responses in FIFO order."""
        if conn is None:
            conn = _ConnState()
        responses: asyncio.Queue = asyncio.Queue()

        async def writer() -> None:
            while True:
                fut = await responses.get()
                if fut is None:
                    return
                response = await fut
                switch: str | None = None
                if isinstance(response, _CodecSwitch):
                    switch, response = response.codec, response.payload
                if self.fault_plan is not None:
                    rule = self.fault_plan.fire(CONNECTION_DROP)
                    if rule is not None:
                        if abort is not None:
                            abort()
                        return  # drop the connection mid-response stream
                try:
                    await write_message(response)
                except (BrokenPipeError, ConnectionResetError, OSError):
                    return  # client went away; keep serving everyone else
                if switch is not None:
                    # acceptance flushed in the old codec; speak the new one now
                    conn.write_codec = switch

        writer_task = asyncio.ensure_future(writer())
        try:
            while True:
                message = await self._race_drain(read_message())
                if message is None:
                    break
                if isinstance(message, str) and not message.strip():
                    continue
                responses.put_nowait(self._admit(message, conn))
        finally:
            responses.put_nowait(None)
            await writer_task

    # -- transports -----------------------------------------------------
    async def run_stream(
        self,
        in_stream: Iterable[str] | TextIO,
        out_stream: TextIO,
    ) -> ServeStats:
        """Serve a text-stream pair (the CLI's stdio mode) until EOF or drain."""
        self._setup()
        assert self._loop is not None
        loop = self._loop
        lines: asyncio.Queue = asyncio.Queue()

        def pump() -> None:
            try:
                for line in in_stream:
                    loop.call_soon_threadsafe(lines.put_nowait, line)
            except (ValueError, OSError):
                pass  # stream closed under us during drain
            finally:
                with contextlib.suppress(RuntimeError):
                    loop.call_soon_threadsafe(lines.put_nowait, None)

        # a daemon reader thread: stdin has no async interface, and a daemon
        # blocked in readline() cannot hold up interpreter exit after drain
        threading.Thread(target=pump, daemon=True, name="repro-serve-stdin").start()

        async def read_message() -> str | None:
            return await lines.get()

        async def write_message(payload: dict[str, Any]) -> None:
            out_stream.write(json.dumps(payload) + "\n")
            out_stream.flush()

        try:
            # text streams cannot carry binary frames: negotiation is
            # refused (binary_capable=False) and the codec stays JSON
            await self._conn_loop(read_message, write_message,
                                  conn=_ConnState(binary_capable=False))
        finally:
            await self._teardown()
        return self.stats

    async def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: threading.Event | None = None,
    ) -> ServeStats:
        """Serve TCP connections until drained (SIGTERM, ``drain`` op, or
        :meth:`request_drain`).  ``port=0`` binds an ephemeral port; the
        bound address is published on ``self.address`` (and ``ready``, when
        given, is set once the listener is up).
        """
        self._setup()
        assert self._drain_event is not None
        conn_tasks: set[asyncio.Task] = set()

        async def handle(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
            task = asyncio.current_task()
            if task is not None:
                conn_tasks.add(task)
                task.add_done_callback(conn_tasks.discard)

            conn = _ConnState(binary_capable=True)

            async def read_message() -> Any:
                if conn.read_codec == "binary":
                    try:
                        header = await reader.readexactly(4)
                    except (asyncio.IncompleteReadError, ConnectionResetError,
                            OSError):
                        return None
                    (length,) = _U32_STRUCT.unpack(header)
                    if length > MAX_BINARY_FRAME_BYTES:
                        # framing can't be trusted past a bogus length; the
                        # only safe recovery is to hang up
                        return None
                    try:
                        body = await reader.readexactly(length)
                    except (asyncio.IncompleteReadError, ConnectionResetError,
                            OSError):
                        return None
                    try:
                        return (_FRAME, binary_envelope_decode(body))
                    except ReproError as exc:
                        return (_FRAME_ERROR, str(exc))
                raw = await reader.readline()
                if not raw:
                    return None
                return raw.decode("utf-8", errors="replace")

            async def write_message(payload: dict[str, Any]) -> None:
                writer.write(encode_envelope(payload, conn.write_codec))
                await writer.drain()

            def abort() -> None:
                transport = writer.transport
                if transport is not None:
                    transport.abort()

            try:
                await self._conn_loop(read_message, write_message, abort, conn)
            finally:
                with contextlib.suppress(Exception):
                    writer.close()

        server = await asyncio.start_server(handle, host, port)
        sockname = server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if ready is not None:
            ready.set()
        try:
            await self._drain_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            await self._teardown()
        return self.stats

    # -- background-thread hosting (tests, benchmarks) ------------------
    def start_in_thread(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 10.0
    ) -> tuple[str, int]:
        """Host :meth:`serve_tcp` on a daemon thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("serve loop already started")
        ready = threading.Event()
        self._thread_ready = ready

        def run() -> None:
            asyncio.run(self.serve_tcp(host, port, ready=ready))

        self._thread = threading.Thread(
            target=run, daemon=True, name="repro-serve-loop"
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("serve loop failed to start listening")
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 10.0) -> ServeStats:
        """Drain a :meth:`start_in_thread` server and join its thread."""
        if self._thread is None:
            raise RuntimeError("serve loop was not started with start_in_thread()")
        self.request_drain()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve loop did not drain within timeout")
        self._thread = None
        return self.stats


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[int(index)]

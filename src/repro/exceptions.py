"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still distinguishing the common failure modes:

* :class:`InvalidInstanceError` -- a problem instance violates the model
  assumptions of the paper (negative work, unsorted data the caller promised
  was sorted, an empty job set handed to an algorithm that needs jobs, ...).
* :class:`InvalidScheduleError` -- a schedule object is internally
  inconsistent or infeasible (job starts before release, overlapping pieces
  on one processor, negative speed, ...).
* :class:`InfeasibleError` -- the optimisation problem posed has no feasible
  solution (e.g. an energy budget of zero, a makespan target earlier than the
  last release time, a flow target below the zero-energy-unconstrained
  minimum).
* :class:`BudgetError` -- an energy/metric budget argument is malformed.
* :class:`ConvergenceError` -- an iterative numerical routine failed to reach
  the requested tolerance.
* :class:`UnsupportedPowerFunctionError` -- an algorithm that requires a
  specific power model (e.g. the closed-form frontier derivatives need
  ``power = speed**alpha``) was given an incompatible one.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleError",
    "BudgetError",
    "ConvergenceError",
    "UnsupportedPowerFunctionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidInstanceError(ReproError, ValueError):
    """A problem instance violates the model assumptions."""


class InvalidScheduleError(ReproError, ValueError):
    """A schedule is malformed or infeasible."""


class InfeasibleError(ReproError, ValueError):
    """The requested optimisation problem has no feasible solution."""


class BudgetError(ReproError, ValueError):
    """An energy or metric budget argument is malformed (non-positive, NaN...)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge to tolerance."""


class UnsupportedPowerFunctionError(ReproError, TypeError):
    """An algorithm requires a power function with properties this one lacks."""

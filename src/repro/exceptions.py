"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still distinguishing the common failure modes:

* :class:`InvalidInstanceError` -- a problem instance violates the model
  assumptions of the paper (negative work, unsorted data the caller promised
  was sorted, an empty job set handed to an algorithm that needs jobs, ...).
* :class:`InvalidScheduleError` -- a schedule object is internally
  inconsistent or infeasible (job starts before release, overlapping pieces
  on one processor, negative speed, ...).
* :class:`InfeasibleError` -- the optimisation problem posed has no feasible
  solution (e.g. an energy budget of zero, a makespan target earlier than the
  last release time, a flow target below the zero-energy-unconstrained
  minimum).
* :class:`BudgetError` -- an energy/metric budget argument is malformed.
* :class:`ConvergenceError` -- an iterative numerical routine failed to reach
  the requested tolerance.
* :class:`UnsupportedPowerFunctionError` -- an algorithm that requires a
  specific power model (e.g. the closed-form frontier derivatives need
  ``power = speed**alpha``) was given an incompatible one.
* :class:`UnknownSolverError` -- a solver name was not found in the
  :class:`repro.api.SolverRegistry`; carries the list of known solvers.
* :class:`VerificationError` -- a solve result failed certificate
  verification (see :mod:`repro.verify`); raised by
  :meth:`repro.verify.VerificationReport.raise_if_failed` and by the batch
  engine's ``verify=True`` mode.
* :class:`DeadlineExceededError` -- a request's deadline expired before (or
  while) it was being solved; the serving tier answers with this code
  instead of a late result.
* :class:`OverloadedError` -- the serving tier's admission queue is full and
  the request was shed instead of queued unboundedly; carries
  ``retry_after_ms``, the server's backoff hint.
* :class:`WorkerTimeoutError` -- a batch worker exceeded its per-chunk
  timeout (e.g. a hung worker process); the chunk fails, the stream
  continues.

Every class carries a stable machine-readable ``code`` (a short kebab-case
string) used by the typed request/response API (:mod:`repro.api`) to map
exceptions to structured error results; :func:`error_code` resolves the code
for any exception instance.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleError",
    "BudgetError",
    "ConvergenceError",
    "UnsupportedPowerFunctionError",
    "UnknownSolverError",
    "VerificationError",
    "DeadlineExceededError",
    "OverloadedError",
    "WorkerTimeoutError",
    "error_code",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""

    #: Stable machine-readable error code (subclasses override).
    code = "error"


class InvalidInstanceError(ReproError, ValueError):
    """A problem instance violates the model assumptions."""

    code = "invalid-instance"


class InvalidScheduleError(ReproError, ValueError):
    """A schedule is malformed or infeasible."""

    code = "invalid-schedule"


class InfeasibleError(ReproError, ValueError):
    """The requested optimisation problem has no feasible solution."""

    code = "infeasible"


class BudgetError(ReproError, ValueError):
    """An energy or metric budget argument is malformed (non-positive, NaN...)."""

    code = "invalid-budget"


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge to tolerance."""

    code = "convergence-failure"


class UnsupportedPowerFunctionError(ReproError, TypeError):
    """An algorithm requires a power function with properties this one lacks."""

    code = "unsupported-power"


class UnknownSolverError(InvalidInstanceError):
    """A solver name is not registered in the solver registry.

    Subclasses :class:`InvalidInstanceError` so pre-registry call sites that
    caught ``InvalidInstanceError`` (or plain ``ValueError``) keep working.
    """

    code = "unknown-solver"

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown solver {name!r}; known solvers: {sorted(self.known)}"
        )


class VerificationError(ReproError):
    """A solve result failed certificate verification (see :mod:`repro.verify`)."""

    code = "verification-failed"


class DeadlineExceededError(ReproError):
    """A request's deadline expired before a (timely) answer could be produced.

    The serving tier (:mod:`repro.service`) raises/answers with this when a
    request's ``deadline_ms`` (client-supplied, or the server default) runs
    out while the request is queued or being solved; a late answer is never
    sent.
    """

    code = "deadline-exceeded"


class OverloadedError(ReproError):
    """The serving tier shed a request because its admission queue is full.

    ``retry_after_ms`` is the server's backoff hint (an estimate of when the
    queue should have drained); clients such as ``tools/loadgen.py`` retry
    with exponential backoff seeded from it.
    """

    code = "overloaded"

    def __init__(self, message: str, retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class WorkerTimeoutError(ReproError):
    """A batch worker exceeded its per-chunk timeout (e.g. a hung worker).

    Raised internally by the batch engine's pool-recovery path; surfaced as
    the stable ``worker-timeout`` error code on the failed chunk's rows while
    the rest of the stream keeps flowing on a fresh pool.
    """

    code = "worker-timeout"


def error_code(exc: BaseException) -> str:
    """The stable error code for an exception (``"internal"`` if foreign)."""
    if isinstance(exc, ReproError):
        return type(exc).code
    return "internal"

"""The central solver registry: one dispatch path for every entry point.

Every solver in the repository registers here exactly once, with
:class:`~repro.api.types.SolverCapabilities` metadata describing which cell of
the paper's bicriteria matrix it answers and how it can be driven.  The batch
engine (:func:`repro.batch.solve_many`), the CLI (``repro solve`` and the
legacy subcommands) and the competitive-ratio pipeline
(:func:`repro.online.compete.competitive_sweep`) all resolve solver names
through the same :data:`REGISTRY`, so the solver matrix is enumerable in one
place and cannot drift between entry points.

Registration happens through per-subpackage hooks
(``repro.makespan.register``, ``repro.flow.register``, ``repro.multi.register``
and ``repro.online.register``), imported lazily on first registry access so
importing :mod:`repro.api` stays cheap and free of import cycles.

A registered solver is a callable ``fn(request) -> (value, energy, speeds,
extras)``; the registry wraps the tuple into a
:class:`~repro.api.types.SolveResult` and enforces the solver's declared
preconditions (budget present, polynomial power, deadlines, equal work,
processor count) before dispatching.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Iterator

from ..exceptions import (
    BudgetError,
    InvalidInstanceError,
    UnknownSolverError,
    UnsupportedPowerFunctionError,
)
from .types import ProblemSpec, SolveRequest, SolveResult, SolverCapabilities

__all__ = ["SolverFn", "BatchSolverFn", "RegisteredSolver", "SolverRegistry", "REGISTRY"]

#: Low-level solver contract: request in, ``(value, energy, speeds, extras)``
#: out.  ``value``/``energy``/``speeds`` may be ``None`` (frontier solvers);
#: ``extras`` must contain only JSON-ready types.
SolverFn = Callable[[SolveRequest], tuple]

#: Batched solver contract: a chunk of same-solver requests in, one
#: ``(value, energy, speeds, extras)`` tuple per request out (same order).
#: Results must be byte-identical to calling the per-request ``fn`` on each.
BatchSolverFn = Callable[[list[SolveRequest]], list[tuple]]

#: Subpackage registration hooks, imported lazily on first registry access.
#: Each module must expose ``register_solvers(registry)``.
_HOOK_MODULES: tuple[str, ...] = (
    "repro.makespan.register",
    "repro.flow.register",
    "repro.multi.register",
    "repro.online.register",
)


@dataclass(frozen=True)
class RegisteredSolver:
    """One registry entry: capability metadata plus the solver callable(s).

    ``batch_fn`` is present exactly when the capabilities declare
    ``batch_kernel=True``: a structure-of-arrays entry point that solves a
    whole chunk of requests at once, byte-identical to mapping ``fn``.
    """

    capabilities: SolverCapabilities
    fn: SolverFn
    batch_fn: BatchSolverFn | None = None

    @property
    def name(self) -> str:
        return self.capabilities.name


class SolverRegistry:
    """Ordered name -> solver mapping with capability metadata and dispatch.

    Iteration order is registration order (which downstream consumers rely on
    for deterministic sweeps); lookups are by exact name.  Misses raise
    :class:`~repro.exceptions.UnknownSolverError` carrying the known names —
    the single unknown-solver error shared by every entry point.
    """

    def __init__(self, hook_modules: tuple[str, ...] = ()) -> None:
        self._entries: dict[str, RegisteredSolver] = {}
        self._hook_modules = tuple(hook_modules)
        self._bootstrapped = not self._hook_modules
        self._bootstrapping = False

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def _ensure_bootstrapped(self) -> None:
        if self._bootstrapped or self._bootstrapping:
            return
        self._bootstrapping = True
        try:
            for module_name in self._hook_modules:
                import_module(module_name).register_solvers(self)
            self._bootstrapped = True
        finally:
            self._bootstrapping = False

    def register(
        self,
        capabilities: SolverCapabilities,
        fn: SolverFn | None = None,
        *,
        batch_fn: BatchSolverFn | None = None,
    ) -> Callable:
        """Register ``fn`` under ``capabilities`` (usable as a decorator).

        ``batch_fn`` must be supplied if and only if the capabilities declare
        ``batch_kernel=True``, so the metadata honestly advertises whether
        :meth:`run_batch` can dispatch to the solver.
        """
        if fn is None:
            return lambda f: self.register(capabilities, f, batch_fn=batch_fn)
        if capabilities.name in self._entries:
            raise InvalidInstanceError(
                f"solver {capabilities.name!r} is already registered"
            )
        if capabilities.batch_kernel != (batch_fn is not None):
            raise InvalidInstanceError(
                f"solver {capabilities.name!r}: batch_kernel={capabilities.batch_kernel} "
                f"but batch_fn is {'missing' if batch_fn is None else 'provided'}; "
                "the capability flag and the batched entry point must agree"
            )
        self._entries[capabilities.name] = RegisteredSolver(capabilities, fn, batch_fn)
        return fn

    # ------------------------------------------------------------------
    # lookup / enumeration
    # ------------------------------------------------------------------
    def get(self, name: str) -> RegisteredSolver:
        """The entry for ``name``; raises :class:`UnknownSolverError` on a miss."""
        self._ensure_bootstrapped()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownSolverError(name, tuple(self._entries)) from None

    def capabilities(self, name: str) -> SolverCapabilities:
        """The capability metadata registered for ``name``."""
        return self.get(name).capabilities

    def names(self) -> tuple[str, ...]:
        """All registered solver names, in registration order."""
        self._ensure_bootstrapped()
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, SolverCapabilities], ...]:
        """``(name, capabilities)`` pairs in registration order."""
        self._ensure_bootstrapped()
        return tuple(
            (name, entry.capabilities) for name, entry in self._entries.items()
        )

    def __contains__(self, name: object) -> bool:
        self._ensure_bootstrapped()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_bootstrapped()
        return len(self._entries)

    def find(self, **filters: Any) -> tuple[str, ...]:
        """Names of solvers whose capabilities match all ``filters``.

        Filters are attribute names of :class:`SolverCapabilities` (including
        the pass-through properties ``objective`` / ``mode`` /
        ``multiprocessor`` / ``online``), e.g. ``find(online=True)`` or
        ``find(objective="makespan", batchable=True)``.
        """
        self._ensure_bootstrapped()
        allowed = set(SolverCapabilities.__dataclass_fields__) | {
            "objective", "mode", "machine", "multiprocessor", "online",
        }
        for key in filters:
            if key not in allowed:
                raise InvalidInstanceError(f"unknown capability filter {key!r}")
        return tuple(
            name
            for name, entry in self._entries.items()
            if all(
                getattr(entry.capabilities, key) == value
                for key, value in filters.items()
            )
        )

    def resolve(self, spec: ProblemSpec) -> str:
        """The unique solver name answering ``spec``.

        Raises :class:`UnknownSolverError` when no solver matches and
        :class:`InvalidInstanceError` when the cell is ambiguous (several
        online algorithms share the deadline-feasibility cell; name one
        explicitly).
        """
        self._ensure_bootstrapped()
        matches = [
            name
            for name, entry in self._entries.items()
            if entry.capabilities.spec == spec
        ]
        if not matches:
            raise UnknownSolverError(
                f"<{spec.objective}/{spec.mode}/{spec.machine}"
                f"{'/online' if spec.online else ''}>",
                tuple(self._entries),
            )
        if len(matches) > 1:
            raise InvalidInstanceError(
                f"spec {spec} matches several solvers {matches}; "
                "name one explicitly in SolveRequest.solver"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _validate(self, caps: SolverCapabilities, request: SolveRequest) -> None:
        name = caps.name
        if caps.budget_kind != "none" and request.budget is None:
            raise BudgetError(
                f"solver {name!r} requires a budget ({caps.budget_kind})"
            )
        if caps.needs_polynomial_power:
            try:
                float(request.power.alpha)
            except UnsupportedPowerFunctionError:
                raise UnsupportedPowerFunctionError(
                    f"solver {name!r} requires power = speed**alpha, got "
                    f"{type(request.power).__name__}"
                ) from None
        if caps.needs_deadlines and not request.instance.has_deadlines():
            raise InvalidInstanceError(
                f"solver {name!r} requires every job to carry a finite deadline; "
                "attach them with Instance.with_deadlines()"
            )
        if caps.needs_equal_work and not request.instance.is_equal_work():
            raise InvalidInstanceError(
                f"solver {name!r} requires an equal-work instance"
            )
        if not caps.multiprocessor and request.processors != 1:
            raise InvalidInstanceError(
                f"solver {name!r} is a uniprocessor solver; got "
                f"processors={request.processors}"
            )

    def run(self, request: SolveRequest) -> SolveResult:
        """Dispatch a request, raising on any error (the CLI-shim contract).

        Use :func:`repro.api.solve` for the serving contract, where errors
        come back as structured :class:`SolveResult` envelopes instead.
        """
        name = request.solver if request.solver is not None else self.resolve(request.spec)
        entry = self.get(name)
        self._validate(entry.capabilities, request)
        value, energy, speeds, extras = entry.fn(request)
        return SolveResult.success(name, value, energy, speeds, extras)

    def run_batch(self, requests: list[SolveRequest]) -> list[SolveResult]:
        """Dispatch a homogeneous chunk through a solver's batched kernel.

        All requests must name the same solver, and that solver must declare
        ``batch_kernel=True`` (i.e. carry a registered batched entry point).
        Every request is validated exactly as :meth:`run` would before the
        chunk is handed to the batched kernel; results come back in request
        order and are byte-identical to running each request individually
        (pinned by ``tests/test_batched_kernels.py``).
        """
        if not requests:
            return []
        names = {
            request.solver if request.solver is not None else self.resolve(request.spec)
            for request in requests
        }
        if len(names) != 1:
            raise InvalidInstanceError(
                f"run_batch needs a homogeneous chunk; got solvers {sorted(names)}"
            )
        name = next(iter(names))
        entry = self.get(name)
        if entry.batch_fn is None:
            raise InvalidInstanceError(
                f"solver {name!r} does not provide a batched kernel "
                "(capabilities.batch_kernel is False)"
            )
        for request in requests:
            self._validate(entry.capabilities, request)
        tuples = entry.batch_fn(list(requests))
        if len(tuples) != len(requests):
            raise InvalidInstanceError(
                f"solver {name!r}: batched kernel returned {len(tuples)} results "
                f"for {len(requests)} requests"
            )
        return [
            SolveResult.success(name, value, energy, speeds, extras)
            for value, energy, speeds, extras in tuples
        ]


#: The default process-wide registry every entry point dispatches through.
REGISTRY = SolverRegistry(hook_modules=_HOOK_MODULES)

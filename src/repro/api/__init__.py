"""Unified solver API: one typed request/response surface for the whole matrix.

The paper's problems form a matrix — objective x mode x machine model — and
this package makes that matrix a single, enumerable, servable surface:

* :class:`ProblemSpec` / :class:`SolveRequest` / :class:`SolveResult` -- the
  typed request/response trio (see :mod:`repro.api.types`),
* :class:`SolverRegistry` / :data:`REGISTRY` -- the central registry every
  solver registers into with capability metadata (:mod:`repro.api.registry`),
* :func:`solve` -- the serving entry point: dispatch a request through the
  registry and always get a :class:`SolveResult` back — infeasible or invalid
  inputs come back as structured error envelopes with stable codes instead of
  exceptions,
* :func:`verify` -- the verification entry point: check a
  ``(request, result)`` pair structurally (feasibility, energy/value
  accounting) and against the semantic certificate kinds the solver declared
  in its capabilities, returning a
  :class:`~repro.verify.VerificationReport` of structured findings
  (``repro verify`` on the command line; see :mod:`repro.verify`),
* :func:`list_solvers` -- enumerate the registered matrix (drives
  ``repro solve --list`` on the command line).

The batch engine (:func:`repro.batch.solve_stream` / ``solve_many``), the
CLI, the ``repro serve`` request loop (:mod:`repro.service`) and the
competitive-ratio pipeline all dispatch through :data:`REGISTRY`; JSON
serialisation of the envelopes lives in :mod:`repro.io`
(``request_to_dict`` / ``result_to_dict`` and inverses), and the
content-addressed result cache (:mod:`repro.cache`) keys those envelopes by
canonical SHA-256 — including each solver's capability fingerprint, so
re-registering a solver with different metadata invalidates its entries.
"""

from __future__ import annotations

from ..exceptions import ReproError
from ..verify import verify as _verify_result
from ..verify.report import Finding, VerificationReport
from .registry import (
    REGISTRY,
    CostModel,
    RegisteredSolver,
    RouteDecision,
    SolverRegistry,
)
from .types import (
    BUDGET_KINDS,
    MACHINES,
    MODES,
    OBJECTIVES,
    ProblemSpec,
    SolveRequest,
    SolveResult,
    SolverCapabilities,
)

__all__ = [
    "OBJECTIVES",
    "MODES",
    "MACHINES",
    "BUDGET_KINDS",
    "ProblemSpec",
    "SolveRequest",
    "SolveResult",
    "SolverCapabilities",
    "RegisteredSolver",
    "SolverRegistry",
    "REGISTRY",
    "CostModel",
    "RouteDecision",
    "Finding",
    "VerificationReport",
    "solve",
    "verify",
    "list_solvers",
]


def solve(request: SolveRequest, registry: SolverRegistry | None = None) -> SolveResult:
    """Solve one request through the registry; never raises a library error.

    This is the serving contract: any :class:`~repro.exceptions.ReproError`
    raised while resolving or running the solver (unknown solver, missing
    budget, infeasible problem, invalid instance, ...) is mapped to a
    structured error :class:`SolveResult` with a stable ``error_code``.
    Programming errors (anything that is not a ``ReproError``) still
    propagate.
    """
    reg = REGISTRY if registry is None else registry
    name = request.solver
    try:
        if name is None:
            name = reg.resolve(request.spec)
        return reg.run(request)
    except ReproError as exc:
        # name the resolved solver in the envelope when resolution succeeded
        return SolveResult.failure(name if name is not None else "<spec>", exc)


def verify(
    request: SolveRequest,
    result: SolveResult,
    registry: SolverRegistry | None = None,
    rtol: float = 1e-6,
) -> VerificationReport:
    """Verify a solve result against its request; never raises a library error.

    Runs the structural checks (envelope, feasibility, accounting) plus the
    semantic certificate checks the solver declared in its registered
    :class:`SolverCapabilities`; violations come back as structured
    :class:`~repro.verify.Finding` objects with stable codes.  See
    :mod:`repro.verify` for the check catalogue.
    """
    return _verify_result(request, result, registry=registry, rtol=rtol)


def list_solvers(registry: SolverRegistry | None = None) -> tuple[SolverCapabilities, ...]:
    """Capability metadata for every registered solver, in registration order."""
    reg = REGISTRY if registry is None else registry
    return tuple(caps for _, caps in reg.items())

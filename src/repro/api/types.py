"""Typed request/response model for the unified solver API.

The paper frames every problem in this repository as one bicriteria template:
pick an *objective* (makespan / total flow / deadline-feasible energy), pick a
*mode* (``laptop``: fix the energy budget and minimise the metric; ``server``:
fix the metric target and minimise energy; ``frontier``: enumerate the whole
non-dominated trade-off curve), and pick a *machine model* (uni- or
multiprocessor, offline or online).  This module gives that template a typed
shape shared by every entry point — the batch engine, the CLI, the
competitive-ratio pipeline and any future HTTP service:

* :class:`ProblemSpec` -- which cell of the solver matrix is being asked for,
* :class:`SolverCapabilities` -- what a registered solver can do (its cell
  plus operational metadata: batchable, needs ``power = speed**alpha``,
  needs deadlines, needs equal work, which kind of budget it consumes),
* :class:`SolveRequest` -- one fully-specified solve call (solver or spec,
  instance, power, budget/target, processors, options),
* :class:`SolveResult` -- the uniform response envelope: either a value /
  energy / per-job speeds triple plus solver-specific ``extras``, or a
  structured error with a stable code from :mod:`repro.exceptions`.

Serialisation of requests and results lives in :mod:`repro.io`
(``request_to_dict`` / ``result_to_dict`` and inverses) so the JSON envelope
is one code path end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from ..core.job import Instance
from ..core.power import PowerFunction
from ..exceptions import InvalidInstanceError, ReproError, error_code

__all__ = [
    "OBJECTIVES",
    "MODES",
    "MACHINES",
    "BUDGET_KINDS",
    "ProblemSpec",
    "SolverCapabilities",
    "SolveRequest",
    "SolveResult",
]

#: Recognised objectives: the metric being traded against energy.  ``energy``
#: is the deadline-feasibility family (YDS/AVR/OA/BKP), where the "metric"
#: side of the bicriteria template is the hard per-job deadlines.
OBJECTIVES: tuple[str, ...] = ("makespan", "flow", "energy")

#: Recognised modes of the bicriteria template.
MODES: tuple[str, ...] = ("laptop", "server", "frontier")

#: Recognised machine models.
MACHINES: tuple[str, ...] = ("uni", "multi")

#: What a solver's ``budget`` argument means: an energy budget, a metric
#: target (e.g. a makespan target for the server problem), or nothing.
BUDGET_KINDS: tuple[str, ...] = ("energy", "metric", "none")


def _check_choice(value: str, choices: tuple[str, ...], what: str) -> str:
    if value not in choices:
        raise InvalidInstanceError(
            f"unknown {what} {value!r}; expected one of {list(choices)}"
        )
    return value


@dataclass(frozen=True)
class ProblemSpec:
    """One cell of the paper's solver matrix.

    Parameters
    ----------
    objective:
        One of :data:`OBJECTIVES`.
    mode:
        One of :data:`MODES` -- ``laptop`` fixes energy and minimises the
        objective, ``server`` fixes an objective target and minimises energy,
        ``frontier`` enumerates the non-dominated curve.
    machine:
        One of :data:`MACHINES`.
    online:
        Whether jobs arrive over time (the solver may not look ahead).
    """

    objective: str
    mode: str
    machine: str = "uni"
    online: bool = False

    def __post_init__(self) -> None:
        _check_choice(self.objective, OBJECTIVES, "objective")
        _check_choice(self.mode, MODES, "mode")
        _check_choice(self.machine, MACHINES, "machine model")


@dataclass(frozen=True)
class SolverCapabilities:
    """Capability metadata a solver registers with.

    The spec says *which* problem the solver answers; the remaining flags say
    *how* it can be driven: whether the batch engine may fan it out, which
    budget it consumes, and which preconditions the registry should enforce
    before dispatching a request to it.  ``batch_kernel`` declares that the
    solver also registers a structure-of-arrays batched entry point
    (:meth:`repro.api.registry.SolverRegistry.run_batch`) that solves a whole
    chunk of same-solver requests in one kernel call, byte-identical to the
    per-request path.  ``certificates`` names the semantic
    certificate kinds of :data:`repro.verify.CHECKERS` that apply to the
    solver's results; :func:`repro.api.verify` runs them after the structural
    checks, and the conformance suite fails any solver registered without
    certificate coverage.

    ``variant_of`` names the primary solver this one is a routable variant of
    (variants are excluded from spec resolution and reached by name or via
    :meth:`repro.api.registry.SolverRegistry.route`).  ``approximate`` marks
    solvers whose answers may deviate from the optimum; they must declare a
    ``bound_kind`` (how their ``error-bound`` certificate is checked) and a
    ``min_accuracy`` — the smallest relative error they can promise, used by
    the router to fall back to exact when the requested accuracy is tighter.
    """

    name: str
    spec: ProblemSpec
    summary: str
    budget_kind: str = "energy"
    batchable: bool = False
    batch_kernel: bool = False
    needs_polynomial_power: bool = False
    needs_deadlines: bool = False
    needs_equal_work: bool = False
    needs_zero_release: bool = False
    certificates: tuple[str, ...] = ()
    variant_of: str | None = None
    approximate: bool = False
    bound_kind: str | None = None
    min_accuracy: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise InvalidInstanceError(f"solver name must be a non-empty string, got {self.name!r}")
        if not self.summary:
            raise InvalidInstanceError(f"solver {self.name!r} must register a summary line")
        _check_choice(self.budget_kind, BUDGET_KINDS, "budget kind")
        object.__setattr__(self, "certificates", tuple(self.certificates))
        if not all(isinstance(kind, str) and kind for kind in self.certificates):
            raise InvalidInstanceError(
                f"solver {self.name!r}: certificate kinds must be non-empty strings, "
                f"got {self.certificates!r}"
            )
        if self.approximate and self.bound_kind is None:
            raise InvalidInstanceError(
                f"solver {self.name!r} is approximate but declares no bound_kind; "
                "its error-bound certificates would be uncheckable"
            )
        if not self.approximate and self.bound_kind is not None:
            raise InvalidInstanceError(
                f"solver {self.name!r} declares bound_kind={self.bound_kind!r} "
                "but approximate=False"
            )
        if self.min_accuracy < 0.0:
            raise InvalidInstanceError(
                f"solver {self.name!r}: min_accuracy must be >= 0, got {self.min_accuracy}"
            )

    # Convenience pass-throughs so callers can enumerate the matrix without
    # reaching through ``.spec`` every time.
    @property
    def objective(self) -> str:
        return self.spec.objective

    @property
    def mode(self) -> str:
        return self.spec.mode

    @property
    def machine(self) -> str:
        return self.spec.machine

    @property
    def multiprocessor(self) -> bool:
        return self.spec.machine == "multi"

    @property
    def online(self) -> bool:
        return self.spec.online


def _frozen_options(options: Mapping[str, Any] | None) -> Mapping[str, Any]:
    return MappingProxyType(dict(options or {}))


@dataclass(frozen=True)
class SolveRequest:
    """One solve call: a solver (by name or by spec) applied to an instance.

    Exactly which solver runs is resolved by the registry: either ``solver``
    names it directly, or ``spec`` asks for the unique registered solver
    matching that cell of the matrix (``solver`` wins when both are given).

    ``budget`` is the energy budget for ``laptop``-mode solvers and the
    metric target for ``server``-mode solvers (see each solver's
    ``budget_kind``); solvers with ``budget_kind == "none"`` ignore it.
    ``options`` carries solver-specific keyword options (e.g. the frontier
    sampler's ``min_energy`` / ``max_energy`` / ``points``).

    ``accuracy`` is the SLA knob: the largest relative error the caller will
    accept (``None``, the default, means *exact only* — the request is never
    routed to an approximate solver).  ``latency_budget_ms`` is the caller's
    latency target; :meth:`repro.api.registry.SolverRegistry.route` and the
    SLA-routing serve loop use both to pick a solver (approximate answers
    always carry certified ``approximation`` metadata, never silent error).
    Both are advisory for direct :func:`repro.api.solve` calls — the named
    solver still runs as asked.
    """

    instance: Instance
    power: PowerFunction
    solver: str | None = None
    spec: ProblemSpec | None = None
    budget: float | None = None
    processors: int = 1
    options: Mapping[str, Any] = field(default_factory=dict)
    accuracy: float | None = None
    latency_budget_ms: float | None = None

    def __post_init__(self) -> None:
        if self.solver is None and self.spec is None:
            raise InvalidInstanceError(
                "a SolveRequest needs a solver name or a ProblemSpec"
            )
        if self.processors < 1:
            raise InvalidInstanceError(
                f"processors must be >= 1, got {self.processors}"
            )
        object.__setattr__(self, "options", _frozen_options(self.options))
        if self.budget is not None:
            object.__setattr__(self, "budget", float(self.budget))
        for label in ("accuracy", "latency_budget_ms"):
            raw = getattr(self, label)
            if raw is None:
                continue
            value = float(raw)
            if not math.isfinite(value) or value <= 0.0:
                raise InvalidInstanceError(
                    f"{label} must be a finite value > 0, got {raw!r}"
                )
            object.__setattr__(self, label, value)


@dataclass(frozen=True)
class SolveResult:
    """Uniform response envelope for every solver.

    Exactly one of the two shapes is populated:

    * success: ``status == "ok"``, with the solver's objective ``value``, the
      ``energy`` actually consumed by the returned ``speeds`` (both may be
      ``None`` for frontier-mode solvers, whose payload lives in ``extras``),
      and JSON-ready solver-specific ``extras`` (block decompositions,
      completion times, assignments, frontier samples, ...);
    * failure: ``status == "error"`` with a stable ``error_code`` from
      :mod:`repro.exceptions` and a human-readable ``error_message``.

    ``approximation`` is present exactly when an approximate solver produced
    the answer: a mapping with ``epsilon`` (the certified relative error
    bound of *this* answer), ``bound_kind`` (which ``error-bound`` checker
    branch validates it) and ``certificate`` (the certificate kind, always
    ``"error-bound"``).  Exact solvers leave it ``None``.
    """

    solver: str
    status: str
    value: float | None = None
    energy: float | None = None
    speeds: np.ndarray | None = None
    extras: Mapping[str, Any] = field(default_factory=dict)
    error_code: str | None = None
    error_message: str | None = None
    approximation: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.status not in ("ok", "error"):
            raise InvalidInstanceError(
                f"SolveResult status must be 'ok' or 'error', got {self.status!r}"
            )
        object.__setattr__(self, "extras", _frozen_options(self.extras))
        if self.approximation is not None:
            object.__setattr__(
                self, "approximation", _frozen_options(self.approximation)
            )
        if self.speeds is not None:
            object.__setattr__(self, "speeds", np.asarray(self.speeds, dtype=float))

    @property
    def ok(self) -> bool:
        """Whether the solve succeeded."""
        return self.status == "ok"

    @classmethod
    def success(
        cls,
        solver: str,
        value: float | None,
        energy: float | None,
        speeds: np.ndarray | None,
        extras: Mapping[str, Any] | None = None,
        approximation: Mapping[str, Any] | None = None,
    ) -> "SolveResult":
        return cls(
            solver=solver,
            status="ok",
            value=None if value is None else float(value),
            energy=None if energy is None else float(energy),
            speeds=speeds,
            extras=extras or {},
            approximation=approximation,
        )

    @classmethod
    def failure(cls, solver: str, exc: BaseException) -> "SolveResult":
        """Map an exception to a structured error result (stable code)."""
        return cls(
            solver=solver,
            status="error",
            error_code=error_code(exc),
            error_message=str(exc),
        )

    def raise_if_error(self) -> "SolveResult":
        """Re-raise an error result as a :class:`~repro.exceptions.ReproError`."""
        if not self.ok:
            raise ReproError(
                f"solver {self.solver!r} failed [{self.error_code}]: {self.error_message}"
            )
        return self

"""Named discrete speed sets (DVFS operating points).

The paper motivates the continuous-speed model as an approximation of real
processors that expose a finite list of frequency steps, quoting the AMD
Athlon 64's 2000/1800/800 MHz settings, and lists the discrete-speed setting
as future work (it is NP-hard to schedule optimally per Chen et al.).  This
module provides a tiny catalogue of speed sets -- the Athlon 64 list from the
paper, plus parametric generators -- used by the discrete-speed extension
experiments in :mod:`repro.discrete.quantize`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidInstanceError, InvalidScheduleError

__all__ = ["SpeedLevels", "ATHLON64", "uniform_levels", "geometric_levels"]


@dataclass(frozen=True)
class SpeedLevels:
    """A finite, sorted set of allowed processor speeds."""

    name: str
    levels: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise InvalidInstanceError("a speed set needs at least one level")
        if any(l <= 0 for l in self.levels):
            raise InvalidInstanceError("speed levels must be positive")
        ordered = tuple(sorted(set(float(l) for l in self.levels)))
        object.__setattr__(self, "levels", ordered)

    @property
    def min_speed(self) -> float:
        return self.levels[0]

    @property
    def max_speed(self) -> float:
        return self.levels[-1]

    def bracket(self, speed: float) -> tuple[float, float]:
        """The pair of adjacent levels surrounding ``speed`` (clamped at the ends).

        Idle is not an operating point: callers must handle zero-speed
        segments themselves (map them to idle or sleep power), so a
        non-positive ``speed`` raises rather than silently clamping up to
        ``min_speed`` and inflating energy.
        """
        if speed <= 0:
            raise InvalidScheduleError(
                "cannot bracket a non-positive speed: idle segments must stay "
                "idle, not run at the lowest operating point"
            )
        if speed <= self.min_speed:
            return (self.min_speed, self.min_speed)
        if speed >= self.max_speed:
            return (self.max_speed, self.max_speed)
        levels = np.asarray(self.levels)
        hi_index = int(np.searchsorted(levels, speed, side="left"))
        lo_index = hi_index - 1 if levels[hi_index] > speed else hi_index
        return (float(levels[lo_index]), float(levels[hi_index]))

    def nearest(self, speed: float) -> float:
        """The closest level to ``speed`` (idle is not a level; see :meth:`bracket`)."""
        if speed <= 0:
            raise InvalidScheduleError(
                "cannot round a non-positive speed to an operating point"
            )
        levels = np.asarray(self.levels)
        return float(levels[np.argmin(np.abs(levels - speed))])

    def scaled(self, factor: float, name: str | None = None) -> "SpeedLevels":
        """The same ladder with every level multiplied by ``factor``."""
        if factor <= 0:
            raise InvalidInstanceError("scale factor must be positive")
        return SpeedLevels(
            name or f"{self.name}-x{factor:g}",
            tuple(level * factor for level in self.levels),
        )

    def __len__(self) -> int:
        return len(self.levels)


#: The AMD Athlon 64 operating points quoted in the paper's introduction,
#: normalised so that the top frequency (2000 MHz) is speed 1.0.
ATHLON64 = SpeedLevels("amd-athlon-64", (800 / 2000, 1800 / 2000, 1.0))


def uniform_levels(n_levels: int, max_speed: float = 1.0, name: str | None = None) -> SpeedLevels:
    """``n_levels`` equally spaced speeds in ``(0, max_speed]``."""
    if n_levels < 1:
        raise InvalidInstanceError("n_levels must be >= 1")
    if max_speed <= 0:
        raise InvalidInstanceError("max_speed must be positive")
    levels = tuple(max_speed * k / n_levels for k in range(1, n_levels + 1))
    return SpeedLevels(name or f"uniform-{n_levels}", levels)


def geometric_levels(
    n_levels: int, max_speed: float = 1.0, ratio: float = 0.8, name: str | None = None
) -> SpeedLevels:
    """``n_levels`` speeds in a geometric ladder below ``max_speed``."""
    if n_levels < 1:
        raise InvalidInstanceError("n_levels must be >= 1")
    if not 0 < ratio < 1:
        raise InvalidInstanceError("ratio must lie in (0, 1)")
    levels = tuple(max_speed * ratio**k for k in range(n_levels))
    return SpeedLevels(name or f"geometric-{n_levels}", levels)

"""Emulating continuous-speed schedules on discrete-speed processors.

Section 6 of the paper singles out discrete speed levels as the most obvious
gap between the continuous model and real hardware.  The standard emulation
(also the basis of the approximation results it cites) is *two-level
rounding*: a job planned at speed ``sigma`` between two adjacent available
levels ``lo <= sigma <= hi`` is run partly at ``hi`` and partly at ``lo`` so
that it completes the same work in the same wall-clock window.  Convexity of
the power function makes the energy of the mix at least that of the continuous
speed, and the overhead shrinks as the level grid gets finer.

This module quantises any single-speed-per-job schedule produced by the
continuous algorithms, reports the energy overhead, and flags infeasibility
when a planned speed exceeds the hardware's maximum (in that case the job is
clamped to the maximum level and the completion times shift right -- the
caller decides whether that is acceptable).

Two policies are supported end-to-end:

* ``"two-level"`` -- the work-conserving emulation above (never misses a
  deadline unless the maximum level clamps),
* ``"nearest"`` -- snap to the closest level; rounding *down* loses capacity
  inside the window, so completions shift right and deadline misses become
  possible.  The simulation layer (:mod:`repro.sim`) records them instead of
  raising.

:func:`quantize_profile` applies the same policies to a piecewise-constant
speed *profile* (the ``(start, end, speed)`` triples consumed by
:func:`repro.online.execute_profile_edf`).  Zero-speed segments are idle, not
work: they stay at speed 0 so the machine model can charge idle or sleep
power for them -- never the lowest operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.power import PowerFunction
from ..core.schedule import Piece, Schedule
from ..exceptions import InvalidScheduleError
from .models import SpeedLevels

__all__ = [
    "ProfileQuantization",
    "QuantizationResult",
    "quantize_profile",
    "quantize_schedule",
    "two_level_split",
]

#: Speeds at or below this are idle, not an operating point to round.
IDLE_SPEED_EPS = 1e-12

QUANTIZATION_POLICIES = ("two-level", "nearest")


def _check_policy(policy: str) -> None:
    if policy not in QUANTIZATION_POLICIES:
        raise InvalidScheduleError(
            f"unknown quantization policy {policy!r}; "
            f"expected one of {QUANTIZATION_POLICIES}"
        )


def two_level_split(speed: float, lo: float, hi: float) -> tuple[float, float]:
    """Fractions of time to spend at ``hi`` and ``lo`` to emulate ``speed``.

    Returns ``(fraction_at_hi, fraction_at_lo)`` such that
    ``fraction_at_hi * hi + fraction_at_lo * lo == speed`` and the fractions
    sum to 1.  When ``lo == hi`` the split is trivially all at that level.
    """
    if speed <= 0 or lo <= 0 or hi <= 0:
        raise InvalidScheduleError("speeds must be positive")
    if not lo <= speed <= hi and not math.isclose(lo, hi):
        raise InvalidScheduleError(
            f"speed {speed:g} is not inside the bracket [{lo:g}, {hi:g}]"
        )
    if math.isclose(hi, lo):
        return (1.0, 0.0)
    frac_hi = (speed - lo) / (hi - lo)
    return (float(frac_hi), float(1.0 - frac_hi))


@dataclass(frozen=True)
class QuantizationResult:
    """Outcome of quantising a continuous schedule onto a discrete speed set."""

    schedule: Schedule
    continuous_energy: float
    discrete_energy: float
    clamped_jobs: tuple[int, ...]
    makespan_increase: float

    @property
    def energy_overhead(self) -> float:
        """Relative energy increase of the discrete emulation (>= 0 when nothing clamps)."""
        return self.discrete_energy / self.continuous_energy - 1.0


def quantize_schedule(
    schedule: Schedule,
    levels: SpeedLevels,
    policy: str = "two-level",
) -> QuantizationResult:
    """Quantise a continuous-speed schedule onto the given speed levels.

    With the default ``"two-level"`` policy every piece is replaced by at
    most two pieces (the two-level emulation) occupying the same time window,
    except when the planned speed exceeds the maximum level: such pieces are
    *clamped* to the maximum level, take longer, and push the subsequent
    pieces of the same processor later (preserving order and release-time
    feasibility).  With ``"nearest"`` each piece snaps to the closest level;
    rounding down extends the piece the same way clamping does.  Idle gaps
    between pieces are preserved as gaps -- they are never filled with the
    lowest operating point.
    """
    _check_policy(policy)
    power = schedule.power
    instance = schedule.instance
    new_pieces: list[Piece] = []
    clamped: set[int] = set()
    # process per processor to propagate shifts caused by clamping
    by_proc: dict[int, list[Piece]] = {}
    for piece in schedule.pieces:
        by_proc.setdefault(piece.processor, []).append(piece)
    for proc, pieces in by_proc.items():
        pieces.sort(key=lambda p: p.start)
        shift = 0.0
        for piece in pieces:
            start = piece.start + shift
            release = instance.jobs[piece.job].release
            start = max(start, release)
            if piece.speed > levels.max_speed and not math.isclose(piece.speed, levels.max_speed):
                # clamp: run the whole piece's work at the maximum level
                clamped.add(piece.job)
                duration = piece.work / levels.max_speed
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=start, end=start + duration,
                          speed=levels.max_speed)
                )
                shift = max(0.0, (start + duration) - piece.end)
                continue
            if policy == "nearest":
                level = levels.nearest(piece.speed)
                duration = piece.work / level
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=start, end=start + duration,
                          speed=level)
                )
                # rounding down loses capacity inside the window, so the piece
                # extends and pushes later pieces exactly like clamping does
                shift = max(0.0, (start + duration) - piece.end)
                continue
            if piece.speed < levels.min_speed and not math.isclose(piece.speed, levels.min_speed):
                # planned slower than the slowest level: run at the minimum level
                # for exactly the piece's work and idle for the remainder of the
                # window (this wastes energy relative to the continuous plan but
                # never delays anything).
                duration = piece.work / levels.min_speed
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=start, end=start + duration,
                          speed=levels.min_speed)
                )
                shift = max(0.0, (start + duration) - piece.end)
                continue
            lo, hi = levels.bracket(piece.speed)
            frac_hi, frac_lo = two_level_split(piece.speed, lo, hi)
            t_hi = piece.duration * frac_hi
            t_lo = piece.duration * frac_lo
            cursor = start
            if t_hi > 1e-15:
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=cursor, end=cursor + t_hi, speed=hi)
                )
                cursor += t_hi
            if t_lo > 1e-15:
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=cursor, end=cursor + t_lo, speed=lo)
                )
                cursor += t_lo
            shift = max(0.0, cursor - piece.end)

    quantized = Schedule(instance, power, new_pieces, n_processors=schedule.n_processors)
    return QuantizationResult(
        schedule=quantized,
        continuous_energy=schedule.energy,
        discrete_energy=quantized.energy,
        clamped_jobs=tuple(sorted(clamped)),
        makespan_increase=quantized.makespan - schedule.makespan,
    )


@dataclass(frozen=True)
class ProfileQuantization:
    """Outcome of quantising a piecewise-constant speed profile.

    ``segments`` keeps the ``(start, end, speed)`` convention of
    :func:`repro.online.execute_profile_edf`; speed ``0.0`` marks idle time.
    ``deficit_work`` is the work the quantized profile can no longer place
    inside the original windows (clamping above ``max_speed``, or nearest
    rounding down) -- the caller must append make-up capacity (e.g. a
    maximum-speed tail) or accept deadline misses.
    """

    segments: tuple[tuple[float, float, float], ...]
    clamped_segments: int
    slowed_segments: int
    deficit_work: float


def quantize_profile(
    segments: list[tuple[float, float, float]] | tuple[tuple[float, float, float], ...],
    levels: SpeedLevels,
    policy: str = "two-level",
) -> ProfileQuantization:
    """Quantise a speed profile onto discrete levels, preserving idle time.

    Segments with speed at or below :data:`IDLE_SPEED_EPS` pass through at
    speed 0 -- idle maps to idle (or sleep) power, never to the lowest
    operating point.  Sub-``min_speed`` segments run at ``min_speed`` just
    long enough to cover the planned work, then idle for the remainder of
    the window (work-conserving, no delay).  Segments above ``max_speed``
    are clamped and accrue ``deficit_work``; with the ``"nearest"`` policy,
    rounding down does the same.
    """
    _check_policy(policy)
    out: list[tuple[float, float, float]] = []
    clamped = 0
    slowed = 0
    deficit = 0.0
    for start, end, speed in segments:
        duration = float(end) - float(start)
        if duration <= 0:
            raise InvalidScheduleError(
                f"profile segment [{start:g}, {end:g}] has non-positive duration"
            )
        if speed < -IDLE_SPEED_EPS:
            raise InvalidScheduleError("profile speeds must be non-negative")
        if speed <= IDLE_SPEED_EPS:
            # includes float-noise "negative zeros" the profile builders emit
            # for idle stretches (e.g. -1e-16 from AVR's density sums)
            out.append((float(start), float(end), 0.0))
            continue
        if speed > levels.max_speed and not math.isclose(speed, levels.max_speed):
            clamped += 1
            deficit += (speed - levels.max_speed) * duration
            out.append((float(start), float(end), levels.max_speed))
            continue
        if policy == "nearest":
            level = levels.nearest(speed)
            if level >= speed or math.isclose(level, speed):
                busy = speed * duration / level
                out.append((float(start), float(start) + busy, level))
                if duration - busy > 1e-15:
                    out.append((float(start) + busy, float(end), 0.0))
            else:
                slowed += 1
                deficit += (speed - level) * duration
                out.append((float(start), float(end), level))
            continue
        if speed < levels.min_speed and not math.isclose(speed, levels.min_speed):
            busy = speed * duration / levels.min_speed
            out.append((float(start), float(start) + busy, levels.min_speed))
            if duration - busy > 1e-15:
                out.append((float(start) + busy, float(end), 0.0))
            continue
        lo, hi = levels.bracket(speed)
        frac_hi, frac_lo = two_level_split(speed, lo, hi)
        t_hi = duration * frac_hi
        cursor = float(start)
        if t_hi > 1e-15:
            out.append((cursor, cursor + t_hi, hi))
            cursor += t_hi
        if duration * frac_lo > 1e-15:
            out.append((cursor, float(end), lo))
    return ProfileQuantization(
        segments=tuple(out),
        clamped_segments=clamped,
        slowed_segments=slowed,
        deficit_work=deficit,
    )

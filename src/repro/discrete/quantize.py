"""Emulating continuous-speed schedules on discrete-speed processors.

Section 6 of the paper singles out discrete speed levels as the most obvious
gap between the continuous model and real hardware.  The standard emulation
(also the basis of the approximation results it cites) is *two-level
rounding*: a job planned at speed ``sigma`` between two adjacent available
levels ``lo <= sigma <= hi`` is run partly at ``hi`` and partly at ``lo`` so
that it completes the same work in the same wall-clock window.  Convexity of
the power function makes the energy of the mix at least that of the continuous
speed, and the overhead shrinks as the level grid gets finer.

This module quantises any single-speed-per-job schedule produced by the
continuous algorithms, reports the energy overhead, and flags infeasibility
when a planned speed exceeds the hardware's maximum (in that case the job is
clamped to the maximum level and the completion times shift right -- the
caller decides whether that is acceptable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.power import PowerFunction
from ..core.schedule import Piece, Schedule
from ..exceptions import InvalidScheduleError
from .models import SpeedLevels

__all__ = ["QuantizationResult", "quantize_schedule", "two_level_split"]


def two_level_split(speed: float, lo: float, hi: float) -> tuple[float, float]:
    """Fractions of time to spend at ``hi`` and ``lo`` to emulate ``speed``.

    Returns ``(fraction_at_hi, fraction_at_lo)`` such that
    ``fraction_at_hi * hi + fraction_at_lo * lo == speed`` and the fractions
    sum to 1.  When ``lo == hi`` the split is trivially all at that level.
    """
    if speed <= 0 or lo <= 0 or hi <= 0:
        raise InvalidScheduleError("speeds must be positive")
    if not lo <= speed <= hi and not math.isclose(lo, hi):
        raise InvalidScheduleError(
            f"speed {speed:g} is not inside the bracket [{lo:g}, {hi:g}]"
        )
    if math.isclose(hi, lo):
        return (1.0, 0.0)
    frac_hi = (speed - lo) / (hi - lo)
    return (float(frac_hi), float(1.0 - frac_hi))


@dataclass(frozen=True)
class QuantizationResult:
    """Outcome of quantising a continuous schedule onto a discrete speed set."""

    schedule: Schedule
    continuous_energy: float
    discrete_energy: float
    clamped_jobs: tuple[int, ...]
    makespan_increase: float

    @property
    def energy_overhead(self) -> float:
        """Relative energy increase of the discrete emulation (>= 0 when nothing clamps)."""
        return self.discrete_energy / self.continuous_energy - 1.0


def quantize_schedule(
    schedule: Schedule,
    levels: SpeedLevels,
) -> QuantizationResult:
    """Quantise a continuous-speed schedule onto the given speed levels.

    Every piece is replaced by at most two pieces (the two-level emulation)
    occupying the same time window, except when the planned speed exceeds the
    maximum level: such pieces are *clamped* to the maximum level, take longer,
    and push the subsequent pieces of the same processor later (preserving
    order and release-time feasibility).
    """
    power = schedule.power
    instance = schedule.instance
    new_pieces: list[Piece] = []
    clamped: set[int] = set()
    # process per processor to propagate shifts caused by clamping
    by_proc: dict[int, list[Piece]] = {}
    for piece in schedule.pieces:
        by_proc.setdefault(piece.processor, []).append(piece)
    for proc, pieces in by_proc.items():
        pieces.sort(key=lambda p: p.start)
        shift = 0.0
        for piece in pieces:
            start = piece.start + shift
            release = instance.jobs[piece.job].release
            start = max(start, release)
            lo, hi = levels.bracket(piece.speed)
            if piece.speed > levels.max_speed and not math.isclose(piece.speed, levels.max_speed):
                # clamp: run the whole piece's work at the maximum level
                clamped.add(piece.job)
                duration = piece.work / levels.max_speed
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=start, end=start + duration,
                          speed=levels.max_speed)
                )
                shift = max(0.0, (start + duration) - piece.end)
                continue
            if piece.speed < levels.min_speed and not math.isclose(piece.speed, levels.min_speed):
                # planned slower than the slowest level: run at the minimum level
                # for exactly the piece's work and idle for the remainder of the
                # window (this wastes energy relative to the continuous plan but
                # never delays anything).
                duration = piece.work / levels.min_speed
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=start, end=start + duration,
                          speed=levels.min_speed)
                )
                shift = max(0.0, (start + duration) - piece.end)
                continue
            frac_hi, frac_lo = two_level_split(piece.speed, lo, hi)
            t_hi = piece.duration * frac_hi
            t_lo = piece.duration * frac_lo
            cursor = start
            if t_hi > 1e-15:
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=cursor, end=cursor + t_hi, speed=hi)
                )
                cursor += t_hi
            if t_lo > 1e-15:
                new_pieces.append(
                    Piece(job=piece.job, processor=proc, start=cursor, end=cursor + t_lo, speed=lo)
                )
                cursor += t_lo
            shift = max(0.0, cursor - piece.end)

    quantized = Schedule(instance, power, new_pieces, n_processors=schedule.n_processors)
    return QuantizationResult(
        schedule=quantized,
        continuous_energy=schedule.energy,
        discrete_energy=quantized.energy,
        clamped_jobs=tuple(sorted(clamped)),
        makespan_increase=quantized.makespan - schedule.makespan,
    )

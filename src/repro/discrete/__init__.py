"""Discrete-speed (real DVFS hardware) extension experiments (Section 6).

The paper's future-work section identifies discrete speed levels as the main
modelling gap.  This subpackage provides named speed sets (including the
paper's AMD Athlon 64 example), the standard two-level emulation of a
continuous-speed plan, and the resulting energy-overhead accounting used by
``bench_discrete_speeds``.
"""

from .models import ATHLON64, SpeedLevels, geometric_levels, uniform_levels
from .quantize import (
    ProfileQuantization,
    QuantizationResult,
    quantize_profile,
    quantize_schedule,
    two_level_split,
)

__all__ = [
    "ATHLON64",
    "SpeedLevels",
    "geometric_levels",
    "uniform_levels",
    "ProfileQuantization",
    "QuantizationResult",
    "quantize_profile",
    "quantize_schedule",
    "two_level_split",
]

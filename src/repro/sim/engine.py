"""The deterministic trace-replay event loop.

:func:`simulate` replays an arrival trace through one of the online policies
(OA via the incremental engine, AVR and BKP via their native speed profiles)
on a :class:`~repro.sim.machine.MachineModel`, and accounts for everything
the continuous model ignores:

* **discrete speed levels** — when the machine has a
  :class:`~repro.discrete.SpeedLevels` ladder, OA's schedule goes through
  :func:`repro.discrete.quantize_schedule` and the AVR/BKP profiles through
  :func:`repro.discrete.quantize_profile` (the machine's ``quantization``
  policy picks two-level vs nearest).  Capacity lost to clamping or
  nearest-down rounding is made up by a maximum-speed tail segment, so the
  replay completes and *deadline misses are recorded instead of raised*;
* **static power** — charged over every awake moment (busy or idle);
* **sleep states** — idle gaps at least as long as the machine's break-even
  time (and its wake latency) are slept through: the gap is charged at the
  sleep-state power plus the one-off transition energy;
* **the clairvoyant bound** — the YDS optimum of the full trace under the
  same dynamic-power curve (exactly the registry's ``yds`` solver), the
  denominator of the reported energy ratio.

The replay is an explicit event walk: arrivals, replan points (one per
distinct arrival time — every policy replans when new work appears),
speed-switch boundaries of the executed machine timeline (idle counts as
speed 0), sleep/wake transitions, completions and deadline misses.  Both the
event list and every energy figure are pure functions of
``(trace, machine, algorithm)`` — no wall clock, no hidden randomness — so
runs are deterministic and goldens can pin them byte for byte.

On a machine with no static power, no sleep state and no speed ladder the
replay charges exactly ``schedule.energy`` of the same schedule object the
registry's online solvers build, so continuous-model rows reproduce the
``repro compete`` pipeline bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.job import Instance
from ..core.schedule import Schedule
from ..discrete.quantize import quantize_profile, quantize_schedule
from ..exceptions import InvalidInstanceError
from ..online.avr import avr_speed_profile
from ..online.bkp import bkp_speed_profile
from ..online.executor import execute_profile_edf
from ..online.oa import oa_schedule_incremental
from ..online.yds import yds_schedule
from .machine import MachineModel
from .report import SimReport
from .traces import Trace

__all__ = ["SIM_ALGORITHMS", "SimEvent", "SimResult", "simulate"]

#: Online policies the replay driver knows, in registry order.
SIM_ALGORITHMS: tuple[str, ...] = ("avr", "oa", "bkp")

#: Completion later than ``deadline * (1 + _MISS_RTOL) + _MISS_ATOL`` is a miss
#: (floats: the EDF executor finishes tight jobs within work tolerance).
_MISS_RTOL = 1e-6
_MISS_ATOL = 1e-9

#: Timeline stitching tolerances: pieces closer than this are contiguous, and
#: speeds closer than this (relative) are the same operating point.
_GAP_EPS = 1e-9
_SPEED_RTOL = 1e-9

_KIND_ORDER = {
    "arrival": 0,
    "replan": 1,
    "wake": 2,
    "speed-switch": 3,
    "completion": 4,
    "deadline-miss": 5,
    "sleep": 6,
}


@dataclass(frozen=True)
class SimEvent:
    """One event of the replay (time, kind, optional job index / new speed)."""

    time: float
    kind: str
    job: int | None = None
    speed: float | None = None

    def sort_key(self) -> tuple:
        return (
            self.time,
            _KIND_ORDER.get(self.kind, 99),
            -1 if self.job is None else self.job,
            0.0 if self.speed is None else self.speed,
        )


@dataclass(frozen=True)
class SimResult:
    """Everything :func:`simulate` produced: the report, the executed
    schedule, and the full chronological event list."""

    report: SimReport
    schedule: Schedule
    events: tuple[SimEvent, ...]


def _planned_schedule(
    instance: Instance, machine: MachineModel, algorithm: str, steps_per_interval: int
) -> tuple[Schedule, int]:
    """The executed schedule on this machine, plus the clamped/slowed count."""
    power = machine.power
    levels = machine.levels
    if algorithm == "oa":
        planned = oa_schedule_incremental(instance, power)
        if levels is None:
            return planned, 0
        quantized = quantize_schedule(planned, levels, machine.quantization)
        return quantized.schedule, len(quantized.clamped_jobs)
    if algorithm == "avr":
        profile = avr_speed_profile(instance)
        tolerance = 1e-6
    elif algorithm == "bkp":
        profile = bkp_speed_profile(instance, steps_per_interval)
        tolerance = 1e-3
    else:
        raise InvalidInstanceError(
            f"unknown simulation algorithm {algorithm!r}; known: {SIM_ALGORITHMS}"
        )
    if levels is None:
        return execute_profile_edf(instance, power, profile, work_tolerance=tolerance), 0
    pq = quantize_profile(profile, levels, machine.quantization)
    segments = list(pq.segments)
    if pq.deficit_work > 0:
        # make-up capacity for work the quantized profile cannot place in the
        # original windows: a max-speed tail after the last segment.  EDF only
        # uses it if work is actually left over; jobs finishing there are the
        # recorded deadline misses.
        last_end = max(end for _, end, _ in segments)
        duration = pq.deficit_work / levels.max_speed * 1.001 + 1e-9
        segments.append((last_end, last_end + duration, levels.max_speed))
    executed = execute_profile_edf(
        instance, power, segments, work_tolerance=tolerance
    )
    return executed, pq.clamped_segments + pq.slowed_segments


def _merged_runs(schedule: Schedule) -> list[tuple[float, float, float]]:
    """The machine's busy timeline: maximal same-speed runs, chronological."""
    pieces = sorted(schedule.pieces, key=lambda p: (p.start, p.end))
    runs: list[tuple[float, float, float]] = []
    for piece in pieces:
        if runs:
            start, end, speed = runs[-1]
            contiguous = piece.start - end <= _GAP_EPS
            same = math.isclose(piece.speed, speed, rel_tol=_SPEED_RTOL)
            if contiguous and same:
                runs[-1] = (start, max(end, piece.end), speed)
                continue
        runs.append((piece.start, piece.end, piece.speed))
    return runs


def simulate(
    trace: Trace | Instance,
    machine: MachineModel,
    algorithm: str = "oa",
    *,
    steps_per_interval: int = 64,
    yds_bound: float | None = None,
) -> SimResult:
    """Replay a trace through an online policy on a machine model.

    ``yds_bound`` injects a precomputed clairvoyant optimum (the scenario
    matrix computes bounds once per trace through the batch engine and its
    cache); left ``None``, the bound is computed here via
    :func:`repro.online.yds.yds_schedule` — the registry's ``yds`` solver.
    """
    instance = trace.to_instance() if isinstance(trace, Trace) else trace
    if not isinstance(instance, Instance):
        raise InvalidInstanceError(
            f"simulate needs a Trace or Instance, got {type(trace).__name__}"
        )
    if not instance.has_deadlines():
        raise InvalidInstanceError(
            "trace replay requires deadlines on every event (EDF ordering "
            "and the YDS bound are deadline-driven)"
        )

    executed, clamped = _planned_schedule(
        instance, machine, algorithm, steps_per_interval
    )

    # --- machine timeline: busy runs, idle gaps, sleep decisions -----------
    runs = _merged_runs(executed)
    busy_time = sum(end - start for start, end, _ in runs)
    events: list[SimEvent] = []
    idle_time = 0.0
    sleep_time = 0.0
    sleep_transitions = 0
    speed_switches = 0
    previous_speed = None  # operating state; idle gaps are speed 0.0
    previous_end = None
    for start, end, speed in runs:
        if previous_end is not None and start - previous_end > _GAP_EPS:
            gap = start - previous_end
            if machine.should_sleep(gap):
                sleep_time += gap
                sleep_transitions += 1
                events.append(SimEvent(time=previous_end, kind="sleep"))
                events.append(SimEvent(time=start, kind="wake"))
            else:
                idle_time += gap
            if previous_speed not in (None, 0.0):
                speed_switches += 1  # stepping down to idle
                events.append(
                    SimEvent(time=previous_end, kind="speed-switch", speed=0.0)
                )
            previous_speed = 0.0
        if previous_speed is None or not math.isclose(
            speed, previous_speed, rel_tol=_SPEED_RTOL, abs_tol=0.0
        ):
            if previous_speed is not None:
                speed_switches += 1
                events.append(SimEvent(time=start, kind="speed-switch", speed=speed))
            previous_speed = speed
        previous_end = max(end, previous_end or end)

    # --- energy accounting --------------------------------------------------
    # dynamic energy is exactly the executed schedule's energy: on a pure
    # machine (no static power, no sleep, no ladder) the replay total equals
    # the registry solver's reported energy bit for bit
    dynamic_energy = float(executed.energy)
    static_energy = machine.static_power * (busy_time + idle_time)
    sleep_energy = 0.0
    transition_energy = 0.0
    if machine.sleep is not None:
        sleep_energy = machine.sleep.power * sleep_time
        transition_energy = machine.sleep.transition_energy * sleep_transitions
    total_energy = dynamic_energy + static_energy + sleep_energy + transition_energy

    # --- deadline accounting ------------------------------------------------
    completions = np.asarray(executed.completion_times, dtype=float)
    deadlines = instance.deadlines
    lateness = completions - deadlines
    miss_mask = completions > deadlines * (1.0 + _MISS_RTOL) + _MISS_ATOL
    deadline_misses = int(np.count_nonzero(miss_mask))
    max_lateness = float(max(0.0, float(lateness.max())))

    # --- arrival / replan / completion events -------------------------------
    for job in instance.jobs:
        events.append(SimEvent(time=job.release, kind="arrival", job=job.index))
        events.append(
            SimEvent(
                time=float(completions[job.index]), kind="completion", job=job.index
            )
        )
        if miss_mask[job.index]:
            events.append(
                SimEvent(time=float(job.deadline), kind="deadline-miss", job=job.index)
            )
    replan_times = sorted(set(float(r) for r in instance.releases))
    for t in replan_times:
        events.append(SimEvent(time=t, kind="replan"))
    events.sort(key=SimEvent.sort_key)

    if yds_bound is None:
        yds_bound = float(yds_schedule(instance, machine.power).energy)

    report = SimReport(
        trace=instance.name,
        algorithm=algorithm,
        machine=machine.name,
        alpha=machine.alpha,
        n_jobs=instance.n_jobs,
        energy=total_energy,
        dynamic_energy=dynamic_energy,
        static_energy=static_energy,
        sleep_energy=sleep_energy,
        transition_energy=transition_energy,
        yds_bound=float(yds_bound),
        energy_ratio=total_energy / float(yds_bound),
        deadline_misses=deadline_misses,
        max_lateness=max_lateness,
        speed_switches=speed_switches,
        sleep_transitions=sleep_transitions,
        clamped_segments=int(clamped),
        replans=len(replan_times),
        n_events=len(events),
        busy_time=float(busy_time),
        idle_time=float(idle_time),
        sleep_time=float(sleep_time),
        makespan=float(executed.makespan),
    )
    return SimResult(report=report, schedule=executed, events=tuple(events))

"""Trace-driven discrete-event simulation with realistic machine models.

The continuous-speed model the paper analyses is an idealisation: real
processors pay static power while awake, sleep through long idle gaps at a
wake-up cost, and only run at a finite ladder of operating points.  This
subpackage replays arrival traces through the incremental online executors
(OA/AVR/BKP from :mod:`repro.online`) on a configurable
:class:`~repro.sim.machine.MachineModel` that composes all three effects,
with discrete levels enforced end-to-end through the
:mod:`repro.discrete` quantizers:

* :mod:`repro.sim.traces` — the :class:`Trace` arrival format (CSV and
  JSON-lines round-trips) and the seeded trace families (day-night periodic,
  heavy-tail bursty, MMPP-modulated),
* :mod:`repro.sim.machine` — :class:`SleepState`, :class:`MachineModel` and
  the preset catalogue (``pure``, ``static-sleep``, ``athlon64``,
  ``athlon64-nearest``),
* :mod:`repro.sim.engine` — the deterministic replay event loop
  (:func:`simulate`),
* :mod:`repro.sim.report` — :class:`SimReport` and the
  {trace x machine x algorithm} :func:`scenario_matrix` built on the batch
  pipeline and result cache.

Exposed on the command line as ``repro sim`` and ``repro compete
--machines``.
"""

from .engine import SIM_ALGORITHMS, SimEvent, SimResult, simulate
from .machine import MACHINE_MODEL_NAMES, MachineModel, SleepState, machine_model
from .report import SimReport, scenario_matrix, sim_report_from_dict, sim_report_to_dict
from .traces import (
    TRACE_FAMILIES,
    Trace,
    TraceEvent,
    generate_trace,
    load_trace,
    save_trace,
    trace_from_csv,
    trace_from_jsonl,
    trace_to_csv,
    trace_to_jsonl,
)

__all__ = [
    "MACHINE_MODEL_NAMES",
    "SIM_ALGORITHMS",
    "TRACE_FAMILIES",
    "MachineModel",
    "SimEvent",
    "SimReport",
    "SimResult",
    "SleepState",
    "Trace",
    "TraceEvent",
    "generate_trace",
    "load_trace",
    "machine_model",
    "save_trace",
    "scenario_matrix",
    "sim_report_from_dict",
    "sim_report_to_dict",
    "simulate",
    "trace_from_csv",
    "trace_from_jsonl",
    "trace_to_csv",
    "trace_to_jsonl",
]

"""Simulation reports and the {trace x machine x algorithm} scenario matrix.

:class:`SimReport` is the flat, JSON-ready summary of one replay: measured
energy (broken down into dynamic / static / sleep / transition components)
against the clairvoyant YDS bound of the full trace, deadline misses,
speed-switch and sleep-transition counts, and the event/replan totals of the
event loop.

:func:`scenario_matrix` grows ``repro compete`` into the scenario grid of
ROADMAP item 3: every combination of trace family, machine model and online
algorithm is replayed through :func:`repro.sim.engine.simulate`, with the
YDS bounds computed once per (trace, alpha) through the PR-2 batch pipeline
(:func:`repro.batch.solve_many`) so a PR-5 :class:`~repro.cache.ResultCache`
makes overlapping matrices pay for each bound once.  The payload mirrors
``competitive_sweep``'s shape (``parameters`` / ``cells`` / ``summary``) and
is deterministic: equal grids dump byte-identical JSON.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..core.power import PolynomialPower
from ..exceptions import InvalidInstanceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import ResultCache

__all__ = ["SimReport", "scenario_matrix", "sim_report_from_dict", "sim_report_to_dict"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SimReport:
    """Flat summary of one trace replay on one machine model."""

    trace: str
    algorithm: str
    machine: str
    alpha: float | None
    n_jobs: int
    energy: float
    dynamic_energy: float
    static_energy: float
    sleep_energy: float
    transition_energy: float
    yds_bound: float
    energy_ratio: float
    deadline_misses: int
    max_lateness: float
    speed_switches: int
    sleep_transitions: int
    clamped_segments: int
    replans: int
    n_events: int
    busy_time: float
    idle_time: float
    sleep_time: float
    makespan: float


def sim_report_to_dict(report: SimReport) -> dict[str, Any]:
    """JSON-ready representation of a :class:`SimReport`."""
    payload: dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "kind": "sim-report",
    }
    payload.update(asdict(report))
    return payload


def sim_report_from_dict(data: dict[str, Any]) -> SimReport:
    """Rebuild a :class:`SimReport` from :func:`sim_report_to_dict` output."""
    if not isinstance(data, dict):
        raise InvalidInstanceError(
            f"not a sim-report payload: expected a JSON object, got {type(data).__name__}"
        )
    if data.get("kind") != "sim-report":
        raise InvalidInstanceError(
            f"not a sim-report payload: kind={data.get('kind')!r}"
        )
    try:
        alpha = data.get("alpha")
        return SimReport(
            trace=str(data["trace"]),
            algorithm=str(data["algorithm"]),
            machine=str(data["machine"]),
            alpha=None if alpha is None else float(alpha),
            n_jobs=int(data["n_jobs"]),
            energy=float(data["energy"]),
            dynamic_energy=float(data["dynamic_energy"]),
            static_energy=float(data["static_energy"]),
            sleep_energy=float(data["sleep_energy"]),
            transition_energy=float(data["transition_energy"]),
            yds_bound=float(data["yds_bound"]),
            energy_ratio=float(data["energy_ratio"]),
            deadline_misses=int(data["deadline_misses"]),
            max_lateness=float(data["max_lateness"]),
            speed_switches=int(data["speed_switches"]),
            sleep_transitions=int(data["sleep_transitions"]),
            clamped_segments=int(data["clamped_segments"]),
            replans=int(data["replans"]),
            n_events=int(data["n_events"]),
            busy_time=float(data["busy_time"]),
            idle_time=float(data["idle_time"]),
            sleep_time=float(data["sleep_time"]),
            makespan=float(data["makespan"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidInstanceError(f"malformed sim-report payload: {exc!r}") from exc


def _matrix_summary(cells: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """One row per (machine, algorithm, family prefix of the trace name)."""
    rows: list[dict[str, Any]] = []
    seen: dict[tuple[str, str, str], dict[str, Any]] = {}
    for cell in cells:
        key = (cell["machine"], cell["algorithm"], cell["family"])
        row = seen.get(key)
        if row is None:
            row = {
                "machine": cell["machine"],
                "algorithm": cell["algorithm"],
                "family": cell["family"],
                "cells": 0,
                "mean_ratio": 0.0,
                "max_ratio": -math.inf,
                "deadline_misses": 0,
                "speed_switches": 0,
                "sleep_transitions": 0,
                "clamped_segments": 0,
            }
            seen[key] = row
            rows.append(row)
        row["cells"] += 1
        row["mean_ratio"] += cell["energy_ratio"]  # finalised to a mean below
        row["max_ratio"] = max(row["max_ratio"], cell["energy_ratio"])
        row["deadline_misses"] += cell["deadline_misses"]
        row["speed_switches"] += cell["speed_switches"]
        row["sleep_transitions"] += cell["sleep_transitions"]
        row["clamped_segments"] += cell["clamped_segments"]
    for row in rows:
        row["mean_ratio"] = row["mean_ratio"] / row["cells"]
    return rows


def scenario_matrix(
    algorithms: Sequence[str] = ("avr", "oa", "bkp"),
    machines: Sequence[str] = ("pure", "static-sleep", "athlon64"),
    families: Sequence[str] = ("day-night", "heavy-tail", "mmpp"),
    sizes: Sequence[int] = (8, 12),
    seeds: int = 3,
    alpha: float = 3.0,
    workers: int = 1,
    cache: "ResultCache | None" = None,
) -> dict[str, Any]:
    """Replay the full {trace x machine x algorithm} grid.

    ``machines`` are preset names (see
    :func:`repro.sim.machine.machine_model`); ``families`` are trace-family
    names (:data:`repro.sim.traces.TRACE_FAMILIES`).  The clairvoyant YDS
    bounds are computed once for the whole trace grid through
    :func:`repro.batch.solve_many` (``solver="yds"``), so a shared ``cache``
    carries them across overlapping matrices — and, because the trace grid is
    plain instances, across ``repro compete`` sweeps too.
    """
    from ..batch import solve_many
    from .engine import SIM_ALGORITHMS, simulate
    from .machine import machine_model
    from .traces import TRACE_FAMILIES

    for algorithm in algorithms:
        if algorithm not in SIM_ALGORITHMS:
            raise InvalidInstanceError(
                f"unknown simulation algorithm {algorithm!r}; "
                f"known: {sorted(SIM_ALGORITHMS)}"
            )
    for family in families:
        if family not in TRACE_FAMILIES:
            raise InvalidInstanceError(
                f"unknown trace family {family!r}; known: {sorted(TRACE_FAMILIES)}"
            )
    if seeds <= 0:
        raise InvalidInstanceError("seeds must be positive")
    for size in sizes:
        if int(size) <= 0:
            raise InvalidInstanceError("sizes must be positive")
    if not algorithms or not machines or not families or not sizes:
        raise InvalidInstanceError(
            "the scenario matrix needs at least one algorithm, machine, "
            "family and size"
        )
    models = [machine_model(name, alpha=alpha) for name in machines]

    # materialise the trace grid once: the same instances back every machine
    # and algorithm, and the YDS bound of each is computed exactly once
    grid: list[tuple[str, int, int]] = [
        (family, int(size), seed)
        for family in families
        for size in sizes
        for seed in range(int(seeds))
    ]
    traces = [TRACE_FAMILIES[family](size, seed) for family, size, seed in grid]
    instances = [trace.to_instance() for trace in traces]
    power = PolynomialPower(float(alpha))
    bounds = solve_many(
        instances, power, 0.0, solver="yds", workers=workers, cache=cache
    )

    cells: list[dict[str, Any]] = []
    for model in models:
        for algorithm in algorithms:
            for (family, size, seed), instance, bound in zip(
                grid, instances, bounds
            ):
                result = simulate(
                    instance, model, algorithm, yds_bound=bound.energy
                )
                cell = sim_report_to_dict(result.report)
                cell.pop("format")
                cell.pop("kind")
                cell["family"] = family
                cell["seed"] = seed
                cells.append(cell)

    return {
        "kind": "sim-matrix",
        "parameters": {
            "algorithms": list(algorithms),
            "machines": list(machines),
            "families": list(families),
            "sizes": [int(s) for s in sizes],
            "seeds": int(seeds),
            "alpha": float(alpha),
        },
        "cells": cells,
        "summary": _matrix_summary(cells),
    }
